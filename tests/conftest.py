"""Shared fixtures, hypothesis strategies and tiny-scale helpers."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.bench.config import Scale
from repro.lists.database import Database

# Hypothesis profile: the algorithm-level properties run whole query
# executions per example, so keep example counts moderate and deadlines off.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# Database strategies
# ---------------------------------------------------------------------------

# Strategy producing (m, n) integer score matrices as lists of rows;
# shared with downstream users through repro.testing.
from repro.testing import score_matrix_strategy as score_matrices  # noqa: E402


@st.composite
def databases(draw, max_items: int = 24, max_lists: int = 5, tie_heavy: bool = False):
    """Strategy producing a :class:`Database` and a valid ``k``."""
    matrix = draw(score_matrices(max_items, max_lists, tie_heavy=tie_heavy))
    database = Database.from_score_rows([[float(s) for s in row] for row in matrix])
    k = draw(st.integers(1, database.n))
    return database, k


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def tiny_scale() -> Scale:
    """A very small bench scale so harness tests run in milliseconds."""
    return Scale(
        name="tiny",
        n=200,
        k=5,
        m=3,
        m_sweep=(2, 3),
        k_sweep=(2, 5),
        n_sweep=(100, 200),
        seed=1,
    )


@pytest.fixture()
def simple_database() -> Database:
    """A small deterministic 3-list database used across unit tests.

    Scores are chosen so that every list has a distinct permutation and
    the overall (sum) ranking is unambiguous.
    """
    rows = [
        [9.0, 7.0, 5.0, 3.0, 1.0, 8.0],
        [2.0, 9.0, 6.0, 4.0, 8.0, 1.0],
        [5.0, 3.0, 9.0, 8.0, 2.0, 6.0],
    ]
    return Database.from_score_rows(rows)
