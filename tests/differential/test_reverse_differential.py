"""Differential proof that reverse top-k equals the per-user oracle.

Two layers of evidence, both against
:func:`repro.reverse.brute_force_reverse_topk` (one brute-force top-k
per registered user, membership under the library's ``(-score, id)``
tie order):

* an exhaustive sweep — every datagen family in
  :func:`repro.testing.standard_test_databases`, several ``k`` and
  every item, through a real :class:`QueryService` (bounds pruning,
  boundary cache and the planned execution path all engaged);
* a stateful fuzz — a rule-based machine interleaves score updates,
  inserts, removals, record-less invalidations and registry churn
  (add / re-weight / remove users) with reverse queries, checking every
  answer bit-for-bit against the oracle on the *current* database
  state.  This is the reverse sibling of :mod:`test_watch_maintenance`:
  it exercises the engine's incremental maintenance (certificate
  classification, in-place patches, drops, flushes) rather than the
  cold query path.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro.reverse import brute_force_reverse_topk
from repro.service import QueryService
from repro.service.workload import dynamic_from
from repro.datagen.base import make_generator
from repro.testing import standard_test_databases

FAMILIES = ("uniform", "gaussian", "correlated", "zipf", "copula")

#: Same grid-plus-floats mix as the other mutation fuzzes: forced
#: aggregate ties are the nastiest boundary edge.
scores = st.one_of(
    st.integers(min_value=0, max_value=4).map(lambda v: v / 4),
    st.floats(
        min_value=0.0,
        max_value=1.5,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ).map(float),
)

#: Non-negative weights with at least one strictly positive entry —
#: exactly the vectors ``WeightedSumScoring`` accepts.
def weight_vectors(m: int):
    weight = st.one_of(
        st.just(0.0),
        st.floats(
            min_value=0.015625,
            max_value=4.0,
            allow_nan=False,
            allow_infinity=False,
            width=32,
        ).map(float),
    )
    return st.lists(weight, min_size=m, max_size=m).filter(
        lambda ws: any(w > 0 for w in ws)
    )


class TestExhaustiveSweep:
    """Every family x k x item: service answer == per-user oracle."""

    @pytest.mark.parametrize(
        "label,database",
        list(standard_test_databases()),
        ids=[label for label, _ in standard_test_databases()],
    )
    def test_every_item_matches_the_oracle(self, label, database):
        source = dynamic_from(database)
        with QueryService(source, shards=1, pool="serial") as service:
            service.reverse_registry.seed_users(10, source.m, seed=11)
            registry = service.reverse_registry
            for k in (1, 2, 5, source.n, source.n + 3):
                for item in sorted(source.item_ids):
                    result = service.submit_reverse(item, k)
                    expected = brute_force_reverse_topk(
                        source, registry, item, k
                    )
                    assert result.users == expected, (label, item, k)


class ReverseDifferentialMachine(RuleBasedStateMachine):
    """Mutations + registry churn + reverse queries, oracle-checked."""

    def __init__(self) -> None:
        super().__init__()
        self.service: QueryService | None = None
        self.source = None
        self.next_id = 0
        self.next_user = 0
        self.m = 0

    @initialize(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=3, max_value=20),
        m=st.integers(min_value=2, max_value=3),
        users=st.integers(min_value=1, max_value=6),
    )
    def setup(self, family, seed, n, m, users):
        database = make_generator(family).generate(n, m, seed=seed)
        self.source = dynamic_from(database)
        self.next_id = n + 1000
        self.m = m
        self.service = QueryService(self.source, shards=1, pool="serial")
        self.service.reverse_registry.seed_users(users, m, seed=seed)
        self.next_user = users

    def teardown(self):
        if self.service is not None:
            self.service.close()

    # ------------------------------------------------------------------
    # Database mutations
    # ------------------------------------------------------------------

    @rule(data=st.data())
    def update_score(self, data):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        self.source.update_score(
            data.draw(st.integers(0, self.m - 1), label="list"),
            data.draw(st.sampled_from(ids), label="item"),
            data.draw(scores, label="score"),
        )

    @rule(data=st.data())
    def insert_item(self, data):
        self.source.insert_item(
            self.next_id,
            [data.draw(scores, label="score") for _ in range(self.m)],
        )
        self.next_id += 1

    @rule(data=st.data())
    def remove_item(self, data):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        self.source.remove_item(data.draw(st.sampled_from(ids), label="item"))

    @rule(roll=st.integers(min_value=0, max_value=7))
    def manual_invalidate(self, roll):
        # A record-less epoch bump: the reverse engine must flush its
        # boundary cache (there is no event to classify).
        if roll == 0:
            self.service.invalidate()

    # ------------------------------------------------------------------
    # Registry churn
    # ------------------------------------------------------------------

    @precondition(lambda self: len(self.service.reverse_registry) < 8)
    @rule(data=st.data())
    def add_user(self, data):
        weights = data.draw(weight_vectors(self.m), label="weights")
        self.service.reverse_registry.add(f"fuzz-{self.next_user}", weights)
        self.next_user += 1

    @precondition(lambda self: len(self.service.reverse_registry) > 1)
    @rule(data=st.data())
    def reweight_user(self, data):
        registry = self.service.reverse_registry
        user = data.draw(st.sampled_from(registry.users()), label="user")
        registry.update(
            user, data.draw(weight_vectors(self.m), label="weights")
        )

    @precondition(lambda self: len(self.service.reverse_registry) > 1)
    @rule(data=st.data())
    def remove_user(self, data):
        registry = self.service.reverse_registry
        registry.remove(
            data.draw(st.sampled_from(registry.users()), label="user")
        )

    # ------------------------------------------------------------------
    # The oracle check
    # ------------------------------------------------------------------

    @rule(data=st.data(), k=st.integers(min_value=1, max_value=8))
    def reverse_query(self, data, k):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        item = data.draw(st.sampled_from(ids), label="item")
        result = self.service.submit_reverse(item, k)
        expected = brute_force_reverse_topk(
            self.source, self.service.reverse_registry, item, k
        )
        assert result.users == expected, (
            f"reverse_topk({item}, {k}) = {result.users} but the "
            f"oracle says {expected} (stats: {result.stats})"
        )


TestReverseDifferential = ReverseDifferentialMachine.TestCase
TestReverseDifferential.settings = settings(
    max_examples=150,
    stateful_step_count=14,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
