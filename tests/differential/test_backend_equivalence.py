"""Differential proof that the columnar backend is a pure optimization.

Every registered algorithm runs on the pure-Python backend (the
reference), on the columnar backend through the generic metered
accessors, and — for configurations with an exact vectorized kernel —
through :mod:`repro.columnar.engine`.  All three must agree *exactly*:
identical ranked top-k (items and scores, after tie-breaking), identical
per-mode access tallies, identical rounds/stop positions, identical
extras.  Hypothesis drives the databases: every distribution family the
repo ships (uniform, Gaussian, correlated, Zipf, copula, adversarial)
plus tie-heavy and duplicate-score matrices where tie-breaking bugs
live.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import get_algorithm, known_algorithms
from repro.columnar import ColumnarDatabase, get_kernel
from repro.datagen import make_generator
from repro.datagen.adversarial import (
    bpa2_favorable_database,
    bpa_favorable_database,
)
from repro.lists.database import Database
from repro.scoring import AVERAGE, MIN, SUM, WeightedSumScoring
from repro.testing import assert_backends_equivalent, score_matrix_strategy as score_matrices

#: Distribution families exercised by the generator-driven property.
DISTRIBUTIONS = ("uniform", "gaussian", "correlated", "zipf", "copula")


def _database_from_matrix(matrix) -> Database:
    return Database.from_score_rows([[float(s) for s in row] for row in matrix])


class TestAllAlgorithmsOnRandomMatrices:
    """Every registered algorithm, both backends, arbitrary matrices."""

    @given(matrix=score_matrices(max_items=20, max_lists=4), data=st.data())
    def test_exact_equivalence(self, matrix, data):
        database = _database_from_matrix(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        assert_backends_equivalent(database, k)

    @given(
        matrix=score_matrices(max_items=20, max_lists=4, tie_heavy=True),
        data=st.data(),
    )
    def test_exact_equivalence_tie_heavy(self, matrix, data):
        database = _database_from_matrix(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        assert_backends_equivalent(database, k)

    @given(
        matrix=score_matrices(max_items=16, max_lists=3, tie_heavy=True),
        data=st.data(),
    )
    def test_equivalence_under_other_scorings(self, matrix, data):
        database = _database_from_matrix(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        scoring = data.draw(
            st.sampled_from(
                [MIN, AVERAGE, WeightedSumScoring([2.0, 0.5, 1.0][: database.m])]
            ),
            label="scoring",
        )
        assert_backends_equivalent(
            database, k, scoring=scoring, algorithms=("ta", "bpa", "bpa2")
        )


class TestDistributionFamilies:
    """The paper's trio across every shipped distribution family."""

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @settings(max_examples=20)
    @given(data=st.data())
    def test_generated_databases(self, distribution, data):
        n = data.draw(st.integers(5, 60), label="n")
        m = data.draw(st.integers(1, 5), label="m")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        k = data.draw(st.integers(1, n), label="k")
        database = make_generator(distribution).generate(n, m, seed=seed)
        assert_backends_equivalent(
            database, k, algorithms=("ta", "bpa", "bpa2", "naive")
        )

    @settings(max_examples=15)
    @given(data=st.data())
    def test_adversarial_constructions(self, data):
        m = data.draw(st.integers(3, 5), label="m")  # constructions need m >= 3
        u = data.draw(st.integers(1, 5), label="u")
        build = data.draw(
            st.sampled_from([bpa_favorable_database, bpa2_favorable_database]),
            label="construction",
        )
        database, info = build(m, u)
        k = data.draw(st.integers(1, max(1, info.max_k)), label="k")
        assert_backends_equivalent(database, k)


class TestKernelDispatch:
    """fast_kernel() gates exactly the configurations kernels replay."""

    def test_default_configurations_have_kernels(self):
        assert get_algorithm("ta").fast_kernel() == "ta"
        assert get_algorithm("bpa").fast_kernel() == "bpa"
        assert get_algorithm("bpa2").fast_kernel() == "bpa2"
        assert get_algorithm("nra").fast_kernel() == "nra"
        assert get_algorithm("qc").fast_kernel() == "qc"

    def test_non_default_options_disable_the_kernel(self):
        assert get_algorithm("ta", memoize=True).fast_kernel() is None
        assert get_algorithm("ta", approximation=1.5).fast_kernel() is None
        assert get_algorithm("bpa", memoize=True).fast_kernel() is None
        assert get_algorithm("bpa2", check_every_access=True).fast_kernel() is None
        assert get_algorithm("bpa2", approximation=2.0).fast_kernel() is None
        assert get_algorithm("qc", lookahead=5).fast_kernel() is None

    def test_tracker_choice_keeps_the_kernel(self):
        # Trackers change owner-side bookkeeping cost, never results.
        assert get_algorithm("bpa", tracker="btree").fast_kernel() == "bpa"
        assert get_algorithm("bpa2", tracker="naive").fast_kernel() == "bpa2"

    def test_algorithms_without_kernels_return_none(self):
        for name in known_algorithms():
            if name in ("ta", "bpa", "bpa2", "nra", "qc"):
                continue
            assert get_algorithm(name).fast_kernel() is None, name

    def test_unknown_kernel_name_raises(self):
        with pytest.raises(KeyError, match="no vectorized kernel"):
            get_kernel("fa")


class TestKernelsShareContext:
    """One QueryContext serves many queries with unchanged results."""

    def test_context_reuse_matches_fresh_runs(self):
        from repro.columnar import QueryContext, fast_bpa2

        database = make_generator("uniform").generate(80, 3, seed=5)
        columnar = ColumnarDatabase.from_database(database)
        context = QueryContext(columnar, SUM)
        for k in (1, 3, 8, 40, 80):
            reference = get_algorithm("bpa2").run(database, k, SUM)
            shared = fast_bpa2(context, k, SUM)
            fresh = fast_bpa2(columnar, k, SUM)
            assert reference == shared == fresh
            assert reference.extras == shared.extras == fresh.extras

    def test_context_rejects_mismatched_scoring(self):
        from repro.columnar import QueryContext, fast_bpa2
        from repro.errors import InvalidQueryError

        columnar = ColumnarDatabase.from_database(
            make_generator("uniform").generate(10, 2, seed=1)
        )
        context = QueryContext(columnar, SUM)
        with pytest.raises(InvalidQueryError, match="different scoring"):
            fast_bpa2(context, 2, MIN)
