"""Stateful fuzz of the snapshot lifecycle: patch, rebuild, save, load.

A rule-based machine drives one live :class:`DynamicDatabase` while
maintaining a columnar snapshot of it through every mechanism the
storage engine offers, in whatever order Hypothesis invents:

* **patch** — fold the accumulated mutation window into the snapshot via
  :func:`repro.columnar.patch_database` (generous budget: must succeed);
* **starved patch** — the same with ``budget=1``, so multi-item windows
  exercise the ``None`` → cold-rebuild fallback;
* **cold rebuild** — throw the snapshot away and re-derive it;
* **save/load round-trip** — push the snapshot through an epoch-stamped
  ``.bpsn`` file (alternating compressed/raw) and adopt the *loaded*
  database as the live snapshot, so later patches run on file-restored
  arrays too;
* **verify** — the on-disk audit must pass for every file we write.

The invariant after every refresh rule: the maintained snapshot is
**bit-identical** to a from-scratch cold rebuild of the source — same
columns, same rank permutations, same uids.  However the snapshot got
here (patched thrice, restored from disk, rebuilt), it must be *the*
canonical columnar image of the current data.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.columnar import patch_database
from repro.datagen.base import make_generator
from repro.service.service import _snapshot_dynamic
from repro.service.workload import dynamic_from
from repro.storage import load_snapshot, verify_snapshot, write_snapshot

FAMILIES = ("uniform", "gaussian", "correlated", "zipf", "copula")

#: Tiny grid plus ordinary floats: aggregate ties are the nastiest
#: ordering edge for a canonical (score desc, item asc) re-sort.
scores = st.one_of(
    st.integers(min_value=0, max_value=4).map(lambda v: v / 4),
    st.floats(
        min_value=0.0,
        max_value=1.5,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ).map(float),
)


class SnapshotLifecycleMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.source = None
        self.snapshot = None
        self.window = []
        self.unsubscribe = None
        self.next_id = 0
        self.epoch = 0
        self.saves = 0
        self.tmpdir = Path(tempfile.mkdtemp(prefix="bpsn-fuzz-"))

    def teardown(self):
        shutil.rmtree(self.tmpdir, ignore_errors=True)

    @initialize(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=4, max_value=24),
        m=st.integers(min_value=2, max_value=3),
    )
    def setup(self, family, seed, n, m):
        database = make_generator(family).generate(n, m, seed=seed)
        self.source = dynamic_from(database)
        self.snapshot = _snapshot_dynamic(self.source)
        self.next_id = n + 1000
        self.unsubscribe = self.source.subscribe(self._record)

    def _record(self, event):
        self.window.append(event)
        self.epoch += 1

    # ------------------------------------------------------------------
    # Mutations (grow the pending window)
    # ------------------------------------------------------------------

    @rule(data=st.data())
    def update_score(self, data):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        self.source.update_score(
            data.draw(st.integers(0, self.source.m - 1), label="list"),
            data.draw(st.sampled_from(ids), label="item"),
            data.draw(scores, label="score"),
        )

    @rule(data=st.data())
    def insert_item(self, data):
        self.source.insert_item(
            self.next_id,
            [data.draw(scores, label="score")
             for _ in range(self.source.m)],
        )
        self.next_id += 1

    @rule(data=st.data())
    def remove_item(self, data):
        ids = sorted(self.source.item_ids)
        if len(ids) <= 2:
            return
        self.source.remove_item(data.draw(st.sampled_from(ids), label="item"))

    # ------------------------------------------------------------------
    # Refresh mechanisms (consume the window)
    # ------------------------------------------------------------------

    def _assert_current(self):
        rebuilt = _snapshot_dynamic(self.source)
        assert self.snapshot.m == rebuilt.m
        assert self.snapshot.n == rebuilt.n
        for ours, theirs in zip(self.snapshot.lists, rebuilt.lists):
            assert (
                ours.items_array.tobytes() == theirs.items_array.tobytes()
            )
            assert (
                ours.scores_array.tobytes() == theirs.scores_array.tobytes()
            )
            assert ours.uids_array.tobytes() == theirs.uids_array.tobytes()
            assert ours.rank_by_row.tobytes() == theirs.rank_by_row.tobytes()

    @rule()
    def patch(self):
        patched = patch_database(self.snapshot, self.window, budget=10**9)
        assert patched is not None  # generous budget: must always patch
        self.snapshot = patched
        self.window = []
        self._assert_current()

    @rule()
    def starved_patch(self):
        """budget=1: wide windows must fall back, never mis-patch."""
        patched = patch_database(self.snapshot, self.window, budget=1)
        if patched is None:
            patched = _snapshot_dynamic(self.source)
        self.snapshot = patched
        self.window = []
        self._assert_current()

    @rule()
    def cold_rebuild(self):
        self.snapshot = _snapshot_dynamic(self.source)
        self.window = []
        self._assert_current()

    @rule()
    def save_load_round_trip(self):
        """Persist, audit, restore — the restored file becomes live."""
        path = self.tmpdir / f"epoch-{self.saves}.bpsn"
        self.saves += 1
        snapshot_epoch = self.epoch - len(self.window)
        write_snapshot(
            self.snapshot,
            path,
            epoch=snapshot_epoch,
            compress=bool(self.saves % 2),
        )
        assert verify_snapshot(path).ok
        loaded, epoch = load_snapshot(path)
        assert epoch == snapshot_epoch

        # The loaded arrays must equal the in-memory snapshot's exactly;
        # then adopt them so later patches run on file-restored arrays.
        for ours, theirs in zip(self.snapshot.lists, loaded.lists):
            assert (
                ours.items_array.tobytes() == theirs.items_array.tobytes()
            )
            assert (
                ours.scores_array.tobytes() == theirs.scores_array.tobytes()
            )
            assert ours.rank_by_row.tobytes() == theirs.rank_by_row.tobytes()
        self.snapshot = loaded

    @invariant()
    def snapshot_is_internally_consistent(self):
        if self.snapshot is None:
            return
        for lst in self.snapshot.lists:
            items, ranks = lst.items_array, lst.rank_by_row
            # rank_by_row is the inverse permutation of the rank order.
            assert (ranks[lst.rows_of(items)] == range(len(items))).all()


# The epoch bookkeeping in save_load_round_trip assumes the saved epoch
# lags the live epoch by exactly the pending window; mutations bump both
# in _record, refreshes drain the window without touching the epoch.
SnapshotLifecycleMachine.TestCase.settings = settings(
    max_examples=25,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

TestSnapshotLifecycle = SnapshotLifecycleMachine.TestCase
