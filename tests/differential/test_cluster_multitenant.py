"""Differential proof that multi-tenant owner daemons are exact.

A :class:`ClusterPlacement` co-locates lists on fewer owner processes
and the transport coalesces each round's ops into one frame per owner —
none of which may change a single answer.  Every driver, over every
owner count {1, 2, m}, every wire protocol and classic and block rounds
alike, must reproduce the reference single-node algorithm bit for bit:
identical ranked items, per-mode access tallies and round counts.  The
frame reduction itself is asserted exactly (full-fan-out rounds
compress by ``m / owners``), the warm-start and metrics endpoints are
exercised over real sockets, and the polite-escalation ``close()``
contract (no orphans, idempotent) gets its regression tests.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.distributed import (
    ClusterPlacement,
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
)
from repro.distributed.socket_transport import SocketCluster
from repro.distributed.transport import NetworkBackend
from repro.exec.drivers import DRIVERS
from repro.scoring import SUM

DRIVER_CLASSES = (
    ("ta", DistributedTA),
    ("bpa", DistributedBPA),
    ("bpa2", DistributedBPA2),
)


@pytest.fixture(scope="module")
def database():
    return make_generator("zipf").generate(50, 3, seed=19)


@pytest.fixture(scope="module")
def wide_database():
    # m=4 divides evenly onto 2 owners, making the coalescing ratio exact.
    return make_generator("uniform").generate(60, 4, seed=7)


class TestSimulatedMultiTenantExactness:
    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    @pytest.mark.parametrize("protocol", ["entry", "batch", "pipelined"])
    @pytest.mark.parametrize("owners", [1, 2, 3])
    def test_classic_drivers_bit_identical(
        self, database, name, cls, protocol, owners
    ):
        reference = get_algorithm(name).run(database, 5, SUM)
        result = cls(protocol=protocol, owners=owners).run(database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.rounds == reference.rounds
        assert result.extras["owners"] == owners

    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    @pytest.mark.parametrize("owners", [1, 2])
    def test_block_drivers_bit_identical(self, database, name, cls, owners):
        reference = get_algorithm(f"{name}-block", width=4).run(
            database, 5, SUM
        )
        result = cls(
            protocol="pipelined", block_width=4, owners=owners
        ).run(database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.rounds == reference.rounds

    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    def test_striped_placement_bit_identical(self, wide_database, name, cls):
        reference = get_algorithm(name).run(wide_database, 5, SUM)
        result = cls(
            protocol="batch", owners=2, placement="striped"
        ).run(wide_database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally

    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    def test_entry_owner_node_matches_columnar(self, database, name, cls):
        # The per-entry serving path and the vectorized columnar path
        # must be indistinguishable from the wire out.
        columnar = ColumnarDatabase.from_database(database)
        runs = {
            mode: cls(protocol="batch", owners=2, columnar=mode).run(
                columnar, 5, SUM
            )
            for mode in ("entry", "columnar")
        }
        assert runs["entry"].items == runs["columnar"].items
        assert runs["entry"].tally == runs["columnar"].tally
        assert (
            runs["entry"].extras["network"]
            == runs["columnar"].extras["network"]
        )


class TestFrameCoalescing:
    def test_full_fanout_frames_shrink_by_exactly_owner_ratio(
        self, wide_database
    ):
        """TA's waves touch every list, so frames scale with owner count."""
        messages = {}
        for owners in (None, 2, 1):
            result = DistributedTA(protocol="batch", owners=owners).run(
                wide_database, 5, SUM
            )
            messages[owners] = result.extras["network"]["messages"]
        assert messages[2] * 2 == messages[None]
        assert messages[1] * 4 == messages[None]

    def test_owner_count_m_is_wire_identical_to_legacy(self, wide_database):
        # placement with one list per owner must not add routing fields
        # or change a byte relative to the pre-placement transport.
        legacy = DistributedTA(protocol="batch").run(wide_database, 5, SUM)
        placed = DistributedTA(protocol="batch", owners=4).run(
            wide_database, 5, SUM
        )
        assert placed.extras["network"] == legacy.extras["network"]

    def test_coalescing_composes_with_blocks(self, wide_database):
        reference = get_algorithm("ta-block", width=4).run(
            wide_database, 5, SUM
        )
        messages = {}
        for owners in (None, 2):
            result = DistributedTA(
                protocol="batch", block_width=4, owners=owners
            ).run(wide_database, 5, SUM)
            assert result.items == reference.items
            assert result.tally == reference.tally
            messages[owners] = result.extras["network"]["messages"]
        assert messages[2] * 2 == messages[None]


class TestSocketMultiTenant:
    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    def test_two_owner_cluster_bit_identical(self, database, name, cls):
        reference = get_algorithm(name).run(database, 5, SUM)
        result = cls(
            protocol="pipelined", transport="socket", owners=2
        ).run(database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.rounds == reference.rounds
        assert result.extras["owners"] == 2

    def test_single_owner_block_rounds_bit_identical(self, database):
        reference = get_algorithm("bpa2-block", width=4).run(database, 5, SUM)
        result = DistributedBPA2(
            protocol="batch", transport="socket", block_width=4, owners=1
        ).run(database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.extras["owners"] == 1

    def test_socket_frames_match_simulated_counts(self, wide_database):
        # The simulated network and the TCP transport count the same
        # coalesced frames for the same query.
        nets = {
            transport: DistributedTA(
                protocol="batch", transport=transport, owners=2
            ).run(wide_database, 5, SUM).extras["network"]
            for transport in ("simulated", "socket")
        }
        assert nets["simulated"]["messages"] == nets["socket"]["messages"]
        assert nets["simulated"]["rounds"] == nets["socket"]["rounds"]


class TestWarmStartAndStats:
    @pytest.fixture()
    def snapshot(self, wide_database, tmp_path):
        from repro.storage import write_snapshot

        path = tmp_path / "db.bpsn"
        write_snapshot(wide_database, path, epoch=3)
        return path

    def test_from_snapshot_serves_verified_queries(
        self, wide_database, snapshot
    ):
        reference = get_algorithm("bpa2").run(wide_database, 5, SUM)
        with SocketCluster.from_snapshot(snapshot, owners=2) as cluster:
            assert cluster.epoch == 3
            assert cluster.placement.groups == ((0, 1), (2, 3))
            with cluster.connect() as fabric:
                backend = NetworkBackend.remote(
                    fabric,
                    m=cluster.m,
                    n=cluster.n,
                    protocol="pipelined",
                    placement=cluster.placement,
                )
                outcome = DRIVERS["bpa2"](backend, 5, SUM)
                assert outcome.items == reference.items
                assert backend.total_tally() == reference.tally

    def test_metrics_endpoint_counts_ops_and_samples_latency(
        self, wide_database, snapshot
    ):
        with SocketCluster.from_snapshot(
            snapshot, owners=2, latency_sample_k=16
        ) as cluster, cluster.connect() as fabric:
            backend = NetworkBackend.remote(
                fabric,
                m=cluster.m,
                n=cluster.n,
                protocol="batch",
                placement=cluster.placement,
            )
            DRIVERS["ta"](backend, 5, SUM)
            metrics = fabric.request("owner/0", "state", {"metrics": True})
            assert metrics["lists"] == [0, 1]
            # TA's waves all coalesce on a 2-list owner, so every data
            # frame is a multi and the sub-ops are counted per kind.
            assert metrics["ops"]["multi"] > 0
            assert metrics["ops"]["sorted_next"] > 0
            assert metrics["ops"]["random_lookup_many"] > 0
            latency = metrics["latency"]
            assert latency["count"] > 0
            assert latency["samples"] <= 16
            assert 0 < latency["p50_us"] <= latency["max_us"]
            # Metrics frames are control-plane: not in the wire stats.
            assert "state" not in fabric.stats.snapshot()["by_kind"]


class TestPoliteClose:
    """Satellite: shutdown frame -> join(timeout) -> terminate, no orphans."""

    def test_close_reaps_every_owner_process(self, database):
        columnar = ColumnarDatabase.from_database(database)
        cluster = SocketCluster(columnar, owners=2)
        processes = list(cluster._processes)
        assert len(processes) == 2
        assert all(process.is_alive() for process in processes)
        cluster.close()
        assert not any(process.is_alive() for process in processes)
        assert cluster._processes == []

    def test_double_close_is_idempotent(self, database):
        columnar = ColumnarDatabase.from_database(database)
        cluster = SocketCluster(columnar, owners=2)
        cluster.close()
        cluster.close()  # must not raise or hang
        assert cluster._processes == []

    def test_close_after_serving_queries(self, database):
        columnar = ColumnarDatabase.from_database(database)
        cluster = SocketCluster(columnar, owners=2)
        processes = list(cluster._processes)
        with cluster.connect() as fabric:
            backend = NetworkBackend.remote(
                fabric,
                m=cluster.m,
                n=cluster.n,
                protocol="batch",
                placement=cluster.placement,
            )
            DRIVERS["ta"](backend, 3, SUM)
        cluster.close()
        assert not any(process.is_alive() for process in processes)

    def test_context_manager_exit_closes(self, database):
        columnar = ColumnarDatabase.from_database(database)
        with SocketCluster(columnar, owners=1) as cluster:
            processes = list(cluster._processes)
            assert all(process.is_alive() for process in processes)
        assert not any(process.is_alive() for process in processes)


class TestHostileClientsMultiTenant:
    """Frame hardening against a server hosting several lists."""

    def test_owner_survives_malicious_client(self, wide_database):
        import socket
        import struct

        columnar = ColumnarDatabase.from_database(wide_database)
        with SocketCluster(columnar, owners=2) as cluster:
            port = cluster.ports[0]
            with socket.create_connection(("127.0.0.1", port)) as bad:
                bad.sendall(struct.pack(">I", 2**31))  # 2 GiB announcement
                assert bad.recv(1) == b""  # owner closes on us
            with socket.create_connection(("127.0.0.1", port)) as bad:
                bad.sendall(struct.pack(">I", 64) + b"abc")  # truncated
            # Both co-hosted lists still serve well-formed clients.
            with cluster.connect() as fabric:
                for index in (0, 1):
                    response = fabric.request(
                        "owner/0", "sorted_next", {"list": index}
                    )
                    assert "item" in response and "score" in response

    def test_unhosted_list_is_rejected_not_fatal(self, wide_database):
        from repro.errors import ProtocolError

        columnar = ColumnarDatabase.from_database(wide_database)
        with SocketCluster(columnar, owners=2) as cluster:
            with cluster.connect() as fabric:
                with pytest.raises(ProtocolError, match="not hosted"):
                    fabric.request("owner/0", "sorted_next", {"list": 3})
                response = fabric.request(
                    "owner/0", "sorted_next", {"list": 0}
                )
                assert "item" in response

    def test_multi_list_owner_requires_routing_field(self, wide_database):
        from repro.errors import ProtocolError

        columnar = ColumnarDatabase.from_database(wide_database)
        with SocketCluster(columnar, owners=2) as cluster:
            with cluster.connect() as fabric:
                with pytest.raises(ProtocolError, match="'list' field"):
                    fabric.request("owner/0", "sorted_next")

    def test_multi_frame_suberror_fails_whole_frame(self, wide_database):
        from repro.errors import ProtocolError

        columnar = ColumnarDatabase.from_database(wide_database)
        with SocketCluster(columnar, owners=2) as cluster:
            with cluster.connect() as fabric:
                with pytest.raises(ProtocolError):
                    fabric.request(
                        "owner/0",
                        "multi",
                        {"ops": [
                            {"kind": "sorted_next", "payload": {"list": 0}},
                            {"kind": "no-such-kind", "payload": {"list": 1}},
                        ]},
                    )
                # The owner survives and keeps serving multi frames.
                response = fabric.request(
                    "owner/0",
                    "multi",
                    {"ops": [
                        {"kind": "sorted_next", "payload": {"list": 0}},
                        {"kind": "sorted_next", "payload": {"list": 1}},
                    ]},
                )
                assert len(response["results"]) == 2


class TestHammerClusterCrossProcess:
    def test_hammer_verifies_against_snapshot(self, wide_database, tmp_path):
        from repro.distributed.cluster_bench import hammer_cluster
        from repro.storage import write_snapshot

        path = tmp_path / "db.bpsn"
        write_snapshot(wide_database, path, epoch=1)
        with SocketCluster.from_snapshot(path, owners=2) as cluster:
            spec = {
                "ports": cluster.ports,
                "placement": cluster.placement.to_dict(),
                "m": cluster.m,
                "n": cluster.n,
                "include_position": cluster.include_position,
                "snapshot": str(path),
            }
            report = hammer_cluster(spec, ks=(3, 5))
        assert report["owners"] == 2
        assert report["failures"] == 0
        assert report["verified"] is True
        assert all(row["verified"] for row in report["rows"])
