"""Differential proof that sharded execution is a pure optimization.

The merge bound of :mod:`repro.service.sharding` claims the fan-out /
merge pipeline returns *exactly* the single-database answer — ranked
items, scores and tie-breaks.  Hypothesis drives the claim across every
datagen distribution family the repo ships and shard counts 1, 2, 3 and
7 (including counts that do not divide ``n`` and counts close to ``n``),
for every merge-exact algorithm the planner can choose, with the cache
both on and off.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import get_algorithm
from repro.bench.batch import QuerySpec
from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.lists.database import Database
from repro.service import QueryService, partition_database
from repro.service.sharding import MERGE_EXACT_ALGORITHMS
from repro.testing import score_matrix_strategy as score_matrices

#: Every distribution family the repo ships.
DISTRIBUTIONS = ("uniform", "gaussian", "correlated", "zipf", "copula")
SHARD_COUNTS = (1, 2, 3, 7)


def _assert_sharded_equals_reference(database, k, algorithm, shards):
    reference = get_algorithm(algorithm).run(database, k)
    with QueryService(
        database, shards=shards, pool="serial", cache_size=0
    ) as service:
        served = service.submit(QuerySpec(algorithm, k=k))
    assert served.item_ids == reference.item_ids, (
        f"{algorithm} S={shards} k={k}: items diverge "
        f"({served.item_ids} vs {reference.item_ids})"
    )
    assert served.scores == reference.scores, (
        f"{algorithm} S={shards} k={k}: scores diverge"
    )


class TestShardMergeBound:
    """Sharded submit() == single-shard reference, all distributions."""

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @settings(max_examples=15)
    @given(data=st.data())
    def test_generated_databases(self, distribution, data):
        n = data.draw(st.integers(5, 60), label="n")
        m = data.draw(st.integers(1, 4), label="m")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        k = data.draw(st.integers(1, n), label="k")
        shards = data.draw(st.sampled_from(SHARD_COUNTS), label="shards")
        algorithm = data.draw(
            st.sampled_from(("ta", "bpa", "bpa2")), label="algorithm"
        )
        database = make_generator(distribution).generate(n, m, seed=seed)
        _assert_sharded_equals_reference(database, k, algorithm, shards)

    @settings(max_examples=20)
    @given(data=st.data())
    def test_cache_and_overfetch_do_not_change_answers(self, data):
        distribution = data.draw(
            st.sampled_from(DISTRIBUTIONS), label="distribution"
        )
        n = data.draw(st.integers(5, 50), label="n")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        shards = data.draw(st.sampled_from(SHARD_COUNTS), label="shards")
        ks = data.draw(
            st.lists(st.integers(1, n), min_size=1, max_size=6), label="ks"
        )
        database = make_generator(distribution).generate(n, 3, seed=seed)
        specs = [QuerySpec("auto", k=k) for k in ks]
        with QueryService(database, shards=shards, pool="serial") as cached:
            with_cache = cached.submit_many(specs)
        with QueryService(
            database, shards=shards, pool="serial", cache_size=0
        ) as uncached:
            without_cache = uncached.submit_many(specs)
        assert [(r.item_ids, r.scores) for r in with_cache] == [
            (r.item_ids, r.scores) for r in without_cache
        ]


class TestPartitioning:
    @given(
        matrix=score_matrices(max_items=24, max_lists=3, tie_heavy=True),
        shards=st.sampled_from(SHARD_COUNTS),
    )
    def test_shards_partition_the_item_set(self, matrix, shards):
        database = ColumnarDatabase.from_database(
            Database.from_score_rows([[float(s) for s in row] for row in matrix])
        )
        parts = partition_database(database, shards)
        assert 1 <= len(parts) <= min(shards, database.n)
        seen: set[int] = set()
        for part in parts:
            assert part.m == database.m
            assert part.n >= 1
            assert not (part.item_ids & seen)
            seen |= part.item_ids
            # Every item keeps its global local scores.
            for item in part.item_ids:
                assert part.local_scores(item) == database.local_scores(item)
        assert seen == database.item_ids

    def test_shard_counts_beyond_n_are_clamped(self):
        database = ColumnarDatabase.from_score_rows([[1.0, 2.0, 3.0]])
        parts = partition_database(database, 7)
        assert len(parts) == 3
        assert all(part.n == 1 for part in parts)


class TestMergeSafety:
    def test_nra_is_not_merge_exact(self):
        # NRA reports lower-bound scores; merging bounds across shards
        # is not provably exact, so the executor must bypass fan-out.
        assert "nra" not in MERGE_EXACT_ALGORITHMS

    @settings(max_examples=10)
    @given(data=st.data())
    def test_nra_still_served_exactly_with_shards_configured(self, data):
        n = data.draw(st.integers(5, 40), label="n")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        k = data.draw(st.integers(1, n), label="k")
        database = make_generator("uniform").generate(n, 3, seed=seed)
        reference = get_algorithm("nra").run(database, k)
        with QueryService(
            database, shards=3, pool="serial", cache_size=0
        ) as service:
            served = service.submit(QuerySpec("nra", k=k))
        assert served.item_ids == reference.item_ids
        assert served.scores == reference.scores
        assert served.stats.fanout == 1
