"""Differential proof that the unified execution core is exact.

The distributed drivers are thin wrappers over one shared driver per
algorithm (:mod:`repro.exec.drivers`); here each driver runs over every
transport — the local columnar backend, and the simulated network under
both wire protocols, with owners serving columnar lists — and must
reproduce the reference single-node algorithm *bit for bit*: identical
ranked items and scores, identical per-mode access tallies, identical
rounds.  Hypothesis drives databases from every shipped distribution
family plus arbitrary tie-heavy matrices.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.distributed import DistributedBPA, DistributedBPA2, DistributedTA
from repro.lists.database import Database
from repro.scoring import SUM
from repro.testing import score_matrix_strategy as score_matrices

DISTRIBUTIONS = ("uniform", "gaussian", "correlated", "zipf", "copula")

DRIVERS = (
    ("ta", DistributedTA),
    ("bpa", DistributedBPA),
    ("bpa2", DistributedBPA2),
)

TRANSPORTS = (
    {"transport": "local"},
    {"protocol": "entry"},
    {"protocol": "batch"},
)


def _assert_unified_matches_reference(database, k) -> None:
    columnar = ColumnarDatabase.from_database(database)
    for name, cls in DRIVERS:
        reference = get_algorithm(name).run(database, k, SUM)
        for kwargs in TRANSPORTS:
            result = cls(**kwargs).run(columnar, k, SUM)
            label = f"{name} {kwargs}"
            assert result.items == reference.items, label
            assert result.tally == reference.tally, label
            assert result.rounds == reference.rounds, label
            if name != "bpa2":
                # BPA2's stop position is reported as the deepest best
                # position (owner-side state), not the sorted depth.
                assert result.stop_position == reference.stop_position, label


class TestUnifiedColumnarBackend:
    """Every transport, bit-identical to the single-node reference."""

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_generated_databases(self, distribution, data):
        n = data.draw(st.integers(5, 40), label="n")
        m = data.draw(st.integers(1, 4), label="m")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        k = data.draw(st.integers(1, n), label="k")
        database = make_generator(distribution).generate(n, m, seed=seed)
        _assert_unified_matches_reference(database, k)

    @settings(max_examples=15, deadline=None)
    @given(
        matrix=score_matrices(max_items=16, max_lists=4, tie_heavy=True),
        data=st.data(),
    )
    def test_tie_heavy_matrices(self, matrix, data):
        database = Database.from_score_rows(
            [[float(s) for s in row] for row in matrix]
        )
        k = data.draw(st.integers(1, database.n), label="k")
        _assert_unified_matches_reference(database, k)


class TestWireProtocolEquivalence:
    """Batch coalescing changes messages, never owner-side operations."""

    @pytest.fixture(scope="class")
    def database(self):
        return make_generator("uniform").generate(300, 4, seed=11)

    @pytest.mark.parametrize("name,cls", DRIVERS)
    def test_batch_saves_messages_and_bytes(self, database, name, cls):
        entry = cls(protocol="entry").run(database, 8, SUM)
        batch = cls(protocol="batch").run(database, 8, SUM)
        assert batch.items == entry.items
        assert batch.tally == entry.tally
        entry_net, batch_net = entry.extras["network"], batch.extras["network"]
        assert batch_net["messages"] < entry_net["messages"], name
        assert batch_net["bytes"] < entry_net["bytes"], name
        # Same number of coordinator rounds either way.
        assert batch_net["rounds"] == entry_net["rounds"], name

    def test_entry_protocol_keeps_message_access_proportionality(self, database):
        for _name, cls in DRIVERS:
            result = cls(protocol="entry").run(database, 8, SUM)
            net = result.extras["network"]
            assert net["messages"] == 2 * result.tally.total

    def test_bpa2_ships_less_best_position_traffic_than_bpa(self, database):
        bpa = DistributedBPA().run(database, 8, SUM)
        bpa2 = DistributedBPA2().run(database, 8, SUM)
        assert (
            bpa2.extras["network"]["bp_bytes"]
            < bpa.extras["network"]["bp_bytes"]
        )


class TestLocalBackendSpeedPath:
    """The local transport accepts both database backends."""

    def test_plain_database_is_converted(self):
        database = make_generator("gaussian").generate(50, 3, seed=5)
        reference = get_algorithm("bpa2").run(database, 5, SUM)
        result = DistributedBPA2(transport="local").run(database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert "network" not in result.extras

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            DistributedTA(transport="carrier-pigeon")
