"""Cross-algorithm invariants, checked on *both* storage backends.

Backend equivalence (test_backend_equivalence) says "same algorithm,
same answers on either backend".  This module closes the triangle: on
each backend, every algorithm must agree with the brute-force oracle,
and the paper's comparative theorems must hold — so a backend bug that
shifted *all* algorithms identically would still be caught here.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.base import get_algorithm, known_algorithms
from repro.algorithms.naive import brute_force_topk
from repro.columnar import ColumnarDatabase
from repro.lists.database import Database
from repro.scoring import SUM
from repro.testing import score_matrix_strategy as score_matrices

#: Algorithms that return exact overall scores for the top-k (NRA proves
#: membership through bounds and reports bound midpoints, so it is
#: checked on item sets elsewhere, not on exact scores).
EXACT_SCORE_ALGORITHMS = tuple(
    name for name in known_algorithms() if name != "nra"
)


def _both_backends(matrix):
    database = Database.from_score_rows(
        [[float(s) for s in row] for row in matrix]
    )
    return database, ColumnarDatabase.from_database(database)


class TestOracleAgreementOnBothBackends:
    @given(
        matrix=score_matrices(max_items=18, max_lists=4, tie_heavy=True),
        data=st.data(),
    )
    def test_every_algorithm_matches_brute_force(self, matrix, data):
        database, columnar = _both_backends(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        expected = brute_force_topk(database, k, SUM)
        for name in EXACT_SCORE_ALGORITHMS:
            for backend_label, backend in (
                ("python", database),
                ("columnar", columnar),
            ):
                result = get_algorithm(name).run(backend, k, SUM)
                assert len(result.items) == len(expected), (name, backend_label)
                for got, want in zip(result.items, expected):
                    assert math.isclose(
                        got.score, want.score, rel_tol=0.0, abs_tol=1e-9
                    ), f"{name} on {backend_label}: {result.items} != {expected}"

    @given(
        matrix=score_matrices(max_items=18, max_lists=4, tie_heavy=True),
        data=st.data(),
    )
    def test_exact_algorithms_agree_above_the_tie_boundary(self, matrix, data):
        # Exact algorithms must return the oracle's exact score vector.
        # Ids must also match everywhere *above* the k-th score's tie
        # group: ties at the boundary are legitimately resolved by
        # discovery order, which differs per algorithm (but never per
        # backend — backend id-equality is asserted in
        # test_backend_equivalence).
        database, columnar = _both_backends(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        expected = brute_force_topk(database, k, SUM)
        expected_scores = tuple(e.score for e in expected)
        cutoff = expected_scores[-1]
        prefix_ids = tuple(e.item for e in expected if e.score > cutoff)
        for name in ("ta", "bpa", "bpa2", "naive", "fa"):
            for backend in (database, columnar):
                result = get_algorithm(name).run(backend, k, SUM)
                assert result.scores == expected_scores, name
                assert result.item_ids[: len(prefix_ids)] == prefix_ids, name


class TestPaperTheoremsOnBothBackends:
    @given(
        matrix=score_matrices(max_items=20, max_lists=4),
        data=st.data(),
    )
    def test_bpa_stops_no_later_than_ta(self, matrix, data):
        """Lemma 1: BPA's stopping position never exceeds TA's."""
        database, columnar = _both_backends(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        for backend in (database, columnar):
            ta = get_algorithm("ta").run(backend, k, SUM)
            bpa = get_algorithm("bpa").run(backend, k, SUM)
            assert bpa.stop_position <= ta.stop_position

    @given(
        matrix=score_matrices(max_items=20, max_lists=4),
        data=st.data(),
    )
    def test_bpa2_never_does_more_accesses_than_bpa(self, matrix, data):
        """Theorem 7, on both backends."""
        database, columnar = _both_backends(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        for backend in (database, columnar):
            bpa = get_algorithm("bpa").run(backend, k, SUM)
            bpa2 = get_algorithm("bpa2").run(backend, k, SUM)
            assert bpa2.tally.total <= bpa.tally.total

    @given(
        matrix=score_matrices(max_items=20, max_lists=4, tie_heavy=True),
        data=st.data(),
    )
    def test_bpa2_reads_no_position_twice(self, matrix, data):
        """Theorem 5 on the columnar backend: per-list accesses equal
        distinct seen positions."""
        _database, columnar = _both_backends(matrix)
        k = data.draw(st.integers(1, columnar.n), label="k")
        result = get_algorithm("bpa2").run(columnar, k, SUM)
        assert (
            result.extras["per_list_accesses"]
            == result.extras["per_list_distinct_positions"]
        )


class TestTallyShapesOnBothBackends:
    @given(
        matrix=score_matrices(max_items=16, max_lists=4),
        data=st.data(),
    )
    def test_access_mode_profile_per_algorithm(self, matrix, data):
        """TA/BPA use sorted+random, BPA2 direct+random, naive sorted-only
        — on both backends, with the paper's exact random/sorted ratio."""
        database, columnar = _both_backends(matrix)
        k = data.draw(st.integers(1, database.n), label="k")
        m = database.m
        for backend in (database, columnar):
            for name in ("ta", "bpa"):
                tally = get_algorithm(name).run(backend, k, SUM).tally
                assert tally.direct == 0
                assert tally.random == tally.sorted * (m - 1)  # Lemma 2
            bpa2 = get_algorithm("bpa2").run(backend, k, SUM).tally
            assert bpa2.sorted == 0
            naive = get_algorithm("naive").run(backend, k, SUM).tally
            assert naive.sorted == m * database.n
            assert naive.random == 0 and naive.direct == 0


@pytest.mark.parametrize("index_kind", ["dict", "btree"])
def test_python_index_kind_does_not_change_results(index_kind):
    """The columnar backend must match either python index flavour."""
    rows = [[float((i * 7 + j * 3) % 5) for i in range(25)] for j in range(3)]
    database = Database.from_score_rows(rows, index_kind=index_kind)
    columnar = ColumnarDatabase.from_score_rows(rows)
    for name in ("ta", "bpa", "bpa2"):
        reference = get_algorithm(name).run(database, 5, SUM)
        result = get_algorithm(name).run(columnar, 5, SUM)
        assert reference == result
        assert reference.extras == result.extras
