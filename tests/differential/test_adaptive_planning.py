"""Differential proof that adaptive planning is a pure optimization.

The control loop (:mod:`repro.service.feedback`) may move a query
between algorithms, transports and block widths at any moment — but
every candidate is exact, so the *only* observable difference allowed
is cost.  Hypothesis drives three claims:

* every adaptive decision stays on the valid configuration lattice
  (auto candidates, ``WIDTH_LATTICE`` widths, ``k_fetch >= k``);
* answers are bit-identical to a static cache-off service, phase
  shifts, adversarial outliers and drift re-tuning included;
* hysteresis holds: once converged on a stationary workload, the
  feedback store re-plans at most once more (no flapping between
  near-tied arms).

Plus the width-provider equivalence the probe relies on: a *callable*
block width returning a constant is indistinguishable from the static
width — same items, rounds and wire traffic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.batch import QuerySpec
from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.distributed.algorithms import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
)
from repro.scoring import SUM
from repro.service import QueryService, ServicePolicy
from repro.service.feedback import WIDTH_LATTICE
from repro.service.planner import AUTO_CANDIDATES
from repro.service.workload import WorkloadConfig, build_workload

ADAPTIVE_POLICY = dict(
    transport="network",
    wire_protocol="batch",
    block_width=4,
    adaptive=True,
    feedback_min_samples=1,
    drift_window=8,
)


def _database(generator: str, n: int, m: int, seed: int):
    return ColumnarDatabase.from_database(
        make_generator(generator).generate(n, m, seed=seed)
    )


def _workload(seed: int, *, phase_shift: int, adversarial: float):
    return build_workload(
        WorkloadConfig(
            generator="uniform",
            n=300,
            m=3,
            seed=seed,
            queries=48,
            distinct=8,
            k_max=12,
            phase_shift=phase_shift,
            adversarial_ratio=adversarial,
        )
    )


class TestAdaptiveIsAPureOptimization:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        phase_shift=st.integers(min_value=0, max_value=3),
        adversarial=st.sampled_from([0.0, 0.2]),
    )
    def test_bit_identical_answers_under_every_decision(
        self, seed, phase_shift, adversarial
    ):
        database = _database("uniform", 300, 3, seed % 7)
        workload = _workload(
            seed, phase_shift=phase_shift, adversarial=adversarial
        )
        with QueryService(
            database, shards=1, pool="serial", cache_size=0
        ) as static:
            expected = static.submit_many(workload)
        with QueryService(
            database,
            shards=1,
            pool="serial",
            cache_size=0,
            policy=ServicePolicy(**ADAPTIVE_POLICY),
        ) as adaptive:
            served = adaptive.submit_many(workload)
        assert [r.item_ids for r in served] == [
            r.item_ids for r in expected
        ]
        assert [r.scores for r in served] == [r.scores for r in expected]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_decisions_stay_on_the_configuration_lattice(self, seed):
        database = _database("uniform", 300, 3, 11)
        workload = _workload(seed, phase_shift=2, adversarial=0.2)
        with QueryService(
            database,
            shards=1,
            pool="serial",
            cache_size=0,
            policy=ServicePolicy(**ADAPTIVE_POLICY),
        ) as service:
            for spec in workload:
                result = service.submit(spec)
                plan = result.stats.plan
                assert plan.algorithm in AUTO_CANDIDATES
                assert plan.k_fetch >= min(spec.k, database.n)
                assert result.stats.effective_block_width in (
                    0,
                    *WIDTH_LATTICE,
                )
            for controller in service.adaptive_state.controllers.values():
                assert controller.width in WIDTH_LATTICE

    def test_stationary_workload_replans_at_most_once_after_convergence(
        self,
    ):
        database = _database("uniform", 300, 3, 5)
        stationary = [
            QuerySpec("auto", k=4 + (index % 3)) for index in range(96)
        ]
        with QueryService(
            database,
            shards=1,
            pool="serial",
            cache_size=0,
            policy=ServicePolicy(**ADAPTIVE_POLICY),
        ) as service:
            for spec in stationary[:48]:
                service.submit(spec)
            converged = service.adaptive_state.feedback.replans
            for spec in stationary[48:]:
                service.submit(spec)
            assert (
                service.adaptive_state.feedback.replans - converged <= 1
            )
            # Stationary shape: the drift detector must stay quiet.
            assert service.counters.drift_epochs == 0


class TestCallableWidthEquivalence:
    @pytest.mark.parametrize(
        "driver_cls", [DistributedTA, DistributedBPA, DistributedBPA2]
    )
    def test_degenerate_callable_width_one_serves_identical_answers(
        self, driver_cls
    ):
        # A callable width always routes through the *block* planner;
        # at width 1 its frame pattern differs from the plain plan, but
        # the answer must not.
        database = _database("uniform", 200, 3, 9)
        plain = driver_cls(protocol="batch", block_width=1).run(
            database, 7, SUM
        )
        blocked = driver_cls(
            protocol="batch", block_width=lambda: 1
        ).run(database, 7, SUM)
        assert blocked.items == plain.items

    @pytest.mark.parametrize(
        "driver_cls", [DistributedTA, DistributedBPA, DistributedBPA2]
    )
    @pytest.mark.parametrize("width", [w for w in WIDTH_LATTICE if w > 1])
    def test_constant_callable_matches_static_width(
        self, driver_cls, width
    ):
        database = _database("uniform", 200, 3, 9)
        static = driver_cls(protocol="batch", block_width=width).run(
            database, 7, SUM
        )
        adaptive = driver_cls(
            protocol="batch", block_width=lambda: width
        ).run(database, 7, SUM)
        assert adaptive.items == static.items
        assert adaptive.rounds == static.rounds
        assert (
            adaptive.extras["network"]["messages"]
            == static.extras["network"]["messages"]
        )
        assert (
            adaptive.extras["network"]["bytes"]
            == static.extras["network"]["bytes"]
        )
