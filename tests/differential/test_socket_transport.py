"""Differential proof that the real TCP transport is exact.

One :class:`SocketCluster` spawns an OS process per list owner; the
round-plan drivers talk to them through length-prefixed JSON frames.
Every driver, under both batch-family protocols and for classic and
block rounds, must reproduce the registered reference single-node
algorithm bit for bit — identical ranked items, per-mode access tallies
and round counts — and the pipelined protocol must ship exactly the
batched protocol's messages and bytes (its saving is wall-clock only).
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.distributed import DistributedBPA, DistributedBPA2, DistributedTA
from repro.distributed.socket_transport import SocketCluster
from repro.distributed.transport import NetworkBackend
from repro.exec.drivers import DRIVERS
from repro.scoring import SUM

DRIVER_CLASSES = (
    ("ta", DistributedTA),
    ("bpa", DistributedBPA),
    ("bpa2", DistributedBPA2),
)


@pytest.fixture(scope="module")
def database():
    return make_generator("zipf").generate(50, 3, seed=19)


class TestSocketTransportExactness:
    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    @pytest.mark.parametrize("protocol", ["batch", "pipelined"])
    def test_classic_drivers_bit_identical(self, database, name, cls, protocol):
        reference = get_algorithm(name).run(database, 5, SUM)
        result = cls(protocol=protocol, transport="socket").run(
            database, 5, SUM
        )
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.rounds == reference.rounds
        assert result.extras["transport"] == "socket"

    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    def test_block_drivers_bit_identical(self, database, name, cls):
        reference = get_algorithm(f"{name}-block", width=4).run(
            database, 5, SUM
        )
        result = cls(
            protocol="pipelined", transport="socket", block_width=4
        ).run(database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.rounds == reference.rounds

    def test_pipelined_message_counts_equal_batch(self, database):
        nets = {}
        for protocol in ("batch", "pipelined"):
            result = DistributedBPA2(
                protocol=protocol, transport="socket", block_width=4
            ).run(database, 5, SUM)
            nets[protocol] = result.extras["network"]
        assert nets["batch"]["messages"] == nets["pipelined"]["messages"]
        assert nets["batch"]["bytes"] == nets["pipelined"]["bytes"]
        assert nets["batch"]["rounds"] == nets["pipelined"]["rounds"]

    def test_entry_protocol_over_sockets(self, database):
        # Per-entry RPC also speaks TCP; same answers, more messages.
        reference = get_algorithm("ta").run(database, 4, SUM)
        entry = DistributedTA(protocol="entry", transport="socket").run(
            database, 4, SUM
        )
        batch = DistributedTA(protocol="batch", transport="socket").run(
            database, 4, SUM
        )
        assert entry.items == reference.items
        assert entry.tally == reference.tally
        assert entry.extras["network"]["messages"] > (
            batch.extras["network"]["messages"]
        )


class TestWarmClusterSessions:
    def test_reset_supports_many_queries_per_cluster(self, database):
        """One cluster serves many queries; ``reset`` clears owner state."""
        columnar = ColumnarDatabase.from_database(database)
        reference = get_algorithm("bpa2").run(database, 5, SUM)
        with SocketCluster(columnar) as cluster, cluster.connect() as fabric:
            for _ in range(3):
                for index in range(cluster.m):
                    fabric.request(f"owner/{index}", "reset")
                fabric.reset_stats()
                backend = NetworkBackend.remote(
                    fabric, m=cluster.m, n=cluster.n, protocol="pipelined"
                )
                outcome = DRIVERS["bpa2"](backend, 5, SUM)
                assert outcome.items == reference.items
                assert backend.total_tally() == reference.tally

    def test_owner_errors_travel_as_protocol_errors(self, database):
        from repro.errors import ProtocolError

        columnar = ColumnarDatabase.from_database(database)
        with SocketCluster(columnar) as cluster, cluster.connect() as fabric:
            with pytest.raises(ProtocolError, match="no-such-kind"):
                fabric.request("owner/0", "no-such-kind")
            # The owner survives a bad request and keeps serving.
            response = fabric.request("owner/0", "sorted_next")
            assert "item" in response and "score" in response
