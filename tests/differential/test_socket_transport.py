"""Differential proof that the real TCP transport is exact.

One :class:`SocketCluster` spawns an OS process per list owner; the
round-plan drivers talk to them through length-prefixed JSON frames.
Every driver, under both batch-family protocols and for classic and
block rounds, must reproduce the registered reference single-node
algorithm bit for bit — identical ranked items, per-mode access tallies
and round counts — and the pipelined protocol must ship exactly the
batched protocol's messages and bytes (its saving is wall-clock only).
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.distributed import DistributedBPA, DistributedBPA2, DistributedTA
from repro.distributed.socket_transport import SocketCluster
from repro.distributed.transport import NetworkBackend
from repro.exec.drivers import DRIVERS
from repro.scoring import SUM

DRIVER_CLASSES = (
    ("ta", DistributedTA),
    ("bpa", DistributedBPA),
    ("bpa2", DistributedBPA2),
)


@pytest.fixture(scope="module")
def database():
    return make_generator("zipf").generate(50, 3, seed=19)


class TestSocketTransportExactness:
    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    @pytest.mark.parametrize("protocol", ["batch", "pipelined"])
    def test_classic_drivers_bit_identical(self, database, name, cls, protocol):
        reference = get_algorithm(name).run(database, 5, SUM)
        result = cls(protocol=protocol, transport="socket").run(
            database, 5, SUM
        )
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.rounds == reference.rounds
        assert result.extras["transport"] == "socket"

    @pytest.mark.parametrize("name,cls", DRIVER_CLASSES)
    def test_block_drivers_bit_identical(self, database, name, cls):
        reference = get_algorithm(f"{name}-block", width=4).run(
            database, 5, SUM
        )
        result = cls(
            protocol="pipelined", transport="socket", block_width=4
        ).run(database, 5, SUM)
        assert result.items == reference.items
        assert result.tally == reference.tally
        assert result.rounds == reference.rounds

    def test_pipelined_message_counts_equal_batch(self, database):
        nets = {}
        for protocol in ("batch", "pipelined"):
            result = DistributedBPA2(
                protocol=protocol, transport="socket", block_width=4
            ).run(database, 5, SUM)
            nets[protocol] = result.extras["network"]
        assert nets["batch"]["messages"] == nets["pipelined"]["messages"]
        assert nets["batch"]["bytes"] == nets["pipelined"]["bytes"]
        assert nets["batch"]["rounds"] == nets["pipelined"]["rounds"]

    def test_entry_protocol_over_sockets(self, database):
        # Per-entry RPC also speaks TCP; same answers, more messages.
        reference = get_algorithm("ta").run(database, 4, SUM)
        entry = DistributedTA(protocol="entry", transport="socket").run(
            database, 4, SUM
        )
        batch = DistributedTA(protocol="batch", transport="socket").run(
            database, 4, SUM
        )
        assert entry.items == reference.items
        assert entry.tally == reference.tally
        assert entry.extras["network"]["messages"] > (
            batch.extras["network"]["messages"]
        )


class TestWarmClusterSessions:
    def test_reset_supports_many_queries_per_cluster(self, database):
        """One cluster serves many queries; ``reset`` clears owner state."""
        columnar = ColumnarDatabase.from_database(database)
        reference = get_algorithm("bpa2").run(database, 5, SUM)
        with SocketCluster(columnar) as cluster, cluster.connect() as fabric:
            for _ in range(3):
                for index in range(cluster.m):
                    fabric.request(f"owner/{index}", "reset")
                fabric.reset_stats()
                backend = NetworkBackend.remote(
                    fabric, m=cluster.m, n=cluster.n, protocol="pipelined"
                )
                outcome = DRIVERS["bpa2"](backend, 5, SUM)
                assert outcome.items == reference.items
                assert backend.total_tally() == reference.tally

    def test_owner_errors_travel_as_protocol_errors(self, database):
        from repro.errors import ProtocolError

        columnar = ColumnarDatabase.from_database(database)
        with SocketCluster(columnar) as cluster, cluster.connect() as fabric:
            with pytest.raises(ProtocolError, match="no-such-kind"):
                fabric.request("owner/0", "no-such-kind")
            # The owner survives a bad request and keeps serving.
            response = fabric.request("owner/0", "sorted_next")
            assert "item" in response and "score" in response


class TestFrameHardening:
    """The frame reader must reject, not buffer, hostile streams."""

    @staticmethod
    def _pair():
        import socket

        return socket.socketpair()

    def test_oversized_length_prefix_rejected_before_body(self):
        import struct

        from repro.distributed.socket_transport import recv_frame
        from repro.errors import ProtocolError

        left, right = self._pair()
        with left, right:
            # A 2 GiB announcement with no body behind it: the reader
            # must refuse up front rather than block buffering forever.
            left.sendall(struct.pack(">I", 2**31))
            with pytest.raises(ProtocolError, match="limit"):
                recv_frame(right)

    def test_small_max_bytes_is_enforced(self):
        from repro.distributed.socket_transport import recv_frame, send_frame
        from repro.errors import ProtocolError

        left, right = self._pair()
        with left, right:
            send_frame(left, {"pad": "x" * 256})
            with pytest.raises(ProtocolError, match="limit"):
                recv_frame(right, max_bytes=64)

    def test_truncated_body_raises_connection_error(self):
        import struct

        from repro.distributed.socket_transport import recv_frame

        left, right = self._pair()
        with right:
            left.sendall(struct.pack(">I", 100) + b"only ten b")
            left.close()  # EOF mid-body
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_frame(right)

    def test_garbled_body_raises_protocol_error(self):
        import struct

        from repro.distributed.socket_transport import recv_frame
        from repro.errors import ProtocolError

        left, right = self._pair()
        with left, right:
            body = b"\xff\xfe not json"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_frame(right)

    def test_non_object_body_raises_protocol_error(self):
        import struct

        from repro.distributed.socket_transport import recv_frame
        from repro.errors import ProtocolError

        left, right = self._pair()
        with left, right:
            body = b"[1, 2, 3]"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="JSON object"):
                recv_frame(right)

    def test_send_frame_refuses_oversized_message(self):
        from repro.distributed.socket_transport import send_frame
        from repro.errors import ProtocolError

        left, right = self._pair()
        with left, right:
            with pytest.raises(ProtocolError, match="refusing to send"):
                send_frame(left, {"pad": "x" * 1024}, max_bytes=128)

    def test_owner_survives_malicious_client(self, database):
        """A hostile frame drops that client, not the owner process."""
        import socket
        import struct

        columnar = ColumnarDatabase.from_database(database)
        with SocketCluster(columnar) as cluster:
            port = cluster.ports[0]
            # 1: oversized announcement.
            with socket.create_connection(("127.0.0.1", port)) as bad:
                bad.sendall(struct.pack(">I", 2**31))
                assert bad.recv(1) == b""  # owner closes on us
            # 2: truncated frame (claims 64 bytes, ships 3, hangs up).
            with socket.create_connection(("127.0.0.1", port)) as bad:
                bad.sendall(struct.pack(">I", 64) + b"abc")
            # The owner still serves well-formed clients afterwards.
            with cluster.connect() as fabric:
                response = fabric.request("owner/0", "sorted_next")
                assert "item" in response and "score" in response
