"""Stateful mutation-fuzz of the delta-aware result cache.

A rule-based state machine drives a live :class:`QueryService` over a
:class:`DynamicDatabase`: score updates, inserts and removals interleave
with query submissions in every order Hypothesis can invent, across all
datagen distribution families, tie-heavy integer scores, both SUM and
MIN scoring, one and two shards, and deliberately tiny mutation-log /
patch-limit knobs (so truncation and patch-overflow paths are exercised,
not just the happy revalidation path).

The single invariant: **every** served answer — whatever its cache
outcome (hit, revalidated, patched, or fresh execution) — is an exact
ranked top-k of the database's *current* state: the served score
sequence is bit-identical to the brute-force oracle's and every served
item honestly carries its own current aggregate.  Wherever scores are
untied this means identical items and tie-breaks too; within an
equal-score tie group item identity follows the library's equivalence
contract (:meth:`repro.types.TopKResult.same_scores` — engines may
include either tied item, all correctly).  The cache may only ever
change *how fast* an answer arrives, never what it is.
"""

from __future__ import annotations

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.bench.batch import QuerySpec
from repro.datagen.base import make_generator
from repro.scoring import MIN, SUM
from repro.service import QueryService, ServicePolicy
from repro.service.workload import answers_match, dynamic_from, fresh_topk

FAMILIES = ("uniform", "gaussian", "correlated", "zipf", "copula")
ALGORITHMS = ("ta", "bpa", "bpa2", "auto")
SCORINGS = (SUM, MIN)

#: Scores mix a tiny grid (forcing aggregate ties, the nastiest
#: certificate edge) with ordinary floats.  The range matches the
#: datagen families' local-score scale so mutations land everywhere
#: relative to the cached boundary: below it (revalidations), around it
#: (ties, patches) and above it (entries, certificate breaks).
scores = st.one_of(
    st.integers(min_value=0, max_value=4).map(lambda v: v / 4),
    st.floats(
        min_value=0.0,
        max_value=1.5,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ).map(float),
)


class CacheDeltaMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.service: QueryService | None = None
        self.source = None
        self.next_id = 0
        #: the most recent query and its served top items — raw material
        #: for the targeted rules that stress the certificate boundary.
        self.last_query: tuple | None = None
        self.last_top: tuple = ()

    @initialize(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=2**16),
        # Spans both regimes: k_fetch covering most of the database
        # (every item a cached member — deletes/patches dominate) and
        # k_fetch far below n (outsider mutations — revalidations).
        n=st.integers(min_value=4, max_value=32),
        m=st.integers(min_value=2, max_value=3),
        shards=st.sampled_from((1, 2)),
        log_depth=st.sampled_from((4, 16, 64)),
        patch_limit=st.sampled_from((1, 3, 8)),
    )
    def setup(self, family, seed, n, m, shards, log_depth, patch_limit):
        database = make_generator(family).generate(n, m, seed=seed)
        self.source = dynamic_from(database)
        self.next_id = n + 1000
        self.service = QueryService(
            self.source,
            shards=shards,
            pool="serial",
            policy=ServicePolicy(
                delta_log_depth=log_depth, delta_patch_limit=patch_limit
            ),
        )

    def teardown(self):
        if self.service is not None:
            self.service.close()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    @rule(data=st.data())
    def update_score(self, data):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        self.source.update_score(
            data.draw(st.integers(0, self.source.m - 1), label="list"),
            data.draw(st.sampled_from(ids), label="item"),
            data.draw(scores, label="score"),
        )

    @rule(data=st.data())
    def insert_item(self, data):
        self.source.insert_item(
            self.next_id,
            [data.draw(scores, label="score") for _ in range(self.source.m)],
        )
        self.next_id += 1

    @rule(data=st.data())
    def remove_item(self, data):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        self.source.remove_item(data.draw(st.sampled_from(ids), label="item"))

    @rule(data=st.data())
    def mutate_recent_top_item(self, data):
        # Aim straight at the certificate: touching a *cached member*
        # forces the patch path (reorders, boundary-weakening
        # downgrades, exact re-merges) instead of the easy
        # outsider-revalidation path random ids mostly hit.
        candidates = [
            item for item in self.last_top if item in self.source.lists[0]
        ]
        if not candidates:
            return
        self.source.update_score(
            data.draw(st.integers(0, self.source.m - 1), label="list"),
            data.draw(st.sampled_from(candidates), label="member"),
            data.draw(scores, label="score"),
        )

    @rule()
    def requery_last(self):
        # Re-submitting the previous spec right after mutations is the
        # lookup most likely to exercise revalidate/patch (the entry is
        # guaranteed hot and the delta window short).
        if self.last_query is None:
            return
        k, algorithm, scoring = self.last_query
        self.query(k=k, algorithm=algorithm, scoring=scoring)

    @rule(roll=st.integers(min_value=0, max_value=7))
    def manual_invalidate(self, roll):
        # A record-less epoch bump: poisons the log; everything cached
        # before it must recompute, never revalidate.  Fires on one roll
        # in eight so it does not drown the delta paths it exists to foil.
        if roll == 0:
            self.service.invalidate()

    # ------------------------------------------------------------------
    # Queries — each one is the oracle check
    # ------------------------------------------------------------------

    @rule(
        k=st.integers(min_value=1, max_value=6),
        algorithm=st.sampled_from(ALGORITHMS),
        scoring=st.sampled_from(SCORINGS),
    )
    def query(self, k, algorithm, scoring):
        served = self.service.submit(
            QuerySpec(algorithm, k=k, scoring=scoring)
        )
        self.last_query = (k, algorithm, scoring)
        self.last_top = served.item_ids
        outcome = served.stats.cache_outcome
        assert answers_match(
            served.item_ids, served.scores, self.source, k, scoring
        ), (
            f"{outcome} served a non-exact top-{k}: "
            f"{served.item_ids}/{served.scores} vs oracle "
            f"{fresh_topk(self.source, k, scoring)}"
        )

    @invariant()
    def counters_are_coherent(self):
        if self.service is None:
            return
        counters = self.service.counters
        assert counters.queries == (
            counters.cache_hits + counters.executions + counters.empty_serves
        )
        assert counters.revalidated + counters.patched <= counters.cache_hits


TestCacheDeltas = CacheDeltaMachine.TestCase
TestCacheDeltas.settings = settings(
    max_examples=300,
    stateful_step_count=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
