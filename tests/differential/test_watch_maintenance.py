"""Stateful mutation-fuzz of standing-query maintenance.

The watch sibling of :mod:`test_cache_deltas`: a rule-based state
machine drives a live :class:`QueryService` over a
:class:`DynamicDatabase` while standing subscriptions come and go —
score updates, inserts, removals, targeted hits on subscribed members,
record-less invalidations, new subscriptions mid-stream and
cancellations, across distribution families, tie-heavy scores, SUM and
MIN, and deliberately tiny patch limits.

Two invariants, checked after **every** step for **every** live
subscription:

1. **Exactness** — the maintained answer is an exact ranked top-k of
   the database's *current* state (same tie contract as the cache
   suite: bit-identical scores, honest per-item aggregates).
   Maintenance runs synchronously inside the mutation, so there is no
   settling window to hide in.
2. **Replay** — folding the subscription's pushed delta stream (strictly
   sequence-continuous) over its *initial* answer reconstructs the
   maintained answer bit for bit.  The deltas are the wire protocol's
   payload, so this is the guarantee a remote mirror lives on.
"""

from __future__ import annotations

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.bench.batch import QuerySpec
from repro.datagen.base import make_generator
from repro.scoring import MIN, SUM
from repro.service import QueryService, ServicePolicy
from repro.service.workload import answers_match, dynamic_from, fresh_topk
from repro.watch.frames import apply_delta

FAMILIES = ("uniform", "gaussian", "correlated", "zipf", "copula")
ALGORITHMS = ("ta", "bpa", "bpa2", "auto")
SCORINGS = (SUM, MIN)
MAX_LIVE = 4

#: Same grid-plus-floats mix as the cache fuzz: forced aggregate ties
#: are the nastiest certificate edge, and the range straddles the
#: maintained boundaries so mutations land below, around and above.
scores = st.one_of(
    st.integers(min_value=0, max_value=4).map(lambda v: v / 4),
    st.floats(
        min_value=0.0,
        max_value=1.5,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ).map(float),
)


class Mirror:
    """A client-side replica: the initial answer plus replayed deltas."""

    def __init__(self, subscription) -> None:
        self.subscription = subscription
        self.entries = subscription.entries
        self.seq = subscription.seq

    def catch_up(self) -> None:
        for delta in self.subscription.poll():
            assert delta.seq == self.seq + 1, (
                f"delta gap on #{self.subscription.id}: "
                f"{delta.seq} after {self.seq}"
            )
            self.entries = apply_delta(self.entries, delta)
            self.seq = delta.seq


class WatchMaintenanceMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.service: QueryService | None = None
        self.source = None
        self.next_id = 0
        self.mirrors: list[Mirror] = []

    @initialize(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=2**16),
        # Small n with k up to 6 spans both regimes: full answers with
        # a live boundary, and underfull (exhaustive) answers where the
        # subscription covers the entire database.
        n=st.integers(min_value=3, max_value=24),
        m=st.integers(min_value=2, max_value=3),
        patch_limit=st.sampled_from((1, 2, 8)),
    )
    def setup(self, family, seed, n, m, patch_limit):
        database = make_generator(family).generate(n, m, seed=seed)
        self.source = dynamic_from(database)
        self.next_id = n + 1000
        self.service = QueryService(
            self.source,
            shards=1,
            pool="serial",
            policy=ServicePolicy(
                watch_patch_limit=patch_limit,
                max_subscriptions=MAX_LIVE,
            ),
        )

    def teardown(self):
        if self.service is not None:
            self.service.close()

    # ------------------------------------------------------------------
    # Subscription churn
    # ------------------------------------------------------------------

    @precondition(lambda self: len(self.mirrors) < MAX_LIVE)
    @rule(
        k=st.integers(min_value=1, max_value=6),
        algorithm=st.sampled_from(ALGORITHMS),
        scoring=st.sampled_from(SCORINGS),
    )
    def subscribe(self, k, algorithm, scoring):
        subscription = self.service.watch(
            QuerySpec(algorithm, k=k, scoring=scoring)
        )
        self.mirrors.append(Mirror(subscription))

    @precondition(lambda self: self.mirrors)
    @rule(index=st.integers(min_value=0, max_value=MAX_LIVE - 1))
    def cancel(self, index):
        mirror = self.mirrors.pop(index % len(self.mirrors))
        mirror.subscription.cancel()
        assert not mirror.subscription.active

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    @rule(data=st.data())
    def update_score(self, data):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        self.source.update_score(
            data.draw(st.integers(0, self.source.m - 1), label="list"),
            data.draw(st.sampled_from(ids), label="item"),
            data.draw(scores, label="score"),
        )

    @rule(data=st.data())
    def insert_item(self, data):
        self.source.insert_item(
            self.next_id,
            [data.draw(scores, label="score") for _ in range(self.source.m)],
        )
        self.next_id += 1

    @rule(data=st.data())
    def remove_item(self, data):
        ids = sorted(self.source.item_ids)
        if not ids:
            return
        self.source.remove_item(data.draw(st.sampled_from(ids), label="item"))

    @precondition(lambda self: self.mirrors)
    @rule(data=st.data())
    def mutate_subscribed_member(self, data):
        # Aim straight at a maintained answer: touching a member forces
        # the patch path (re-ranks, boundary weakenings, exact
        # re-merges) instead of the outsider-unchanged path random ids
        # mostly take.
        mirror = data.draw(st.sampled_from(self.mirrors), label="mirror")
        candidates = [
            item
            for item in mirror.subscription.item_ids
            if item in self.source.lists[0]
        ]
        if not candidates:
            return
        self.source.update_score(
            data.draw(st.integers(0, self.source.m - 1), label="list"),
            data.draw(st.sampled_from(candidates), label="member"),
            data.draw(scores, label="score"),
        )

    @rule(roll=st.integers(min_value=0, max_value=7))
    def manual_invalidate(self, roll):
        # A record-less epoch bump: every subscription must recompute
        # (and push only if its answer visibly moved).
        if roll == 0:
            self.service.invalidate()

    # ------------------------------------------------------------------
    # The oracle
    # ------------------------------------------------------------------

    @invariant()
    def every_mirror_is_the_exact_topk(self):
        if self.service is None:
            return
        for mirror in self.mirrors:
            subscription = mirror.subscription
            spec = subscription.spec
            assert answers_match(
                subscription.item_ids,
                subscription.scores,
                self.source,
                spec.k,
                spec.scoring,
            ), (
                f"subscription #{subscription.id} drifted from the "
                f"oracle: {subscription.item_ids}/{subscription.scores} "
                f"vs {fresh_topk(self.source, spec.k, spec.scoring)} "
                f"after {subscription.stats}"
            )
            mirror.catch_up()
            assert mirror.entries == subscription.entries, (
                f"delta replay of #{subscription.id} diverged: "
                f"{mirror.entries} vs {subscription.entries}"
            )

    @invariant()
    def stats_are_coherent(self):
        if self.service is None:
            return
        counters = self.service.counters
        total_deltas = counters.watch_deltas
        outcomes = (
            counters.watch_unchanged
            + counters.watch_patched
            + counters.watch_recomputed
        )
        # A delta needs a patched or recomputed outcome behind it; an
        # unchanged outcome never pushes.
        assert total_deltas <= counters.watch_patched + counters.watch_recomputed
        assert outcomes >= total_deltas
        for mirror in self.mirrors:
            stats = mirror.subscription.stats
            assert stats.deltas <= stats.patched + stats.recomputed


TestWatchMaintenance = WatchMaintenanceMachine.TestCase
TestWatchMaintenance.settings = settings(
    max_examples=200,
    stateful_step_count=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
