"""Differential proof that the block variants are exact — everywhere.

Two claims, both bit-level:

* **Exactness.**  ``ta-block`` / ``bpa-block`` / ``bpa2-block`` return
  the identical ranked top-k (items *and* scores) as the classic
  algorithms, for every block width — block rounds only coarsen *when*
  the stop test runs, never what is returned.
* **Engine equivalence.**  The round-plan engine driving any transport
  (local columnar backend; simulated network under the entry, batch and
  pipelined wire protocols) reproduces the registered reference block
  algorithms bit for bit: identical items, per-mode access tallies and
  round counts.  Hypothesis drives databases from every shipped
  distribution family plus arbitrary tie-heavy matrices.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.distributed import DistributedBPA, DistributedBPA2, DistributedTA
from repro.lists.database import Database
from repro.scoring import SUM
from repro.testing import score_matrix_strategy as score_matrices

DISTRIBUTIONS = ("uniform", "gaussian", "correlated", "zipf", "copula")

BLOCK_DRIVERS = (
    ("ta", DistributedTA),
    ("bpa", DistributedBPA),
    ("bpa2", DistributedBPA2),
)

TRANSPORTS = (
    {"transport": "local"},
    {"protocol": "entry"},
    {"protocol": "batch"},
    {"protocol": "pipelined"},
)


def _assert_block_matches_reference(database, k, width) -> None:
    columnar = ColumnarDatabase.from_database(database)
    for name, cls in BLOCK_DRIVERS:
        classic = get_algorithm(name).run(database, k, SUM)
        if width == 1:
            # ``block_width=1`` keeps the classic per-entry round
            # structure (Lemma 2 accounting included) — the registered
            # ``*-block`` algorithms at width 1 are the *memoized*
            # variants, which return the same items with fewer probes.
            reference = classic
        else:
            reference = get_algorithm(f"{name}-block", width=width).run(
                database, k, SUM
            )
        # Exactness: block rounds never change the returned top-k.
        assert reference.items == classic.items, (name, width)
        memoized = get_algorithm(f"{name}-block", width=width).run(
            database, k, SUM
        )
        assert memoized.items == classic.items, (name, width)
        for kwargs in TRANSPORTS:
            result = cls(block_width=width, **kwargs).run(columnar, k, SUM)
            label = f"{name}-block w={width} {kwargs}"
            assert result.items == reference.items, label
            assert result.tally == reference.tally, label
            assert result.rounds == reference.rounds, label
            if not (name == "bpa2" and width == 1):
                # Classic BPA2 reports the sorted-depth stop position;
                # the unified driver reports the deepest best position
                # (owner-side state), as test_distributed_unified notes.
                assert result.stop_position == reference.stop_position, label


class TestBlockVariantsAcrossTransports:
    """Every transport and width, bit-identical to the block reference."""

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_generated_databases(self, distribution, data):
        n = data.draw(st.integers(5, 40), label="n")
        m = data.draw(st.integers(1, 4), label="m")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        k = data.draw(st.integers(1, n), label="k")
        width = data.draw(st.sampled_from([1, 2, 3, 8, 64]), label="width")
        database = make_generator(distribution).generate(n, m, seed=seed)
        _assert_block_matches_reference(database, k, width)

    @settings(max_examples=10, deadline=None)
    @given(
        matrix=score_matrices(max_items=16, max_lists=4, tie_heavy=True),
        data=st.data(),
    )
    def test_tie_heavy_matrices(self, matrix, data):
        database = Database.from_score_rows(
            [[float(s) for s in row] for row in matrix]
        )
        k = data.draw(st.integers(1, database.n), label="k")
        width = data.draw(st.sampled_from([1, 2, 5]), label="width")
        _assert_block_matches_reference(database, k, width)


class TestBlockRegistry:
    """The block variants are first-class registered algorithms."""

    def test_registered_names(self):
        from repro.algorithms.base import known_algorithms

        for name in ("ta-block", "bpa-block", "bpa2-block"):
            assert name in known_algorithms()

    def test_width_is_configurable_and_validated(self):
        database = make_generator("uniform").generate(30, 3, seed=1)
        wide = get_algorithm("ta-block", width=30).run(database, 3, SUM)
        narrow = get_algorithm("ta-block", width=1).run(database, 3, SUM)
        assert wide.items == narrow.items
        assert wide.rounds <= narrow.rounds
        from repro.errors import InvalidQueryError

        with pytest.raises(InvalidQueryError, match="width"):
            get_algorithm("ta-block", width=0)

    def test_wider_blocks_mean_fewer_rounds_and_messages(self):
        database = make_generator("uniform").generate(300, 3, seed=7)
        narrow = DistributedBPA2(protocol="batch", block_width=1).run(
            database, 8, SUM
        )
        wide = DistributedBPA2(protocol="batch", block_width=16).run(
            database, 8, SUM
        )
        assert wide.items == narrow.items
        assert wide.rounds < narrow.rounds
        assert (
            wide.extras["network"]["messages"]
            < narrow.extras["network"]["messages"]
        )


class TestPipelinedWireEquivalence:
    """Pipelined waves ship exactly the batched protocol's messages."""

    @pytest.fixture(scope="class")
    def database(self):
        return make_generator("uniform").generate(300, 4, seed=11)

    @pytest.mark.parametrize("name,cls", BLOCK_DRIVERS)
    @pytest.mark.parametrize("width", [1, 8])
    def test_pipelined_equals_batch_counts(self, database, name, cls, width):
        batch = cls(protocol="batch", block_width=width).run(database, 8, SUM)
        pipelined = cls(protocol="pipelined", block_width=width).run(
            database, 8, SUM
        )
        assert pipelined.items == batch.items
        assert pipelined.tally == batch.tally
        for key in ("messages", "bytes", "rounds", "bp_messages", "bp_bytes"):
            assert (
                pipelined.extras["network"][key]
                == batch.extras["network"][key]
            ), (name, width, key)
