"""Tests for the on-disk list storage layer."""

import struct

import pytest

from repro.algorithms.base import get_algorithm
from repro.datagen import UniformGenerator
from repro.errors import (
    CorruptFileError,
    InvalidPositionError,
    StorageError,
    UnknownItemError,
)
from repro.lists.database import Database
from repro.scoring import SUM
from repro.storage import open_database, save_database


@pytest.fixture()
def memory_db() -> Database:
    return UniformGenerator().generate(60, 3, seed=21)


@pytest.fixture()
def db_path(memory_db, tmp_path):
    path = tmp_path / "lists.bptk"
    save_database(memory_db, path)
    return path


class TestRoundtrip:
    def test_shape(self, db_path, memory_db):
        with open_database(db_path) as disk:
            assert disk.m == memory_db.m
            assert disk.n == memory_db.n

    def test_every_entry_matches(self, db_path, memory_db):
        with open_database(db_path) as disk:
            for mem_list, disk_list in zip(memory_db.lists, disk.lists):
                for position in range(1, memory_db.n + 1):
                    assert disk_list.entry_at(position) == mem_list.entry_at(position)

    def test_lookup_matches(self, db_path, memory_db):
        with open_database(db_path) as disk:
            for item in sorted(memory_db.item_ids):
                for mem_list, disk_list in zip(memory_db.lists, disk.lists):
                    assert disk_list.lookup(item) == mem_list.lookup(item)

    def test_items_and_scores(self, db_path, memory_db):
        with open_database(db_path) as disk:
            assert disk.lists[0].items() == memory_db.lists[0].items()
            assert disk.lists[0].scores() == memory_db.lists[0].scores()
            assert disk.item_ids == memory_db.item_ids

    def test_contains(self, db_path):
        with open_database(db_path) as disk:
            assert 0 in disk.lists[0]
            assert 999 not in disk.lists[0]

    def test_save_a_disk_database(self, db_path, memory_db, tmp_path):
        # save_database reads through the public API, so a DiskDatabase
        # can itself be re-serialized losslessly.
        copy_path = tmp_path / "copy.bptk"
        with open_database(db_path) as disk:
            save_database(disk, copy_path)
        assert copy_path.read_bytes() == db_path.read_bytes()


class TestAlgorithmsOnDisk:
    @pytest.mark.parametrize("name", ("ta", "bpa", "bpa2", "fa", "naive"))
    def test_same_answers_and_tallies_as_memory(self, db_path, memory_db, name):
        algorithm = get_algorithm(name)
        mem_result = algorithm.run(memory_db, 5, SUM)
        with open_database(db_path) as disk:
            disk_result = algorithm.run(disk, 5, SUM)
        assert disk_result.same_scores(mem_result)
        assert disk_result.tally == mem_result.tally
        assert disk_result.stop_position == mem_result.stop_position


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            open_database(tmp_path / "nope.bptk")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bptk"
        path.write_bytes(b"NOPE" + b"\x00" * 12)
        with pytest.raises(CorruptFileError, match="magic"):
            open_database(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.bptk"
        path.write_bytes(struct.pack("<4sIII", b"BPTK", 99, 1, 1) + b"\x00" * 40)
        with pytest.raises(CorruptFileError, match="version"):
            open_database(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "tiny.bptk"
        path.write_bytes(b"BP")
        with pytest.raises(CorruptFileError, match="truncated"):
            open_database(path)

    def test_size_mismatch(self, db_path):
        data = db_path.read_bytes()
        db_path.write_bytes(data[:-8])
        with pytest.raises(CorruptFileError, match="size"):
            open_database(db_path)

    def test_position_out_of_range(self, db_path):
        with open_database(db_path) as disk:
            with pytest.raises(InvalidPositionError):
                disk.lists[0].entry_at(0)

    def test_unknown_item(self, db_path):
        with open_database(db_path) as disk:
            with pytest.raises(UnknownItemError):
                disk.lists[0].lookup(10_000)


class TestLifecycle:
    def test_context_manager_closes(self, db_path):
        with open_database(db_path) as disk:
            assert not disk.closed
        assert disk.closed

    def test_reads_after_close_fail(self, db_path):
        disk = open_database(db_path)
        disk.close()
        with pytest.raises(ValueError):
            disk.lists[0].entry_at(1)


class TestConcurrentReads:
    """Positional reads: no shared-cursor races across lists/threads."""

    def test_multithreaded_hammer(self, db_path, memory_db):
        # Interleave random reads from every list of one DiskDatabase
        # across a thread pool.  The pre-pread code shared one file
        # cursor via seek()+read(), so concurrent readers returned
        # records from each other's offsets.
        from concurrent.futures import ThreadPoolExecutor

        with open_database(db_path) as disk:
            expected = [
                [mem_list.entry_at(p) for p in range(1, memory_db.n + 1)]
                for mem_list in memory_db.lists
            ]
            items = sorted(memory_db.item_ids)

            def hammer(worker: int) -> int:
                rng = __import__("random").Random(worker)
                mismatches = 0
                for _ in range(400):
                    li = rng.randrange(memory_db.m)
                    if rng.random() < 0.5:
                        p = rng.randrange(1, memory_db.n + 1)
                        if disk.lists[li].entry_at(p) != expected[li][p - 1]:
                            mismatches += 1
                    else:
                        item = rng.choice(items)
                        want = memory_db.lists[li].lookup(item)
                        if disk.lists[li].lookup(item) != want:
                            mismatches += 1
                return mismatches

            with ThreadPoolExecutor(max_workers=8) as pool:
                totals = list(pool.map(hammer, range(8)))
        assert sum(totals) == 0

    def test_interleaved_entries_streams(self, db_path, memory_db):
        # Two generators over different lists, advanced alternately —
        # the old shared-cursor code required each entries() call to
        # finish its bulk read before the next seek; positional reads
        # make interleaving safe by construction.
        with open_database(db_path) as disk:
            first = disk.lists[0].entries()
            second = disk.lists[1].entries()
            for a, b in zip(first, second):
                assert a == memory_db.lists[0].entry_at(a.position)
                assert b == memory_db.lists[1].entry_at(b.position)


class TestAtomicSave:
    """A failed save must leave the target file untouched."""

    class _ExplodingLists:
        """Database facade whose second list dies mid-serialization."""

        def __init__(self, database):
            self._database = database
            self.m = database.m
            self.n = database.n

        @property
        def lists(self):
            real = self._database.lists

            class _Boom:
                def __init__(self, inner):
                    self._inner = inner

                def entries(self):
                    for count, entry in enumerate(self._inner.entries()):
                        if count == 3:
                            raise OSError("injected mid-write crash")
                        yield entry

            return [real[0], _Boom(real[1]), *real[2:]]

    def test_failed_save_preserves_existing_file(
        self, db_path, memory_db, tmp_path
    ):
        before = db_path.read_bytes()
        with pytest.raises(OSError, match="injected mid-write crash"):
            save_database(self._ExplodingLists(memory_db), db_path)
        # The original file is intact byte for byte and still opens.
        assert db_path.read_bytes() == before
        with open_database(db_path) as disk:
            assert disk.n == memory_db.n

    def test_failed_save_leaves_no_temp_files(self, memory_db, tmp_path):
        target = tmp_path / "fresh.bptk"
        with pytest.raises(OSError):
            save_database(self._ExplodingLists(memory_db), target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_save_is_a_rename_not_an_in_place_write(
        self, db_path, memory_db
    ):
        import os

        inode_before = os.stat(db_path).st_ino
        save_database(memory_db, db_path)
        assert os.stat(db_path).st_ino != inode_before
        with open_database(db_path) as disk:
            assert disk.lists[0].items() == memory_db.lists[0].items()
