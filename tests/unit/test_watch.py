"""Unit coverage of the standing-query subsystem (repro.watch).

Three layers: the delta algebra (``frames`` — diff/apply must be exact
inverses, the wire codec must round-trip and reject garbage), the
subscription handle (delivery, cancellation), and the manager driven
through a real :class:`QueryService` over a mutating database
(classification outcomes, caps, static-source refusal, invalidate).
"""

from __future__ import annotations

import pytest

from repro.bench.batch import QuerySpec
from repro.datagen.base import make_generator
from repro.errors import ProtocolError, ServiceError
from repro.scoring import SUM
from repro.service import QueryService, ServicePolicy
from repro.service.workload import answers_match, dynamic_from
from repro.types import ScoredItem
from repro.watch.frames import (
    DeltaEntry,
    ResultDelta,
    apply_delta,
    diff_results,
)


def entries_of(*pairs):
    return tuple(ScoredItem(item=i, score=s) for i, s in pairs)


def delta_of(exits=(), upserts=(), seq=1, epoch=1, cause="patched"):
    return ResultDelta(
        subscription=0,
        seq=seq,
        epoch=epoch,
        cause=cause,
        exits=tuple(exits),
        upserts=tuple(DeltaEntry(*u) for u in upserts),
    )


# ---------------------------------------------------------------------------
# frames: diff / apply / wire codec
# ---------------------------------------------------------------------------


class TestDiffResults:
    def test_identical_answers_diff_to_nothing(self):
        old = entries_of((1, 3.0), (2, 2.0))
        assert diff_results(old, old) == ((), ())

    def test_rescore_in_place(self):
        old = entries_of((1, 3.0), (2, 2.0))
        new = entries_of((1, 3.5), (2, 2.0))
        exits, upserts = diff_results(old, new)
        assert exits == ()
        assert upserts == (DeltaEntry(rank=0, item=1, score=3.5),)

    def test_swap_upserts_both(self):
        old = entries_of((1, 3.0), (2, 2.0))
        new = entries_of((2, 4.0), (1, 3.0))
        exits, upserts = diff_results(old, new)
        assert exits == ()
        assert upserts == (
            DeltaEntry(rank=0, item=2, score=4.0),
            DeltaEntry(rank=1, item=1, score=3.0),
        )

    def test_exit_and_entry(self):
        old = entries_of((1, 3.0), (2, 2.0))
        new = entries_of((1, 3.0), (9, 2.5))
        exits, upserts = diff_results(old, new)
        assert exits == (2,)
        assert upserts == (DeltaEntry(rank=1, item=9, score=2.5),)

    def test_bitwise_score_comparison(self):
        # Same item, same rank, score differing in the last ulp: a
        # changed float IS a changed answer.
        old = entries_of((1, 1.0),)
        new = entries_of((1, 1.0 + 2**-52),)
        _exits, upserts = diff_results(old, new)
        assert len(upserts) == 1

    @pytest.mark.parametrize(
        "old,new",
        [
            ((), ()),
            ((), ((1, 2.0), (2, 1.0))),
            (((1, 2.0), (2, 1.0)), ()),
            (((1, 2.0), (2, 1.0), (3, 0.5)), ((3, 5.0), (1, 2.0))),
            (((4, 9.0), (1, 2.0)), ((4, 9.0), (7, 3.0), (1, 2.0))),
        ],
    )
    def test_apply_inverts_diff(self, old, new):
        old, new = entries_of(*old), entries_of(*new)
        exits, upserts = diff_results(old, new)
        delta = ResultDelta(0, 1, 1, "patched", exits, upserts)
        assert apply_delta(old, delta) == new


class TestApplyDelta:
    def test_empty_delta_is_identity(self):
        old = entries_of((1, 3.0), (2, 2.0))
        assert apply_delta(old, delta_of()) == old

    def test_out_of_bounds_rank_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="rank 5"):
            apply_delta(
                entries_of((1, 3.0)), delta_of(upserts=((5, 9, 1.0),))
            )

    def test_upserts_insert_in_ascending_rank_order(self):
        # New entries land at the head and the tail; the kept pair
        # stays in relative order between them.
        old = entries_of((1, 3.0), (2, 2.0))
        new = apply_delta(
            old, delta_of(upserts=((0, 8, 4.0), (3, 9, 1.0)))
        )
        assert new == entries_of((8, 4.0), (1, 3.0), (2, 2.0), (9, 1.0))


class TestWireCodec:
    def test_round_trip(self):
        delta = delta_of(exits=(3, 4), upserts=((0, 9, 1.25),), seq=7)
        wired = delta.to_wire()
        assert wired["kind"] == "delta"
        assert ResultDelta.from_wire(wired) == delta

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda w: w.pop("seq"),
            lambda w: w.__setitem__("seq", "NaN-ish"),
            lambda w: w.__setitem__("exits", [None]),
            lambda w: w.__setitem__("upserts", [[1]]),
        ],
    )
    def test_malformed_frames_are_protocol_errors(self, corrupt):
        wired = delta_of().to_wire()
        corrupt(wired)
        with pytest.raises(ProtocolError, match="malformed delta frame"):
            ResultDelta.from_wire(wired)


# ---------------------------------------------------------------------------
# manager + subscription, driven through a live service
# ---------------------------------------------------------------------------


def small_service(n=24, m=2, seed=3, **policy):
    static = make_generator("uniform").generate(n, m, seed=seed)
    source = dynamic_from(static)
    service = QueryService(
        source,
        shards=1,
        pool="serial",
        policy=ServicePolicy(**policy) if policy else None,
    )
    return source, service


SPEC = QuerySpec("bpa2", k=4, scoring=SUM)


class TestServiceWatch:
    def test_initial_answer_is_exact(self):
        source, service = small_service()
        with service:
            sub = service.watch(SPEC)
            assert sub.seq == 0
            assert sub.active
            assert answers_match(
                sub.item_ids, sub.scores, source, SPEC.k, SUM
            )
            assert service.subscriptions == (sub,)

    def test_static_source_is_refused(self):
        static = make_generator("uniform").generate(12, 2, seed=3)
        with QueryService(static, shards=1, pool="serial") as service:
            with pytest.raises(ServiceError, match="DynamicDatabase"):
                service.watch(SPEC)

    def test_subscription_cap(self):
        _source, service = small_service(max_subscriptions=2)
        with service:
            first = service.watch(SPEC)
            service.watch(SPEC)
            with pytest.raises(ServiceError, match="subscription limit"):
                service.watch(SPEC)
            # Cancelling releases the slot.
            first.cancel()
            service.watch(SPEC)

    def test_harmless_mutation_is_unchanged_and_silent(self):
        source, service = small_service()
        with service:
            sub = service.watch(SPEC)
            loser = sub.item_ids[-1] + 10_000  # definitely an outsider
            source.insert_item(loser, [0.0] * source.m)
            assert sub.stats.unchanged == 1
            assert sub.stats.deltas == 0
            assert sub.poll() == []
            assert service.counters.watch_unchanged == 1

    def test_member_rescore_is_patched_and_pushed(self):
        source, service = small_service()
        with service:
            sub = service.watch(SPEC)
            top = sub.item_ids[0]
            source.update_score(0, top, 5.0)  # strengthen the leader
            assert sub.stats.patched == 1
            assert sub.stats.deltas == 1
            (delta,) = sub.poll()
            assert delta.cause == "patched"
            assert delta.seq == 1
            assert answers_match(
                sub.item_ids, sub.scores, source, SPEC.k, SUM
            )

    def test_member_removal_recomputes(self):
        source, service = small_service()
        with service:
            sub = service.watch(SPEC)
            source.remove_item(sub.item_ids[1])
            assert sub.stats.recomputed == 1
            (delta,) = sub.poll()
            assert delta.cause == "recomputed"
            assert answers_match(
                sub.item_ids, sub.scores, source, SPEC.k, SUM
            )

    def test_invalidate_recomputes_without_false_pushes(self):
        _source, service = small_service()
        with service:
            sub = service.watch(SPEC)
            service.invalidate()
            # The data did not move: recomputed, but the answer is
            # identical, so nothing was pushed.
            assert sub.stats.recomputed == 1
            assert sub.stats.deltas == 0
            assert sub.poll() == []
            assert sub.epoch == service.epoch

    def test_callback_delivery_preempts_queue(self):
        source, service = small_service()
        with service:
            seen = []
            sub = service.watch(SPEC, callback=seen.append)
            source.update_score(0, sub.item_ids[0], 5.0)
            assert len(seen) == 1
            assert sub.poll() == []  # delivered, not queued
            assert seen[0].seq == 1

    def test_cancel_freezes_maintenance(self):
        source, service = small_service()
        with service:
            sub = service.watch(SPEC)
            sub.cancel()
            sub.cancel()  # idempotent
            assert not sub.active
            assert service.subscriptions == ()
            before = sub.stats.mutations
            source.update_score(0, sub.item_ids[0], 5.0)
            assert sub.stats.mutations == before

    def test_close_cancels_everything(self):
        _source, service = small_service()
        sub = service.watch(SPEC)
        service.close()
        assert not sub.active
        with pytest.raises(RuntimeError, match="closed"):
            service.watch(SPEC)

    def test_delta_stream_replays_to_current_answer(self):
        source, service = small_service()
        with service:
            sub = service.watch(SPEC)
            replay = sub.entries
            rng_scores = (4.0, 0.1, 2.5, 0.0, 3.3)
            for step, score in enumerate(rng_scores):
                source.update_score(
                    step % source.m, (step * 7) % 20, score
                )
            source.remove_item(sub.item_ids[0])
            source.insert_item(999, [2.0] * source.m)
            for delta in sub.poll():
                replay = apply_delta(replay, delta)
            assert replay == sub.entries
            assert answers_match(
                sub.item_ids, sub.scores, source, SPEC.k, SUM
            )

    def test_underfull_answer_is_maintained_exhaustively(self):
        # n < k: the answer holds every item, so inserts and member
        # deletes stay decidable with no boundary (the cache would
        # miss here; the subscription must not recompute needlessly).
        source, service = small_service(n=3)
        with service:
            sub = service.watch(QuerySpec("bpa2", k=8, scoring=SUM))
            assert len(sub.entries) == 3
            source.insert_item(500, [9.0] * source.m)
            assert sub.stats.patched == 1
            assert sub.item_ids[0] == 500
            source.remove_item(500)
            assert sub.stats.patched == 2
            assert answers_match(sub.item_ids, sub.scores, source, 8, SUM)

    def test_inexact_scores_recompute_every_mutation(self):
        # NRA reports lower-bound scores, which the certificate must
        # never compare against logged aggregates: even a provably
        # harmless mutation recomputes instead of certifying.
        source, service = small_service()
        with service:
            sub = service.watch(QuerySpec("nra", k=4, scoring=SUM))
            source.insert_item(10_000, [0.0] * source.m)
            assert sub.stats.recomputed == 1
            assert sub.stats.unchanged == 0

    def test_logless_service_retains_score_capture(self):
        # With delta_log_depth=0 nothing else subscribes for score
        # vectors, so watch() must force capture on (retain_scores) —
        # otherwise every event arrives vector-less and maintenance
        # degrades to recompute-per-mutation.
        source, service = small_service(delta_log_depth=0)
        with service:
            sub = service.watch(SPEC)
            loser = sub.item_ids[-1] + 10_000
            source.insert_item(loser, [0.0] * source.m)
            assert sub.stats.unchanged == 1  # certified, not recomputed
            source.update_score(0, sub.item_ids[0], 5.0)
            assert sub.stats.patched == 1
            assert answers_match(
                sub.item_ids, sub.scores, source, SPEC.k, SUM
            )
        # close() released the retain: capture is off again.
        assert source._score_watchers == 0

    def test_policy_knobs_validate(self):
        with pytest.raises(ValueError):
            ServicePolicy(max_subscriptions=-1)
        with pytest.raises(ValueError):
            ServicePolicy(watch_patch_limit=-1)
