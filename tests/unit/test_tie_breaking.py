"""Tie-breaking properties: the canonical (score desc, item asc) order
must survive every round-trip through both storage backends, and
:class:`TopKBuffer` must realize exactly that order under eviction."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.base import TopKBuffer
from repro.columnar import ColumnarDatabase, ColumnarList
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList
from repro.testing import score_matrix_strategy as score_matrices
from repro.types import rank_items

#: (item, score) entry lists with distinct items and heavy score ties.
_tied_entries = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 5)),
    min_size=1,
    max_size=40,
    unique_by=lambda pair: pair[0],
).map(lambda pairs: [(item, float(score)) for item, score in pairs])


class TestTopKBufferTieBreaking:
    @given(entries=_tied_entries, k=st.integers(1, 45))
    def test_ranked_is_canonical_topk(self, entries, k):
        buffer = TopKBuffer(k)
        for item, score in entries:
            buffer.add(item, score)
        expected = sorted(entries, key=lambda pair: (-pair[1], pair[0]))[:k]
        assert [(e.item, e.score) for e in buffer.ranked()] == expected

    @given(entries=_tied_entries, k=st.integers(1, 45))
    def test_insertion_order_is_irrelevant(self, entries, k):
        forward = TopKBuffer(k)
        backward = TopKBuffer(k)
        for item, score in entries:
            forward.add(item, score)
        for item, score in reversed(entries):
            backward.add(item, score)
        assert forward.ranked() == backward.ranked()

    @given(entries=_tied_entries)
    def test_kth_score_tracks_the_weakest_kept_item(self, entries):
        k = max(1, len(entries) // 2)
        buffer = TopKBuffer(k)
        for item, score in entries:
            buffer.add(item, score)
        if len(entries) >= k:
            assert buffer.kth_score == buffer.ranked()[-1].score
        else:
            assert buffer.kth_score == float("-inf")


class TestDuplicateScoreLayouts:
    @given(
        scores=st.lists(st.integers(0, 3).map(float), min_size=1, max_size=50)
    )
    def test_both_backends_produce_the_canonical_layout(self, scores):
        expected_items = tuple(rank_items(scores))
        python_list = SortedList.from_scores(scores)
        columnar_list = ColumnarList.from_scores(scores)
        assert python_list.items() == expected_items
        assert columnar_list.items() == expected_items
        assert python_list.scores() == columnar_list.scores()

    @given(entries=_tied_entries)
    def test_sorted_list_round_trips_through_columnar(self, entries):
        python_list = SortedList(entries, name="L1")
        columnar_list = ColumnarList.from_sorted_list(python_list)
        assert columnar_list.items() == python_list.items()
        assert columnar_list.scores() == python_list.scores()
        assert list(columnar_list.entries()) == list(python_list.entries())
        # And back: rebuilding a SortedList from the columnar layout is
        # the identity.
        back = SortedList(zip(columnar_list.items(), columnar_list.scores()))
        assert back.items() == python_list.items()
        assert back.scores() == python_list.scores()

    @given(matrix=score_matrices(max_items=20, max_lists=4, tie_heavy=True))
    def test_database_round_trip_preserves_every_list(self, matrix):
        rows = [[float(s) for s in row] for row in matrix]
        database = Database.from_score_rows(rows)
        columnar = ColumnarDatabase.from_score_rows(rows)
        converted = ColumnarDatabase.from_database(database)
        recovered = converted.to_database()
        for direct, via_rows, back, original in zip(
            converted.lists, columnar.lists, recovered.lists, database.lists
        ):
            assert direct.items() == via_rows.items() == original.items()
            assert back.items() == original.items()
            assert direct.scores() == via_rows.scores() == original.scores()
            assert back.scores() == original.scores()

    @given(matrix=score_matrices(max_items=15, max_lists=3, tie_heavy=True))
    def test_positions_agree_between_backends(self, matrix):
        rows = [[float(s) for s in row] for row in matrix]
        database = Database.from_score_rows(rows)
        columnar = ColumnarDatabase.from_score_rows(rows)
        for item in database.iter_items():
            assert database.positions(item) == columnar.positions(item)
            assert database.local_scores(item) == columnar.local_scores(item)
