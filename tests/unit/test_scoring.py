"""Unit tests for scoring functions and monotonicity checking."""

import pytest

from repro.errors import NonMonotonicScoringError, ScoringError
from repro.scoring import (
    AVERAGE,
    MAX,
    MIN,
    SUM,
    AverageScoring,
    MaxScoring,
    MinScoring,
    ProductScoring,
    SumScoring,
    WeightedSumScoring,
    check_monotonic,
    ensure_monotonic,
)


class TestStockFunctions:
    def test_sum(self):
        assert SUM([1.0, 2.0, 3.0]) == 6.0

    def test_min(self):
        assert MIN([3.0, 1.0, 2.0]) == 1.0

    def test_max(self):
        assert MAX([3.0, 1.0, 2.0]) == 3.0

    def test_average(self):
        assert AVERAGE([1.0, 2.0, 3.0]) == 2.0

    def test_product(self):
        assert ProductScoring()([2.0, 3.0, 4.0]) == 24.0

    def test_product_rejects_negative(self):
        with pytest.raises(ScoringError):
            ProductScoring()([2.0, -1.0])

    def test_names(self):
        assert SumScoring().name == "sum"
        assert MinScoring().name == "min"
        assert MaxScoring().name == "max"
        assert AverageScoring().name == "avg"

    def test_reprs_are_informative(self):
        assert "Sum" in repr(SumScoring())
        assert "weights" not in repr(MinScoring())


class TestWeightedSum:
    def test_applies_weights(self):
        scoring = WeightedSumScoring([2.0, 0.5])
        assert scoring([1.0, 4.0]) == 4.0

    def test_rejects_empty_weights(self):
        with pytest.raises(ScoringError):
            WeightedSumScoring([])

    def test_rejects_negative_weights(self):
        with pytest.raises(ScoringError):
            WeightedSumScoring([1.0, -0.1])

    def test_rejects_arity_mismatch(self):
        scoring = WeightedSumScoring([1.0, 1.0])
        with pytest.raises(ScoringError):
            scoring([1.0, 2.0, 3.0])

    def test_weights_property_and_name(self):
        scoring = WeightedSumScoring([1.0, 2.0])
        assert scoring.weights == (1.0, 2.0)
        assert "1" in scoring.name and "2" in scoring.name

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ScoringError):
            WeightedSumScoring([0.0, 0.0])

    def test_zero_weight_is_legal_beside_a_positive_one(self):
        scoring = WeightedSumScoring([0.0, 1.0])
        assert scoring([5.0, 3.0]) == 3.0

    def test_name_distinguishes_nearby_weight_vectors(self):
        # Regression: the name used to render weights with ``{w:g}``
        # (6 significant digits), so 0.3 and 0.30000004 — distinct
        # floats that rank items differently — shared one name, and
        # the name feeds the normalized query cache key.
        close = WeightedSumScoring([0.3])
        closer = WeightedSumScoring([0.30000004])
        assert close.name != closer.name

    def test_name_round_trips_every_weight_exactly(self):
        weights = [0.1, 1e-17, 0.30000000000000004, 123456.789012345]
        scoring = WeightedSumScoring(weights)
        inner = scoring.name[len("wsum["):-1]
        assert [float(w) for w in inner.split(",")] == weights


class _NonMonotonic:
    name = "negsum"

    def __call__(self, scores):
        return -sum(scores)


class TestMonotonicityChecking:
    @pytest.mark.parametrize(
        "function",
        [SUM, MIN, MAX, AVERAGE, ProductScoring(), WeightedSumScoring([0.5, 2.0, 0.0])],
        ids=lambda f: getattr(f, "name", "fn"),
    )
    def test_monotonic_functions_pass(self, function):
        arity = 3
        if isinstance(function, WeightedSumScoring):
            arity = len(function.weights)
        assert check_monotonic(function, arity)

    def test_non_monotonic_function_fails(self):
        assert not check_monotonic(_NonMonotonic(), 3)

    def test_ensure_monotonic_raises_with_name(self):
        with pytest.raises(NonMonotonicScoringError, match="negsum"):
            ensure_monotonic(_NonMonotonic(), 2)

    def test_ensure_monotonic_accepts_sum(self):
        ensure_monotonic(SUM, 4)  # must not raise
