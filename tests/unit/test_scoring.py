"""Unit tests for scoring functions and monotonicity checking."""

import pytest

from repro.errors import NonMonotonicScoringError, ScoringError
from repro.scoring import (
    AVERAGE,
    MAX,
    MIN,
    SUM,
    AverageScoring,
    MaxScoring,
    MinScoring,
    ProductScoring,
    SumScoring,
    WeightedSumScoring,
    check_monotonic,
    ensure_monotonic,
)


class TestStockFunctions:
    def test_sum(self):
        assert SUM([1.0, 2.0, 3.0]) == 6.0

    def test_min(self):
        assert MIN([3.0, 1.0, 2.0]) == 1.0

    def test_max(self):
        assert MAX([3.0, 1.0, 2.0]) == 3.0

    def test_average(self):
        assert AVERAGE([1.0, 2.0, 3.0]) == 2.0

    def test_product(self):
        assert ProductScoring()([2.0, 3.0, 4.0]) == 24.0

    def test_product_rejects_negative(self):
        with pytest.raises(ScoringError):
            ProductScoring()([2.0, -1.0])

    def test_names(self):
        assert SumScoring().name == "sum"
        assert MinScoring().name == "min"
        assert MaxScoring().name == "max"
        assert AverageScoring().name == "avg"

    def test_reprs_are_informative(self):
        assert "Sum" in repr(SumScoring())
        assert "weights" not in repr(MinScoring())


class TestWeightedSum:
    def test_applies_weights(self):
        scoring = WeightedSumScoring([2.0, 0.5])
        assert scoring([1.0, 4.0]) == 4.0

    def test_rejects_empty_weights(self):
        with pytest.raises(ScoringError):
            WeightedSumScoring([])

    def test_rejects_negative_weights(self):
        with pytest.raises(ScoringError):
            WeightedSumScoring([1.0, -0.1])

    def test_rejects_arity_mismatch(self):
        scoring = WeightedSumScoring([1.0, 1.0])
        with pytest.raises(ScoringError):
            scoring([1.0, 2.0, 3.0])

    def test_weights_property_and_name(self):
        scoring = WeightedSumScoring([1.0, 2.0])
        assert scoring.weights == (1.0, 2.0)
        assert "1" in scoring.name and "2" in scoring.name


class _NonMonotonic:
    name = "negsum"

    def __call__(self, scores):
        return -sum(scores)


class TestMonotonicityChecking:
    @pytest.mark.parametrize(
        "function",
        [SUM, MIN, MAX, AVERAGE, ProductScoring(), WeightedSumScoring([0.5, 2.0, 0.0])],
        ids=lambda f: getattr(f, "name", "fn"),
    )
    def test_monotonic_functions_pass(self, function):
        arity = 3
        if isinstance(function, WeightedSumScoring):
            arity = len(function.weights)
        assert check_monotonic(function, arity)

    def test_non_monotonic_function_fails(self):
        assert not check_monotonic(_NonMonotonic(), 3)

    def test_ensure_monotonic_raises_with_name(self):
        with pytest.raises(NonMonotonicScoringError, match="negsum"):
            ensure_monotonic(_NonMonotonic(), 2)

    def test_ensure_monotonic_accepts_sum(self):
        ensure_monotonic(SUM, 4)  # must not raise
