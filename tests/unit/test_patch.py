"""Differential suite for :func:`repro.columnar.patch_database`.

The contract under test: patching an immutable columnar snapshot with a
mutation window is **bit-identical** to throwing the snapshot away and
cold-rebuilding from the mutated source — same columns byte for byte,
same rank permutations, same derived layout, same query answers *and*
the same access tallies.  Anything less and the "patched" snapshot would
be a different database that merely resembles the right one.

Every datagen family is driven through a seeded mutation stream (score
updates, inserts, removes) and both snapshots are compared field by
field; dedicated cases pin the fallback contract (``None`` on
over-budget or unprovable windows, identity on no-net-change windows).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import (
    ColumnarDatabase,
    fast_bpa,
    fast_bpa2,
    fast_ta,
    patch_database,
)
from repro.datagen.base import make_generator
from repro.dynamic.database import MutationEvent
from repro.service.service import _snapshot_dynamic
from repro.service.workload import dynamic_from

FAMILIES = ("uniform", "gaussian", "correlated", "zipf", "copula")


def assert_snapshots_identical(
    patched: ColumnarDatabase, rebuilt: ColumnarDatabase
) -> None:
    """Bit-for-bit equality of two columnar snapshots."""
    assert patched.m == rebuilt.m
    assert patched.n == rebuilt.n
    assert patched.item_ids == rebuilt.item_ids
    for ours, theirs in zip(patched.lists, rebuilt.lists):
        assert ours.name == theirs.name
        assert ours.dense_ids == theirs.dense_ids
        assert ours.items_array.tobytes() == theirs.items_array.tobytes()
        assert ours.scores_array.tobytes() == theirs.scores_array.tobytes()
        assert ours.uids_array.tobytes() == theirs.uids_array.tobytes()
        assert ours.rank_by_row.tobytes() == theirs.rank_by_row.tobytes()


def assert_layouts_identical(
    patched: ColumnarDatabase, rebuilt: ColumnarDatabase
) -> None:
    """The derived scalar layout matches a from-scratch derivation."""
    ours, theirs = patched.layout(), rebuilt.layout()
    assert ours.ids == theirs.ids
    assert ours.rows_at == theirs.rows_at
    assert ours.pos_of == theirs.pos_of
    assert ours.pos1_by_row == theirs.pos1_by_row
    assert ours.score_at == theirs.score_at
    assert ours.row_of == theirs.row_of


def assert_same_answers(
    patched: ColumnarDatabase, rebuilt: ColumnarDatabase, k: int
) -> None:
    """Identical top-k answers *and* access tallies on every engine."""
    for kernel in (fast_ta, fast_bpa, fast_bpa2):
        ours = kernel(patched, k)
        theirs = kernel(rebuilt, k)
        assert ours.items == theirs.items
        assert ours.tally == theirs.tally
        assert ours.stop_position == theirs.stop_position


def apply_mutation_stream(source, rng, count, *, next_id):
    """A seeded mix of updates, inserts and removes; returns next_id."""
    for _ in range(count):
        kind = rng.choice(("update", "update", "update", "insert", "remove"))
        ids = sorted(source.item_ids)
        if kind == "update" and ids:
            source.update_score(
                int(rng.integers(source.m)),
                ids[int(rng.integers(len(ids)))],
                float(rng.random()),
            )
        elif kind == "insert":
            source.insert_item(
                next_id, [float(rng.random()) for _ in range(source.m)]
            )
            next_id += 1
        elif ids and len(ids) > 4:
            source.remove_item(ids[int(rng.integers(len(ids)))])
    return next_id


class TestPatchMatchesColdRebuild:
    """The headline differential: patched == cold rebuild, bit for bit."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", (7, 99))
    def test_mixed_stream_all_families(self, family, seed):
        base_db = make_generator(family).generate(48, 3, seed=seed)
        source = dynamic_from(base_db)
        snapshot = _snapshot_dynamic(source)
        events: list[MutationEvent] = []
        source.subscribe(events.append)
        rng = np.random.default_rng(seed)
        apply_mutation_stream(source, rng, 40, next_id=10_000)

        patched = patch_database(snapshot, events, budget=10**9)
        rebuilt = _snapshot_dynamic(source)
        assert patched is not None
        assert_snapshots_identical(patched, rebuilt)
        assert_layouts_identical(patched, rebuilt)
        assert_same_answers(patched, rebuilt, k=5)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_updates_only_carries_layout_forward(self, family):
        """Membership-unchanged patches reuse the derived layout eagerly."""
        base_db = make_generator(family).generate(32, 3, seed=3)
        source = dynamic_from(base_db)
        snapshot = _snapshot_dynamic(source)
        snapshot.layout()  # materialize the predecessor's layout
        events: list[MutationEvent] = []
        source.subscribe(events.append)
        rng = np.random.default_rng(11)
        ids = sorted(source.item_ids)
        for _ in range(25):
            source.update_score(
                int(rng.integers(source.m)),
                ids[int(rng.integers(len(ids)))],
                float(rng.random()),
            )

        patched = patch_database(snapshot, events, budget=10**9)
        rebuilt = _snapshot_dynamic(source)
        assert patched is not None
        # Eagerly attached — no lazy derivation needed on first query.
        assert patched._layout is not None
        assert_snapshots_identical(patched, rebuilt)
        assert_layouts_identical(patched, rebuilt)
        assert_same_answers(patched, rebuilt, k=5)

    def test_untouched_lists_are_shared_by_reference(self):
        base_db = make_generator("uniform").generate(20, 3, seed=5)
        source = dynamic_from(base_db)
        snapshot = _snapshot_dynamic(source)
        events: list[MutationEvent] = []
        source.subscribe(events.append)
        source.update_score(1, 4, 0.123456789)

        patched = patch_database(snapshot, events, budget=8)
        assert patched is not None and patched is not snapshot
        assert patched.lists[0] is snapshot.lists[0]
        assert patched.lists[2] is snapshot.lists[2]
        assert patched.lists[1] is not snapshot.lists[1]
        # The predecessor is untouched: epoch-versioned views mean an
        # in-flight query over `snapshot` still sees its own epoch.
        assert_snapshots_identical(snapshot, _snapshot_dynamic(
            dynamic_from(base_db)
        ))

    def test_patch_chain_equals_one_rebuild(self):
        """Successor-of-successor patching stays bit-identical."""
        base_db = make_generator("gaussian").generate(40, 2, seed=17)
        source = dynamic_from(base_db)
        snapshot = _snapshot_dynamic(source)
        rng = np.random.default_rng(17)
        next_id = 10_000
        for _ in range(6):
            events: list[MutationEvent] = []
            unsubscribe = source.subscribe(events.append)
            next_id = apply_mutation_stream(
                source, rng, 7, next_id=next_id
            )
            unsubscribe()
            snapshot = patch_database(snapshot, events, budget=10**9)
            assert snapshot is not None
        assert_snapshots_identical(snapshot, _snapshot_dynamic(source))


class TestFallbackContract:
    """When patching must give up — and when it must do nothing."""

    @pytest.fixture()
    def pair(self):
        base_db = make_generator("uniform").generate(16, 2, seed=1)
        source = dynamic_from(base_db)
        snapshot = _snapshot_dynamic(source)
        events: list[MutationEvent] = []
        source.subscribe(events.append)
        return source, snapshot, events

    def test_budget_exceeded_returns_none(self, pair):
        source, snapshot, events = pair
        for item in range(4):
            source.update_score(0, item, 0.5 + item)
        assert patch_database(snapshot, events, budget=3) is None
        assert patch_database(snapshot, events, budget=4) is not None

    def test_no_net_change_returns_base_object(self, pair):
        source, snapshot, events = pair
        original = source.local_scores(3)
        source.update_score(0, 3, 0.77)
        source.update_score(0, 3, original[0])  # back to the original
        source.insert_item(500, [0.1, 0.2])
        source.remove_item(500)  # insert+remove cancels
        assert patch_database(snapshot, events, budget=8) is snapshot

    def test_event_without_scores_is_unprovable(self, pair):
        _, snapshot, _ = pair
        bare = MutationEvent(kind="update_score", item=3, list_index=0)
        assert patch_database(snapshot, [bare], budget=8) is None

    def test_wrong_arity_scores_is_unprovable(self, pair):
        _, snapshot, _ = pair
        bad = MutationEvent(
            kind="update_score", item=3, list_index=0,
            new_scores=(0.5,),  # m == 2
        )
        assert patch_database(snapshot, [bad], budget=8) is None

    def test_update_then_remove_folds_to_removal(self, pair):
        source, snapshot, events = pair
        source.update_score(0, 2, 0.9)
        source.remove_item(2)
        patched = patch_database(snapshot, events, budget=8)
        assert_snapshots_identical(patched, _snapshot_dynamic(source))
        assert 2 not in patched.item_ids

    def test_insert_then_update_folds_to_final_insert(self, pair):
        source, snapshot, events = pair
        source.insert_item(600, [0.3, 0.4])
        source.update_score(1, 600, 0.95)
        patched = patch_database(snapshot, events, budget=8)
        assert_snapshots_identical(patched, _snapshot_dynamic(source))
        assert patched.local_scores(600) == (0.3, 0.95)

    def test_empty_window_is_identity(self, pair):
        _, snapshot, _ = pair
        assert patch_database(snapshot, [], budget=8) is snapshot
