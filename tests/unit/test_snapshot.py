"""Unit tests for the ``.bpsn`` snapshot format.

Covers the full lifecycle: epoch-stamped save/load round-trips
(compressed and raw), atomicity of the writer, the verifier's audit
checks against targeted corruption of every section, and ``--repair``
semantics — a damaged index section is rebuilt from the rank section,
a damaged rank section is honestly reported as unrecoverable.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.columnar import ColumnarDatabase
from repro.datagen.base import make_generator
from repro.errors import CorruptFileError, StorageError
from repro.storage import (
    load_snapshot,
    verify_snapshot,
    write_snapshot,
)
from repro.storage.disk import _rank_section_offset
from repro.storage.snapshot import (
    _CRC_PAIR,
    _INDEX_DTYPE,
    _SNAP_HEADER,
    _index_section_offset,
)


@pytest.fixture()
def database() -> ColumnarDatabase:
    return ColumnarDatabase.from_database(
        make_generator("uniform").generate(30, 3, seed=9)
    )


def assert_databases_identical(a: ColumnarDatabase, b: ColumnarDatabase):
    assert a.m == b.m and a.n == b.n
    for ours, theirs in zip(a.lists, b.lists):
        assert ours.items_array.tobytes() == theirs.items_array.tobytes()
        assert ours.scores_array.tobytes() == theirs.scores_array.tobytes()
        assert ours.uids_array.tobytes() == theirs.uids_array.tobytes()
        assert ours.rank_by_row.tobytes() == theirs.rank_by_row.tobytes()
        assert ours.dense_ids == theirs.dense_ids


class TestRoundTrip:
    @pytest.mark.parametrize("compress", (True, False))
    def test_round_trip_bit_identical(self, tmp_path, database, compress):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, epoch=41, compress=compress)
        loaded, epoch = load_snapshot(path)
        assert epoch == 41
        assert_databases_identical(loaded, database)

    def test_compression_shrinks_but_preserves(self, tmp_path, database):
        raw = tmp_path / "raw.bpsn"
        packed = tmp_path / "packed.bpsn"
        write_snapshot(database, raw, compress=False)
        write_snapshot(database, packed, compress=True)
        assert packed.stat().st_size < raw.stat().st_size
        assert_databases_identical(
            load_snapshot(raw)[0], load_snapshot(packed)[0]
        )

    def test_default_epoch_is_zero(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path)
        assert load_snapshot(path)[1] == 0

    def test_negative_epoch_rejected(self, tmp_path, database):
        with pytest.raises(ValueError, match="epoch must be >= 0"):
            write_snapshot(database, tmp_path / "x.bpsn", epoch=-1)

    def test_missing_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="no such snapshot"):
            load_snapshot(tmp_path / "absent.bpsn")
        with pytest.raises(StorageError, match="no such snapshot"):
            verify_snapshot(tmp_path / "absent.bpsn")

    def test_sparse_ids_round_trip(self, tmp_path):
        """Non-dense item ids keep their uids/rank permutation."""
        base = ColumnarDatabase.from_database(
            make_generator("uniform").generate(12, 2, seed=4)
        )
        # Relabelling items to a sparse id space via the public
        # constructor path: rebuild from (item, score) pairs.
        from repro.lists.database import Database
        from repro.lists.sorted_list import SortedList

        sparse = ColumnarDatabase.from_database(
            Database(
                [
                    SortedList(
                        [(item * 7 + 3, score) for item, score in
                         zip(lst.items_array.tolist(),
                             lst.scores_array.tolist())],
                        name=lst.name,
                    )
                    for lst in base.lists
                ]
            )
        )
        path = tmp_path / "sparse.bpsn"
        write_snapshot(sparse, path, epoch=7)
        loaded, _ = load_snapshot(path)
        assert not loaded.lists[0].dense_ids
        assert_databases_identical(loaded, sparse)

    def test_write_is_atomic_no_stray_tmp(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, epoch=1)
        first = path.read_bytes()
        write_snapshot(database, path, epoch=2)
        assert load_snapshot(path)[1] == 2
        assert path.read_bytes() != first
        assert [p.name for p in tmp_path.iterdir()] == ["state.bpsn"]


def _flip(path: Path, offset: int) -> None:
    """Flip one byte of the file at ``offset`` in place."""
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))


def _payload_offset(path: Path, *, section_offset: int) -> int:
    """File offset of an uncompressed payload byte (raw snapshots)."""
    fields = _SNAP_HEADER.unpack_from(path.read_bytes())
    m = fields[4]
    return _SNAP_HEADER.size + m * _CRC_PAIR.size + section_offset


class TestVerify:
    def test_clean_snapshot_passes(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, epoch=13)
        report = verify_snapshot(path)
        assert report.ok
        assert report.epoch == 13
        assert report.m == 3 and report.n == 30
        assert report.compressed
        assert report.checks >= 1 + 5 * report.m
        assert report.repaired == []

    def test_bad_magic_raises(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path)
        _flip(path, 0)
        with pytest.raises(CorruptFileError, match="bad snapshot magic"):
            verify_snapshot(path)
        with pytest.raises(CorruptFileError, match="bad snapshot magic"):
            load_snapshot(path)

    def test_truncated_header_raises(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path)
        path.write_bytes(path.read_bytes()[: _SNAP_HEADER.size - 3])
        with pytest.raises(CorruptFileError, match="truncated"):
            verify_snapshot(path)

    def test_garbled_deflate_raises(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, compress=True)
        _flip(path, path.stat().st_size - 5)
        with pytest.raises(CorruptFileError, match="does not inflate|checksum"):
            load_snapshot(path)

    def test_rank_section_corruption_detected(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, compress=False)
        offset = _payload_offset(
            path, section_offset=_rank_section_offset(database.n, 1) + 8
        )
        _flip(path, offset)
        report = verify_snapshot(path)
        assert not report.ok
        assert any("L2: rank section checksum" in i for i in report.issues)
        # The whole-payload crc catches it too.
        assert any("whole-payload" in i for i in report.issues)
        with pytest.raises(CorruptFileError, match="checksum mismatch"):
            load_snapshot(path)

    def test_index_section_corruption_detected(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, compress=False)
        offset = _payload_offset(
            path, section_offset=_index_section_offset(database.n, 0)
        )
        _flip(path, offset)
        report = verify_snapshot(path)
        assert not report.ok
        assert any("L1: index section checksum" in i for i in report.issues)
        assert not any("rank section" in i for i in report.issues)


class TestRepair:
    def _corrupt_index(self, path: Path, n: int, list_index: int) -> None:
        offset = _payload_offset(
            path,
            section_offset=_index_section_offset(n, list_index)
            + _INDEX_DTYPE.itemsize,
        )
        _flip(path, offset)

    def test_repair_rebuilds_index_from_rank(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, epoch=5, compress=False)
        pristine = path.read_bytes()
        self._corrupt_index(path, database.n, 2)
        assert not verify_snapshot(path).ok

        report = verify_snapshot(path, repair=True)
        assert report.ok
        assert any("L3" in line for line in report.repaired)
        # The repaired file round-trips identically to the original
        # database and passes a fresh audit.
        assert verify_snapshot(path).ok
        loaded, epoch = load_snapshot(path)
        assert epoch == 5
        assert_databases_identical(loaded, database)
        # Byte-identical payload to the pristine write (same sections,
        # fresh checksums over identical bytes).
        assert path.read_bytes() == pristine

    def test_repair_works_on_compressed_snapshots(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, epoch=5, compress=True)
        # Corrupting a compressed payload in place garbles the inflate;
        # instead rewrite the file raw, corrupt, then repair and confirm
        # the repaired file stays compressed=False-agnostic.
        loaded, epoch = load_snapshot(path)
        raw = tmp_path / "raw.bpsn"
        write_snapshot(loaded, raw, epoch=epoch, compress=False)
        self._corrupt_index(raw, database.n, 0)
        report = verify_snapshot(raw, repair=True)
        assert report.ok and report.repaired

    def test_rank_damage_is_not_repairable(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, compress=False)
        offset = _payload_offset(
            path, section_offset=_rank_section_offset(database.n, 0) + 4
        )
        _flip(path, offset)
        report = verify_snapshot(path, repair=True)
        assert not report.ok
        assert any("L1: rank section checksum" in i for i in report.issues)

    def test_repair_is_noop_on_clean_file(self, tmp_path, database):
        path = tmp_path / "state.bpsn"
        write_snapshot(database, path, compress=False)
        before = path.read_bytes()
        report = verify_snapshot(path, repair=True)
        assert report.ok and report.repaired == []
        assert path.read_bytes() == before
