"""Unit tests for the typed primitives in :mod:`repro.types`."""

import math

import pytest

from repro.types import (
    AccessTally,
    CostModel,
    ScoredItem,
    TopKResult,
    rank_items,
)


class TestAccessTally:
    def test_defaults_are_zero(self):
        tally = AccessTally()
        assert tally.sorted == 0
        assert tally.random == 0
        assert tally.direct == 0
        assert tally.total == 0

    def test_total_sums_all_modes(self):
        assert AccessTally(sorted=3, random=5, direct=7).total == 15

    def test_addition_is_componentwise(self):
        combined = AccessTally(1, 2, 3) + AccessTally(10, 20, 30)
        assert combined == AccessTally(11, 22, 33)

    def test_addition_rejects_other_types(self):
        with pytest.raises(TypeError):
            AccessTally() + 5  # noqa: B018 - intentional misuse

    def test_copy_is_independent(self):
        original = AccessTally(1, 1, 1)
        clone = original.copy()
        clone.sorted = 99
        assert original.sorted == 1


class TestCostModel:
    def test_paper_model_uses_log2_n(self):
        model = CostModel.paper(1024)
        assert model.sorted_cost == 1.0
        assert model.random_cost == pytest.approx(10.0)

    def test_paper_model_handles_n_1(self):
        assert CostModel.paper(1).random_cost == 1.0

    def test_paper_model_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            CostModel.paper(0)

    def test_execution_cost_formula(self):
        model = CostModel(sorted_cost=1.0, random_cost=4.0)
        cost = model.execution_cost(AccessTally(sorted=10, random=5))
        assert cost == 10 * 1.0 + 5 * 4.0

    def test_direct_defaults_to_random_cost(self):
        model = CostModel(sorted_cost=1.0, random_cost=4.0)
        assert model.execution_cost(AccessTally(direct=3)) == 12.0

    def test_direct_cost_override(self):
        model = CostModel(sorted_cost=1.0, random_cost=4.0, direct_cost=2.0)
        assert model.execution_cost(AccessTally(direct=3)) == 6.0


def _result(scores, algorithm="x"):
    items = tuple(ScoredItem(item=i, score=s) for i, s in enumerate(scores))
    return TopKResult(
        items=items,
        tally=AccessTally(sorted=1),
        rounds=1,
        stop_position=1,
        algorithm=algorithm,
    )


class TestTopKResult:
    def test_accessors(self):
        result = _result([9.0, 5.0])
        assert result.k == 2
        assert result.item_ids == (0, 1)
        assert result.scores == (9.0, 5.0)

    def test_same_scores_tolerates_float_noise(self):
        assert _result([1.0, 2.0]).same_scores(_result([1.0 + 1e-12, 2.0]))

    def test_same_scores_rejects_different_values(self):
        assert not _result([1.0, 2.0]).same_scores(_result([1.0, 2.5]))

    def test_same_scores_rejects_different_k(self):
        assert not _result([1.0]).same_scores(_result([1.0, 2.0]))

    def test_execution_cost_delegates_to_model(self):
        model = CostModel(sorted_cost=7.0, random_cost=1.0)
        assert _result([1.0]).execution_cost(model) == 7.0


class TestScoredItem:
    def test_unpacking(self):
        item, score = ScoredItem(item=4, score=2.5)
        assert item == 4
        assert score == 2.5


class TestRankItems:
    def test_sorts_by_score_descending(self):
        assert rank_items([1.0, 3.0, 2.0]) == [1, 2, 0]

    def test_ties_break_by_item_id(self):
        assert rank_items([5.0, 5.0, 7.0, 5.0]) == [2, 0, 1, 3]

    def test_empty(self):
        assert rank_items([]) == []

    def test_nan_free_floats(self):
        ranked = rank_items([math.pi, math.e, math.tau])
        assert ranked == [2, 0, 1]
