"""Property-based tests: the B+tree must behave like a sorted dict."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.btree import BPlusTree

_keys = st.integers(-500, 500)
_orders = st.sampled_from([3, 4, 5, 8, 16])


@given(keys=st.lists(_keys), order=_orders)
def test_inserts_match_set_model(keys, order):
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key)
    expected = sorted(set(keys))
    assert list(tree.keys()) == expected
    assert len(tree) == len(expected)
    tree.validate()


@given(keys=st.lists(_keys, min_size=1), order=_orders)
def test_min_max_successor_match_model(keys, order):
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key)
    model = sorted(set(keys))
    assert tree.min_key() == model[0]
    assert tree.max_key() == model[-1]
    for probe in (model[0] - 1, model[len(model) // 2], model[-1] - 1):
        expected = next((k for k in model if k > probe), None)
        if expected is None:
            continue
        assert tree.successor(probe) == expected


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), _keys), max_size=200
    ),
    order=_orders,
)
def test_mixed_operations_match_dict_model(operations, order):
    tree = BPlusTree(order=order)
    model: dict[int, int] = {}
    for op, key in operations:
        if op == "insert":
            tree.insert(key, key * 2)
            model[key] = key * 2
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert list(tree.items()) == sorted(model.items())
    tree.validate()


@given(
    keys=st.lists(_keys, min_size=1, unique=True),
    order=_orders,
    low_offset=st.integers(-5, 5),
    span=st.integers(0, 400),
)
def test_range_items_match_model(keys, order, low_offset, span):
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key)
    low = min(keys) + low_offset
    high = low + span
    expected = [k for k in sorted(keys) if low <= k <= high]
    assert [k for k, _v in tree.range_items(low, high)] == expected


class BTreeMachine(RuleBasedStateMachine):
    """Stateful fuzzing: arbitrary op interleavings preserve invariants."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model: dict[int, int] = {}

    @rule(key=_keys, value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=_keys)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=_keys)
    def lookup(self, key):
        assert self.tree.get(key, "missing") == self.model.get(key, "missing")

    @invariant()
    def structure_is_valid(self):
        self.tree.validate()
        assert len(self.tree) == len(self.model)


TestBTreeStateMachine = BTreeMachine.TestCase
TestBTreeStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
