"""Unit tests for the running top-k set ``Y`` (TopKBuffer)."""

import pytest

from repro.algorithms.base import TopKBuffer
from repro.errors import InvalidQueryError


class TestBasics:
    def test_rejects_k_below_one(self):
        with pytest.raises(InvalidQueryError):
            TopKBuffer(0)

    def test_keeps_only_k_best(self):
        buffer = TopKBuffer(2)
        for item, score in [(1, 5.0), (2, 9.0), (3, 7.0), (4, 1.0)]:
            buffer.add(item, score)
        assert [e.item for e in buffer.ranked()] == [2, 3]

    def test_ranked_is_score_descending(self):
        buffer = TopKBuffer(3)
        for item, score in [(1, 1.0), (2, 3.0), (3, 2.0)]:
            buffer.add(item, score)
        assert [e.score for e in buffer.ranked()] == [3.0, 2.0, 1.0]

    def test_duplicate_adds_ignored(self):
        buffer = TopKBuffer(2)
        buffer.add(1, 5.0)
        buffer.add(1, 5.0)
        assert len(buffer) == 1

    def test_contains(self):
        buffer = TopKBuffer(1)
        buffer.add(1, 5.0)
        assert 1 in buffer
        buffer.add(2, 9.0)
        assert 1 not in buffer
        assert 2 in buffer


class TestTieBreaking:
    def test_equal_scores_keep_smaller_item_id(self):
        buffer = TopKBuffer(1)
        buffer.add(9, 5.0)
        buffer.add(3, 5.0)
        assert buffer.ranked()[0].item == 3

    def test_equal_scores_keep_smaller_id_regardless_of_order(self):
        buffer = TopKBuffer(1)
        buffer.add(3, 5.0)
        buffer.add(9, 5.0)
        assert buffer.ranked()[0].item == 3

    def test_ranked_orders_ties_by_item_id(self):
        buffer = TopKBuffer(3)
        for item in (7, 2, 5):
            buffer.add(item, 4.0)
        assert [e.item for e in buffer.ranked()] == [2, 5, 7]


class TestStopPredicates:
    def test_kth_score_is_minus_inf_until_full(self):
        buffer = TopKBuffer(3)
        buffer.add(1, 10.0)
        assert buffer.kth_score == float("-inf")
        assert not buffer.is_full()

    def test_kth_score_when_full(self):
        buffer = TopKBuffer(2)
        buffer.add(1, 10.0)
        buffer.add(2, 4.0)
        assert buffer.kth_score == 4.0
        assert buffer.is_full()

    def test_all_at_least(self):
        buffer = TopKBuffer(2)
        buffer.add(1, 10.0)
        assert not buffer.all_at_least(1.0)  # not full yet
        buffer.add(2, 4.0)
        assert buffer.all_at_least(4.0)
        assert not buffer.all_at_least(4.5)
