"""Unit tests for the round-plan engine and block-access metering.

The metering property test is the accounting contract every block
fetch must honor: a ``sorted_block`` / ``lookup_many`` call leaves the
accessor's tally (and cursor) exactly where the equivalent per-entry
sequence would — including the partial tallies of failure paths, where
an unknown item mid-batch must count precisely the lookups up to and
including the failing one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnarList
from repro.errors import ExhaustedListError, UnknownItemError
from repro.exec.plan import (
    BlockRound,
    DirectBlock,
    ProbeBatch,
    RoundPlan,
    SortedFetch,
)
from repro.lists.accessor import ListAccessor
from repro.lists.sorted_list import SortedList


# ----------------------------------------------------------------------
# RoundPlan invariants
# ----------------------------------------------------------------------


class TestRoundPlan:
    def test_rejects_two_ops_for_one_list(self):
        with pytest.raises(ValueError, match="one op per list"):
            RoundPlan(ops=(SortedFetch(0, 1), ProbeBatch(0, (1,))))

    def test_allows_distinct_lists_and_empty_plans(self):
        RoundPlan(ops=())
        RoundPlan(
            ops=(SortedFetch(0, 2), ProbeBatch(1, (3,)), DirectBlock(2, (), 4))
        )


class TestBlockRound:
    def test_probe_needs_skip_surfacing_lists_in_first_surfaced_order(self):
        block = BlockRound(3)
        block.add(0, item=7, score=0.9)
        block.add(1, item=5, score=0.8)
        block.add(2, item=7, score=0.7)  # 7 surfaced twice
        assert block.new_items(set()) == [7, 5]
        assert block.new_items({7}) == [5]
        assert block.probe_needs([7, 5]) == [[5], [7], [5]]

    def test_local_scores_merge_surfaced_and_probed(self):
        block = BlockRound(3)
        block.add(0, item=7, score=0.9)
        block.add(2, item=7, score=0.7)
        probes = {1: {7: 0.5}}
        assert block.local_scores(7, probes) == [0.9, 0.5, 0.7]


# ----------------------------------------------------------------------
# Metering: block fetches tally exactly like per-entry sequences
# ----------------------------------------------------------------------


def _make_lists(scores):
    entries = list(enumerate(scores))
    return (
        SortedList(entries, name="py"),
        ColumnarList(entries, name="col"),
    )


@st.composite
def _block_programs(draw):
    n = draw(st.integers(1, 12))
    scores = draw(
        st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=n,
            max_size=n,
        )
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("sorted"), st.integers(0, n + 3)),
                st.tuples(
                    st.just("lookup"),
                    st.lists(st.integers(0, n + 2), max_size=5),
                ),
            ),
            max_size=8,
        )
    )
    return scores, ops


class TestBlockMeteringEquality:
    """Property: block and per-entry access paths meter identically."""

    @settings(max_examples=60, deadline=None)
    @given(program=_block_programs())
    def test_tallies_equal_per_entry_sequence(self, program):
        scores, ops = program
        for source in _make_lists(scores):
            block_side = ListAccessor(source)
            entry_side = ListAccessor(source)
            for kind, arg in ops:
                if kind == "sorted":
                    entries = block_side.sorted_block(arg)
                    singles = []
                    for _ in range(arg):
                        if entry_side.exhausted:
                            break
                        singles.append(entry_side.sorted_next())
                    assert entries == singles
                else:
                    try:
                        block_scores, _ = block_side.lookup_many(arg)
                        block_error = None
                    except UnknownItemError as exc:
                        block_error = exc
                    entry_scores = []
                    entry_error = None
                    for item in arg:
                        try:
                            score, _pos = entry_side.random_lookup(item)
                        except UnknownItemError as exc:
                            entry_error = exc
                            break
                        entry_scores.append(score)
                    assert (block_error is None) == (entry_error is None)
                    if block_error is None:
                        assert list(block_scores) == entry_scores
                # The contract: identical tally and cursor after every
                # step, success or failure.
                assert block_side.tally == entry_side.tally, (kind, arg)
                assert (
                    block_side.last_sorted_position
                    == entry_side.last_sorted_position
                )

    def test_unknown_item_mid_batch_counts_partial_tally(self):
        for source in _make_lists([0.9, 0.5, 0.1]):
            accessor = ListAccessor(source)
            with pytest.raises(UnknownItemError):
                accessor.lookup_many([0, 1, 99, 2])
            # Two successes plus the failing lookup, exactly as the
            # per-entry loop counts (random_lookup meters, then raises).
            assert accessor.tally.random == 3

    def test_sorted_block_clips_and_then_returns_empty(self):
        for source in _make_lists([0.9, 0.5]):
            accessor = ListAccessor(source)
            assert len(accessor.sorted_block(5)) == 2
            assert accessor.tally.sorted == 2
            assert accessor.sorted_block(3) == []
            assert accessor.tally.sorted == 2
            with pytest.raises(ExhaustedListError):
                accessor.sorted_next()


# ----------------------------------------------------------------------
# AIMD admission control
# ----------------------------------------------------------------------


class TestAdaptiveConcurrency:
    def _controller(self, **kwargs):
        from repro.service import AdaptiveConcurrency

        return AdaptiveConcurrency(**kwargs)

    def test_additive_increase_up_to_cap(self):
        controller = self._controller(max_window=6)
        assert controller.window == 3  # starts at half the ceiling
        for _ in range(200):
            controller._in_flight += 1  # pair the releases
            controller.release(0.01)
        assert controller.window == 6

    def test_multiplicative_decrease_on_latency_spike(self):
        controller = self._controller(max_window=16, start=16)
        controller._in_flight += 1
        controller.release(0.01)  # establishes the baseline
        before = controller.window
        controller._in_flight += 1
        controller.release(10.0)  # far above threshold * baseline
        assert controller.window <= max(1, before // 2)

    def test_window_never_leaves_bounds(self):
        controller = self._controller(max_window=4, min_window=2)
        for latency in (0.01, 50.0, 0.01, 80.0, 0.01):
            controller._in_flight += 1
            controller.release(latency)
            assert 2 <= controller.window <= 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            self._controller(max_window=0)
        with pytest.raises(ValueError):
            self._controller(max_window=4, min_window=9)
        with pytest.raises(ValueError):
            self._controller(max_window=4, backoff=1.5)

    def test_acquire_release_gating(self):
        import asyncio

        async def scenario():
            controller = self._controller(max_window=2, start=1)
            order = []

            async def worker(tag, latency):
                await controller.acquire()
                order.append(tag)
                await asyncio.sleep(0)
                controller.release(latency)

            await asyncio.gather(*(worker(i, 0.001) for i in range(5)))
            assert sorted(order) == list(range(5))
            assert controller.in_flight == 0

        asyncio.run(scenario())
