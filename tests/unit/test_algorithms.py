"""Per-algorithm unit tests on small deterministic databases."""

import pytest

from repro.algorithms import (
    FaginsAlgorithm,
    NaiveScan,
    NoRandomAccess,
    ThresholdAlgorithm,
)
from repro.algorithms.base import get_algorithm, known_algorithms
from repro.algorithms.naive import brute_force_topk
from repro.core import BestPositionAlgorithm, BestPositionAlgorithm2
from repro.errors import InvalidQueryError, NonMonotonicScoringError
from repro.lists.database import Database
from repro.scoring import MIN, SUM

ALL_NAMES = ("naive", "fa", "ta", "bpa", "bpa2", "nra")


class TestRegistry:
    def test_known_algorithms(self):
        for name in ALL_NAMES:
            assert name in known_algorithms()

    def test_get_algorithm_constructs(self):
        assert isinstance(get_algorithm("ta"), ThresholdAlgorithm)
        assert isinstance(get_algorithm("bpa"), BestPositionAlgorithm)
        assert isinstance(get_algorithm("bpa2"), BestPositionAlgorithm2)
        assert isinstance(get_algorithm("fa"), FaginsAlgorithm)
        assert isinstance(get_algorithm("naive"), NaiveScan)
        assert isinstance(get_algorithm("nra"), NoRandomAccess)

    def test_get_algorithm_kwargs(self):
        assert get_algorithm("ta", memoize=True).memoize

    def test_get_algorithm_unknown(self):
        with pytest.raises(KeyError):
            get_algorithm("quantum-topk")


class TestQueryValidation:
    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("k", [0, -1, 7])
    def test_invalid_k_rejected(self, simple_database, name, k):
        with pytest.raises(InvalidQueryError):
            get_algorithm(name).run(simple_database, k)

    def test_verify_scoring_catches_non_monotonic(self, simple_database):
        class NegSum:
            name = "negsum"

            def __call__(self, scores):
                return -sum(scores)

        with pytest.raises(NonMonotonicScoringError):
            ThresholdAlgorithm().run(simple_database, 2, NegSum(), verify_scoring=True)

    def test_verify_scoring_accepts_sum(self, simple_database):
        result = ThresholdAlgorithm().run(simple_database, 2, SUM, verify_scoring=True)
        assert result.k == 2


class TestAgreementOnSimpleDatabase:
    @pytest.mark.parametrize("name", ("naive", "fa", "ta", "bpa", "bpa2"))
    @pytest.mark.parametrize("k", [1, 2, 6])
    def test_matches_brute_force(self, simple_database, name, k):
        expected = [e.score for e in brute_force_topk(simple_database, k)]
        result = get_algorithm(name).run(simple_database, k)
        assert list(result.scores) == pytest.approx(expected)

    @pytest.mark.parametrize("k", [1, 2, 6])
    def test_nra_item_set_matches_brute_force(self, simple_database, k):
        # NRA reports lower-bound scores (exact only once an item is seen
        # in every list), so compare the *exact* scores of its item set.
        expected = sorted(e.score for e in brute_force_topk(simple_database, k))
        result = get_algorithm("nra").run(simple_database, k)
        exact = sorted(
            sum(simple_database.local_scores(item)) for item in result.item_ids
        )
        assert exact == pytest.approx(expected)

    @pytest.mark.parametrize("name", ("naive", "fa", "ta", "bpa", "bpa2"))
    def test_min_scoring(self, simple_database, name):
        expected = [e.score for e in brute_force_topk(simple_database, 2, MIN)]
        result = get_algorithm(name).run(simple_database, 2, MIN)
        assert list(result.scores) == pytest.approx(expected)


class TestSingleList:
    """m=1: every algorithm degenerates to reading the top of one list."""

    @pytest.fixture()
    def database(self) -> Database:
        return Database.from_score_rows([[5.0, 9.0, 1.0, 7.0, 3.0]])

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_answers(self, database, name):
        result = get_algorithm(name).run(database, 2)
        assert list(result.scores) == [9.0, 7.0]

    @pytest.mark.parametrize("name", ("ta", "bpa"))
    def test_scan_depth_is_k(self, database, name):
        result = get_algorithm(name).run(database, 2)
        assert result.stop_position == 2
        assert result.tally.sorted == 2
        assert result.tally.random == 0


class TestNaive:
    def test_reads_everything(self, simple_database):
        result = NaiveScan().run(simple_database, 1)
        n, m = simple_database.n, simple_database.m
        assert result.tally.sorted == n * m
        assert result.tally.random == 0

    def test_brute_force_matches_naive(self, simple_database):
        naive = NaiveScan().run(simple_database, 4)
        brute = brute_force_topk(simple_database, 4)
        assert list(naive.scores) == [e.score for e in brute]
        assert list(naive.item_ids) == [e.item for e in brute]


class TestTA:
    def test_random_accesses_are_sorted_times_m_minus_1(self, simple_database):
        result = ThresholdAlgorithm().run(simple_database, 2)
        m = simple_database.m
        assert result.tally.random == result.tally.sorted * (m - 1)

    def test_memoized_never_costs_more(self, simple_database):
        plain = ThresholdAlgorithm().run(simple_database, 2)
        memoized = ThresholdAlgorithm(memoize=True).run(simple_database, 2)
        assert memoized.tally.total <= plain.tally.total
        assert memoized.stop_position == plain.stop_position
        assert memoized.same_scores(plain)

    def test_threshold_reported_in_extras(self, simple_database):
        result = ThresholdAlgorithm().run(simple_database, 2)
        assert "threshold" in result.extras

    def test_k_equals_n_terminates(self, simple_database):
        result = ThresholdAlgorithm().run(simple_database, simple_database.n)
        assert result.k == simple_database.n


class TestFA:
    def test_stops_when_k_items_seen_everywhere(self):
        # Identical lists: after k rounds, the top-k items are seen in all
        # lists, so FA stops at exactly position k.
        rows = [[float(10 - i) for i in range(10)]] * 3
        database = Database.from_score_rows(rows)
        result = FaginsAlgorithm().run(database, 3)
        assert result.stop_position == 3

    def test_random_accesses_only_for_missing_scores(self, simple_database):
        result = FaginsAlgorithm().run(simple_database, 1)
        # FA's phase 2 fills only the gaps, never re-reads known scores.
        assert result.tally.random < result.tally.sorted * simple_database.m


class TestBPA:
    @pytest.mark.parametrize("tracker", ("naive", "bitarray", "btree"))
    def test_tracker_choice_changes_nothing(self, simple_database, tracker):
        reference = BestPositionAlgorithm().run(simple_database, 2)
        result = BestPositionAlgorithm(tracker=tracker).run(simple_database, 2)
        assert result.same_scores(reference)
        assert result.tally == reference.tally
        assert result.stop_position == reference.stop_position

    def test_extras_contain_lambda_and_best_positions(self, simple_database):
        result = BestPositionAlgorithm().run(simple_database, 2)
        assert "lambda" in result.extras
        assert len(result.extras["best_positions"]) == simple_database.m

    def test_random_accesses_are_sorted_times_m_minus_1(self, simple_database):
        result = BestPositionAlgorithm().run(simple_database, 2)
        m = simple_database.m
        assert result.tally.random == result.tally.sorted * (m - 1)


class TestBPA2:
    def test_no_sorted_accesses(self, simple_database):
        result = BestPositionAlgorithm2().run(simple_database, 2)
        assert result.tally.sorted == 0
        assert result.tally.direct > 0

    def test_theorem5_accesses_equal_distinct_positions(self, simple_database):
        result = BestPositionAlgorithm2().run(simple_database, 2)
        assert (
            result.extras["per_list_accesses"]
            == result.extras["per_list_distinct_positions"]
        )

    def test_check_every_access_never_costs_more(self, simple_database):
        per_round = BestPositionAlgorithm2().run(simple_database, 2)
        per_access = BestPositionAlgorithm2(check_every_access=True).run(
            simple_database, 2
        )
        assert per_access.tally.total <= per_round.tally.total
        assert per_access.same_scores(per_round)

    @pytest.mark.parametrize("tracker", ("naive", "bitarray", "btree"))
    def test_tracker_choice_changes_nothing(self, simple_database, tracker):
        reference = BestPositionAlgorithm2().run(simple_database, 2)
        result = BestPositionAlgorithm2(tracker=tracker).run(simple_database, 2)
        assert result.same_scores(reference)
        assert result.tally == reference.tally


class TestNRA:
    def test_never_uses_random_access(self, simple_database):
        result = NoRandomAccess().run(simple_database, 2)
        assert result.tally.random == 0
        assert result.tally.direct == 0

    def test_correct_item_set(self, simple_database):
        expected = {e.item for e in brute_force_topk(simple_database, 2)}
        result = NoRandomAccess().run(simple_database, 2)
        assert set(result.item_ids) == expected
