"""Unit tests for the synthetic database generators."""

import numpy as np
import pytest

from repro.datagen import (
    CorrelatedGenerator,
    GaussianCopulaGenerator,
    GaussianGenerator,
    GeneratorSpec,
    UniformGenerator,
    make_generator,
    zipf_scores,
)
from repro.datagen.correlated import _FreeSlots
from repro.datagen.zipf import zipf_frequencies
from repro.errors import GenerationError


def _assert_valid_database(database, n, m):
    assert database.m == m
    assert database.n == n
    items = frozenset(range(n))
    for lst in database.lists:
        assert frozenset(lst.items()) == items
        scores = lst.scores()
        assert all(a >= b for a, b in zip(scores, scores[1:])), "not descending"


class TestUniform:
    def test_shape_and_validity(self):
        database = UniformGenerator().generate(50, 4, seed=1)
        _assert_valid_database(database, 50, 4)

    def test_deterministic_per_seed(self):
        a = UniformGenerator().generate(30, 3, seed=9)
        b = UniformGenerator().generate(30, 3, seed=9)
        assert [lst.items() for lst in a.lists] == [lst.items() for lst in b.lists]

    def test_different_seeds_differ(self):
        a = UniformGenerator().generate(100, 2, seed=1)
        b = UniformGenerator().generate(100, 2, seed=2)
        assert [lst.items() for lst in a.lists] != [lst.items() for lst in b.lists]

    def test_scores_within_range(self):
        database = UniformGenerator(low=2.0, high=3.0).generate(40, 2, seed=0)
        for lst in database.lists:
            assert all(2.0 <= s < 3.0 for s in lst.scores())

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformGenerator(low=1.0, high=1.0)

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(GenerationError):
            UniformGenerator().generate(0, 3)
        with pytest.raises(GenerationError):
            UniformGenerator().generate(3, 0)


class TestGaussian:
    def test_shape_and_validity(self):
        database = GaussianGenerator().generate(50, 3, seed=1)
        _assert_valid_database(database, 50, 3)

    def test_paper_moments(self):
        database = GaussianGenerator().generate(4000, 1, seed=5)
        scores = np.array(database.lists[0].scores())
        assert abs(scores.mean()) < 0.1
        assert abs(scores.std() - 1.0) < 0.1

    def test_shift_nonnegative(self):
        database = GaussianGenerator(shift_nonnegative=True).generate(500, 2, seed=3)
        for lst in database.lists:
            assert min(lst.scores()) >= 0.0

    def test_rejects_bad_std(self):
        with pytest.raises(ValueError):
            GaussianGenerator(std=0.0)


class TestZipf:
    def test_scores_follow_power_law(self):
        scores = zipf_scores(100, theta=0.7)
        assert scores[0] == 1.0
        assert scores[9] == pytest.approx(10 ** -0.7)
        assert all(a > b for a, b in zip(scores, scores[1:]))

    def test_theta_zero_is_flat(self):
        assert np.allclose(zipf_scores(10, theta=0.0), 1.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_scores(0)
        with pytest.raises(ValueError):
            zipf_scores(5, theta=-1.0)

    def test_frequencies_are_positive_integers(self):
        freqs = zipf_frequencies(50, total=10_000)
        assert freqs.dtype.kind == "i"
        assert (freqs >= 1).all()
        assert freqs[0] == freqs.max()


class TestCorrelated:
    def test_shape_and_validity(self):
        database = CorrelatedGenerator(alpha=0.05).generate(80, 4, seed=2)
        _assert_valid_database(database, 80, 4)

    def test_scores_are_zipf(self):
        database = CorrelatedGenerator(alpha=0.05, theta=0.7).generate(60, 2, seed=2)
        expected = zipf_scores(60, 0.7)
        assert np.allclose(database.lists[0].scores(), expected)
        assert np.allclose(database.lists[1].scores(), expected)

    @staticmethod
    def _rank_correlation(database) -> float:
        """Mean Pearson correlation of positions between list 1 and the rest.

        (Positions are ranks, so this is a Spearman correlation.)
        """
        n = database.n
        base = np.empty(n)
        for pos, item in enumerate(database.lists[0].items()):
            base[item] = pos
        correlations = []
        for lst in database.lists[1:]:
            other = np.empty(n)
            for pos, item in enumerate(lst.items()):
                other[item] = pos
            correlations.append(float(np.corrcoef(base, other)[0, 1]))
        return float(np.mean(correlations))

    def test_small_alpha_gives_high_rank_correlation(self):
        # Collision cascades mean individual displacements can exceed
        # n*alpha (the paper's "closest free position" rule), so assert
        # the aggregate: rankings stay strongly correlated.
        database = CorrelatedGenerator(alpha=0.01).generate(500, 3, seed=4)
        assert self._rank_correlation(database) > 0.99

    def test_correlation_decreases_with_alpha(self):
        tight = CorrelatedGenerator(alpha=0.01).generate(400, 3, seed=6)
        loose = CorrelatedGenerator(alpha=0.5).generate(400, 3, seed=6)
        assert self._rank_correlation(tight) > self._rank_correlation(loose)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            CorrelatedGenerator(alpha=1.5)
        with pytest.raises(ValueError):
            CorrelatedGenerator(alpha=-0.1)

    def test_deterministic_per_seed(self):
        a = CorrelatedGenerator(alpha=0.1).generate(50, 3, seed=7)
        b = CorrelatedGenerator(alpha=0.1).generate(50, 3, seed=7)
        assert [lst.items() for lst in a.lists] == [lst.items() for lst in b.lists]


class TestFreeSlots:
    def test_takes_exact_slot_when_free(self):
        slots = _FreeSlots(10)
        assert slots.take_nearest(4) == 4

    def test_prefers_left_on_tie(self):
        slots = _FreeSlots(10)
        slots.take_nearest(4)
        assert slots.take_nearest(4) in (3, 5)

    def test_fills_everything_exactly_once(self):
        n = 50
        slots = _FreeSlots(n)
        taken = [slots.take_nearest(7) for _ in range(n)]
        assert sorted(taken) == list(range(n))

    def test_raises_when_full(self):
        slots = _FreeSlots(2)
        slots.take_nearest(0)
        slots.take_nearest(0)
        with pytest.raises(GenerationError):
            slots.take_nearest(0)

    def test_clamps_out_of_range_targets(self):
        slots = _FreeSlots(5)
        assert slots.take_nearest(-10) == 0
        assert slots.take_nearest(99) == 4


class TestGaussianCopula:
    def test_shape_and_validity(self):
        database = GaussianCopulaGenerator(rho=0.5).generate(60, 3, seed=1)
        _assert_valid_database(database, 60, 3)

    def test_rho_zero_is_independent(self):
        database = GaussianCopulaGenerator(rho=0.0).generate(2000, 2, seed=2)
        scores = [np.empty(2000), np.empty(2000)]
        for index, lst in enumerate(database.lists):
            for item in range(2000):
                scores[index][item] = lst.lookup(item)[0]
        correlation = float(np.corrcoef(scores[0], scores[1])[0, 1])
        assert abs(correlation) < 0.1

    def test_rho_controls_pairwise_correlation(self):
        rho = 0.8
        database = GaussianCopulaGenerator(rho=rho).generate(3000, 2, seed=3)
        scores = [np.empty(3000), np.empty(3000)]
        for index, lst in enumerate(database.lists):
            for item in range(3000):
                scores[index][item] = lst.lookup(item)[0]
        correlation = float(np.corrcoef(scores[0], scores[1])[0, 1])
        assert correlation == pytest.approx(rho, abs=0.06)

    def test_rho_one_identical_rankings(self):
        database = GaussianCopulaGenerator(rho=1.0).generate(200, 3, seed=4)
        first = database.lists[0].items()
        for lst in database.lists[1:]:
            assert lst.items() == first

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            GaussianCopulaGenerator(rho=1.5)
        with pytest.raises(ValueError):
            GaussianCopulaGenerator(rho=-0.2)

    def test_deterministic(self):
        a = GaussianCopulaGenerator(rho=0.4).generate(50, 2, seed=5)
        b = GaussianCopulaGenerator(rho=0.4).generate(50, 2, seed=5)
        assert [lst.items() for lst in a.lists] == [lst.items() for lst in b.lists]


class TestSpecAndFactory:
    def test_make_generator_kinds(self):
        assert isinstance(make_generator("uniform"), UniformGenerator)
        assert isinstance(make_generator("gaussian"), GaussianGenerator)
        assert isinstance(make_generator("correlated", alpha=0.2), CorrelatedGenerator)
        assert isinstance(make_generator("copula", rho=0.5), GaussianCopulaGenerator)

    def test_make_generator_unknown(self):
        with pytest.raises(GenerationError):
            make_generator("lognormal")

    def test_spec_builds_and_describes(self):
        spec = GeneratorSpec("correlated", {"alpha": 0.01})
        generator = spec.build()
        assert isinstance(generator, CorrelatedGenerator)
        assert "alpha=0.01" in spec.describe()
        assert GeneratorSpec("uniform").describe() == "uniform"
