"""MutationLog coverage semantics and the cache's delta certificate.

The load-bearing property: a log that cannot *prove* it saw the whole
epoch window (truncated past its depth, or poisoned by a record-less
epoch bump) must make the cache miss — recompute, never serve stale.
The certificate edge cases (exact ties at the k-th score, deletes of
cached members, k spanning the whole database) are pinned with
fabricated entries so each rule is tested in isolation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic import MutationEvent, MutationLog
from repro.scoring import SUM
from repro.service.cache import ResultCache
from repro.types import AccessTally, ScoredItem, TopKResult


def topk(*pairs) -> TopKResult:
    """A fabricated exact result: ``pairs`` are (item, score), best first."""
    return TopKResult(
        items=tuple(ScoredItem(item=i, score=s) for i, s in pairs),
        tally=AccessTally(),
        rounds=1,
        stop_position=1,
        algorithm="ta",
    )


def update(item, new_scores, old_scores=(1.0, 1.0)) -> MutationEvent:
    return MutationEvent(
        kind="update_score",
        item=item,
        list_index=0,
        old_scores=tuple(old_scores),
        new_scores=tuple(new_scores),
    )


def insert(item, new_scores) -> MutationEvent:
    return MutationEvent(
        kind="insert_item", item=item, new_scores=tuple(new_scores)
    )


def remove(item, old_scores=(1.0, 1.0)) -> MutationEvent:
    return MutationEvent(
        kind="remove_item", item=item, old_scores=tuple(old_scores)
    )


class TestMutationLog:
    def test_rejects_degenerate_depth_and_out_of_order_epochs(self):
        with pytest.raises(ValueError, match="depth"):
            MutationLog(0)
        log = MutationLog(4)
        log.record(1, update(0, (2.0, 2.0)))
        with pytest.raises(ValueError, match="increasing"):
            log.record(1, update(0, (3.0, 3.0)))

    def test_window_bounds(self):
        log = MutationLog(8)
        for epoch in range(1, 5):
            log.record(epoch, update(epoch, (2.0, 2.0)))
        assert [e.item for e in log.events_between(0, 4)] == [1, 2, 3, 4]
        assert [e.item for e in log.events_between(2, 3)] == [3]
        assert log.events_between(3, 3) == ()
        # Reaching past the last recorded epoch is unprovable, not empty.
        assert log.events_between(0, 5) is None

    def test_truncation_advances_the_floor(self):
        log = MutationLog(2)
        for epoch in range(1, 5):
            log.record(epoch, update(epoch, (2.0, 2.0)))
        assert log.floor == 2
        assert log.truncations == 2
        assert log.events_between(0, 4) is None  # epoch 1..2 were dropped
        assert log.events_between(1, 4) is None
        assert [e.item for e in log.events_between(2, 4)] == [3, 4]

    def test_poison_makes_the_window_unprovable(self):
        log = MutationLog(8)
        log.record(1, update(7, (2.0, 2.0)))
        log.poison(2)
        assert log.floor == 2 and log.top == 2
        assert log.events_between(0, 2) is None
        assert log.events_between(1, 2) is None
        assert log.events_between(2, 2) == ()
        log.record(3, update(8, (2.0, 2.0)))
        assert [e.item for e in log.events_between(2, 3)] == [8]

    @given(
        depth=st.integers(min_value=1, max_value=6),
        total=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_coverage_is_exact_or_refused(self, depth, total):
        """events_between returns the precise window or None — never a
        silently incomplete subset."""
        log = MutationLog(depth)
        for epoch in range(1, total + 1):
            log.record(epoch, update(epoch, (2.0, 2.0)))
        for after in range(0, total + 1):
            for up_to in range(after, total + 1):
                window = log.events_between(after, up_to)
                if after < log.floor:
                    assert window is None
                else:
                    assert [e.item for e in window] == list(
                        range(after + 1, up_to + 1)
                    )


class TestTruncationDegradesSafely:
    @given(
        depth=st.integers(min_value=1, max_value=5),
        mutations=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_overflowing_log_misses_instead_of_serving_stale(
        self, depth, mutations
    ):
        """Within retention harmless deltas revalidate; past it, the only
        answer is a miss — the property the whole design rests on."""
        log = MutationLog(depth)
        cache = ResultCache(8, log=log)
        value = topk((0, 10.0), (1, 8.0))
        cache.put(("q",), value, 0)
        for epoch in range(1, mutations + 1):
            # Every event is harmless: a far-away item scoring 1.5 total.
            log.record(epoch, update(100 + epoch, (0.5, 1.0)))
        looked = cache.lookup(
            ("q",), mutations, scoring=SUM, rescore=lambda items: {}
        )
        if mutations <= depth:
            assert looked.outcome == "revalidated"
            assert looked.value is value
        else:
            assert looked.outcome == "miss"
            assert looked.value is None
            assert ("q",) not in cache  # dropped, not retained stale


class TestDeltaCertificate:
    """Each certificate rule in isolation, m=2 lists, SUM scoring."""

    def _cache(self, log_events, *, patch_limit=8, current=None):
        log = MutationLog(32)
        cache = ResultCache(8, log=log, patch_limit=patch_limit)
        for epoch, event in enumerate(log_events, start=1):
            log.record(epoch, event)
        snapshot = dict(current or {})

        def rescore(items):
            return {item: snapshot.get(item) for item in items}

        return cache, len(log_events), rescore

    def test_harmless_outsider_revalidates(self):
        cache, epoch, rescore = self._cache([update(9, (3.0, 4.0))])
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "revalidated"
        assert cache.entry_epoch(("q",)) == epoch

    def test_exact_tie_with_larger_id_cannot_enter(self):
        # New aggregate equals the k-th score but loses the id tie-break:
        # the total order says it stays out, so the entry revalidates.
        cache, epoch, rescore = self._cache([update(9, (4.0, 4.0))])
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "revalidated"

    def test_exact_tie_with_smaller_id_patches_in(self):
        # Same score, smaller id: the tie-break seats it above the cached
        # k-th member — the patch must reproduce that exactly.
        cache, epoch, rescore = self._cache(
            [update(3, (4.0, 4.0))], current={3: (4.0, 4.0)}
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "patched"
        assert looked.value.item_ids == (5, 3)
        assert looked.value.scores == (10.0, 8.0)
        assert looked.value.extras["certificate_threshold"] == 8.0
        assert looked.value.extras["patched_items"] == 1

    def test_delete_of_cached_member_is_a_miss(self):
        # The replacement for a deleted member is some unlogged outsider
        # the cache has never seen — only a recomputation can find it.
        cache, epoch, rescore = self._cache([remove(7)])
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "miss"
        assert ("q",) not in cache

    def test_delete_of_outsider_revalidates(self):
        cache, epoch, rescore = self._cache([remove(9)])
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        assert (
            cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore).outcome
            == "revalidated"
        )

    def test_member_upgrade_reorders_via_patch(self):
        cache, epoch, rescore = self._cache(
            [update(7, (12.0, 8.0))], current={7: (12.0, 8.0)}
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "patched"
        assert looked.value.item_ids == (7, 5)
        assert looked.value.scores == (20.0, 10.0)

    def test_member_downgrade_below_boundary_is_a_miss(self):
        # The weakened pool no longer dominates the unlogged outsiders
        # between the old and new boundary: certificate broken.
        cache, epoch, rescore = self._cache(
            [update(5, (0.5, 0.5))], current={5: (0.5, 0.5)}
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "miss"

    def test_member_downgrade_above_boundary_patches(self):
        # Weakened but still at/above the old k-th key: every untouched
        # outsider stays dominated, so the repair is provably exact.
        cache, epoch, rescore = self._cache(
            [update(5, (4.5, 4.5))], current={5: (4.5, 4.5)}
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "patched"
        assert looked.value.item_ids == (5, 7)
        assert looked.value.scores == (9.0, 8.0)

    def test_insert_with_whole_database_cached(self):
        # k spanned the whole database (k >= n clamps to n): an insert
        # is just another candidate; the patched answer is the exact
        # top-k_fetch of the grown database.
        cache, epoch, rescore = self._cache(
            [insert(9, (30.0, 30.0))], current={9: (30.0, 30.0)}
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "patched"
        assert looked.value.item_ids == (9, 5)
        assert looked.value.scores == (60.0, 10.0)

    def test_insert_then_remove_nets_out_to_revalidation(self):
        cache, epoch, rescore = self._cache(
            [insert(9, (30.0, 30.0)), remove(9, (30.0, 30.0))]
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        assert (
            cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore).outcome
            == "revalidated"
        )

    def test_update_reverted_to_cached_aggregate_revalidates(self):
        # A member whose aggregate ends where it started cannot move.
        cache, epoch, rescore = self._cache(
            [update(7, (6.0, 6.0)), update(7, (4.0, 4.0))]
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        assert (
            cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore).outcome
            == "revalidated"
        )

    def test_patch_limit_overflow_falls_back_to_miss(self):
        events = [
            update(item, (20.0, 20.0)) for item in (11, 12, 13)
        ]
        current = {item: (20.0, 20.0) for item in (11, 12, 13)}
        cache, epoch, rescore = self._cache(
            events, patch_limit=2, current=current
        )
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "miss"

    def test_no_rescore_hook_means_patchable_deltas_miss(self):
        log = MutationLog(32)
        cache = ResultCache(8, log=log)
        log.record(1, update(3, (30.0, 30.0)))
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        looked = cache.lookup(("q",), 1, scoring=SUM, rescore=None)
        assert looked.outcome == "miss"

    def test_no_scoring_means_legacy_whole_epoch_miss(self):
        log = MutationLog(32)
        cache = ResultCache(8, log=log)
        log.record(1, update(9, (0.5, 0.5)))
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 0)
        assert cache.get(("q",), 1) is None
        assert cache.stats.invalidations == 1

    def test_lookup_behind_the_entry_misses_without_dropping(self):
        cache, _, rescore = self._cache([])
        cache.put(("q",), topk((5, 10.0), (7, 8.0)), 3)
        looked = cache.lookup(("q",), 1, scoring=SUM, rescore=rescore)
        assert looked.outcome == "miss"
        assert ("q",) in cache  # the fresher entry survives

    def test_underfull_merge_marker_forces_a_miss(self):
        # The certified merge marks answers with fewer than k items as
        # certificate_threshold=None: their last entry is not an
        # exclusion boundary, so even a harmless delta cannot be proven.
        cache, epoch, rescore = self._cache([update(9, (0.5, 0.5))])
        value = topk((5, 10.0), (7, 8.0))
        value.extras["certificate_threshold"] = None
        cache.put(("q",), value, 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "miss"

    def test_merge_threshold_marker_does_not_block_full_answers(self):
        cache, epoch, rescore = self._cache([update(9, (0.5, 0.5))])
        value = topk((5, 10.0), (7, 8.0))
        value.extras["certificate_threshold"] = 8.0  # as the merge sets it
        cache.put(("q",), value, 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "revalidated"

    def test_non_topk_values_never_delta_validate(self):
        log = MutationLog(32)
        cache = ResultCache(8, log=log)
        log.record(1, update(9, (0.5, 0.5)))
        cache.put(("q",), "opaque", 0)
        looked = cache.lookup(
            ("q",), 1, scoring=SUM, rescore=lambda items: {}
        )
        assert looked.outcome == "miss"

    def test_lower_bound_scores_never_delta_validate(self):
        # NRA's returned scores are lower bounds, not exact aggregates:
        # the certificate's comparisons would be against the wrong
        # numbers, so NRA entries expire whole-epoch — even for a
        # delta that would be provably harmless under exact scores.
        from dataclasses import replace

        cache, epoch, rescore = self._cache([update(9, (0.5, 0.5))])
        value = replace(topk((5, 10.0), (7, 8.0)), algorithm="nra")
        cache.put(("q",), value, 0)
        looked = cache.lookup(("q",), epoch, scoring=SUM, rescore=rescore)
        assert looked.outcome == "miss"
        assert ("q",) not in cache

    def test_exact_score_gate_covers_every_merge_exact_algorithm(self):
        # The gate must never lag the shard merge's own exactness list:
        # a merge-exact algorithm that silently stopped delta-validating
        # would be a (safe but unintended) regression.
        from repro.service.cache import EXACT_SCORE_ALGORITHMS
        from repro.service.sharding import MERGE_EXACT_ALGORITHMS

        assert MERGE_EXACT_ALGORITHMS <= EXACT_SCORE_ALGORITHMS
        assert "nra" not in EXACT_SCORE_ALGORITHMS
