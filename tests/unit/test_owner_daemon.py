"""Unit tests for the multi-list owner daemon and its serving paths."""

from __future__ import annotations

import pytest

from repro.columnar import ColumnarDatabase
from repro.datagen import make_generator
from repro.distributed.daemon import (
    DEFAULT_LATENCY_SAMPLE_K,
    LatencyReservoir,
    OwnerDaemon,
    make_owner_node,
)
from repro.distributed.nodes import ColumnarOwnerNode, ListOwnerNode
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def columnar():
    database = make_generator("zipf").generate(40, 3, seed=5)
    return ColumnarDatabase.from_database(database)


def _daemon(columnar, indices=(0, 1), **kwargs):
    return OwnerDaemon(
        [columnar.lists[i] for i in indices], list_indices=list(indices),
        **kwargs,
    )


class TestRouting:
    def test_multi_list_daemon_routes_by_list_field(self, columnar):
        daemon = _daemon(columnar, include_position=True)
        first = daemon.handle("sorted_next", {"list": 0})
        second = daemon.handle("sorted_next", {"list": 1})
        assert first["position"] == second["position"] == 1
        assert daemon.hosted == (0, 1)

    def test_sole_list_is_the_default_route(self, columnar):
        daemon = _daemon(columnar, indices=(2,), include_position=True)
        response = daemon.handle("sorted_next", {})
        assert response["position"] == 1

    def test_multi_list_daemon_requires_routing(self, columnar):
        daemon = _daemon(columnar)
        with pytest.raises(ProtocolError, match="'list' field"):
            daemon.handle("sorted_next", {})

    def test_unhosted_list_rejected(self, columnar):
        daemon = _daemon(columnar)
        with pytest.raises(ProtocolError, match="not hosted"):
            daemon.handle("sorted_next", {"list": 2})

    def test_routing_field_is_not_popped(self, columnar):
        # Payloads are byte-accounted after dispatch; mutating them
        # would silently undercount request sizes.
        daemon = _daemon(columnar)
        payload = {"list": 1}
        daemon.handle("sorted_next", payload)
        assert payload == {"list": 1}


class TestMultiFrames:
    def test_multi_executes_sub_ops_in_order(self, columnar):
        daemon = _daemon(columnar, include_position=True)
        response = daemon.handle("multi", {"ops": [
            {"kind": "sorted_next", "payload": {"list": 0}},
            {"kind": "sorted_next", "payload": {"list": 1}},
            {"kind": "sorted_next", "payload": {"list": 0}},
        ]})
        results = response["results"]
        assert [r["position"] for r in results] == [1, 1, 2]

    def test_multi_matches_sequential_singles(self, columnar):
        ops = [
            {"kind": "sorted_next", "payload": {"list": index}}
            for index in (0, 1, 0, 1)
        ]
        coalesced = _daemon(columnar).handle("multi", {"ops": list(ops)})
        sequential = _daemon(columnar)
        singles = [sequential.handle(op["kind"], op["payload"]) for op in ops]
        assert coalesced["results"] == singles

    def test_reset_without_list_clears_every_node(self, columnar):
        daemon = _daemon(columnar, include_position=True)
        daemon.handle("sorted_next", {"list": 0})
        daemon.handle("sorted_next", {"list": 1})
        daemon.handle("reset", {})
        assert daemon.handle("sorted_next", {"list": 0})["position"] == 1
        assert daemon.handle("sorted_next", {"list": 1})["position"] == 1


class TestMetrics:
    def test_op_counts_per_kind(self, columnar):
        daemon = _daemon(columnar)
        daemon.handle("sorted_next", {"list": 0})
        daemon.handle("multi", {"ops": [
            {"kind": "sorted_next", "payload": {"list": 0}},
            {"kind": "sorted_next", "payload": {"list": 1}},
        ]})
        metrics = daemon.handle("state", {"metrics": True})
        assert metrics["lists"] == [0, 1]
        assert metrics["ops"]["sorted_next"] == 3
        assert metrics["ops"]["multi"] == 1

    def test_latency_quantiles_shape(self, columnar):
        daemon = _daemon(columnar, latency_sample_k=8)
        for _ in range(20):
            daemon.handle("sorted_next", {"list": 0})
        latency = daemon.handle("state", {"metrics": True})["latency"]
        assert latency["count"] == 20
        assert latency["samples"] == 8
        assert 0 < latency["p50_us"] <= latency["p99_us"] <= latency["max_us"]

    def test_metrics_frame_is_not_a_data_op(self, columnar):
        daemon = _daemon(columnar)
        before = dict(daemon.op_counts)
        daemon.handle("state", {"metrics": True})
        assert dict(daemon.op_counts) == before


class TestLatencyReservoir:
    def test_bounded_memory(self):
        reservoir = LatencyReservoir(4)
        for value in range(100):
            reservoir.record(value / 1e6)
        quantiles = reservoir.quantiles()
        assert quantiles["count"] == 100
        assert quantiles["samples"] == 4

    def test_empty_reservoir(self):
        assert LatencyReservoir().quantiles() == {"count": 0, "samples": 0}

    def test_small_counts_keep_everything(self):
        reservoir = LatencyReservoir(DEFAULT_LATENCY_SAMPLE_K)
        reservoir.record(5e-6)
        quantiles = reservoir.quantiles()
        assert quantiles == {
            "count": 1,
            "samples": 1,
            "p50_us": 5.0,
            "p90_us": 5.0,
            "p99_us": 5.0,
            "max_us": 5.0,
        }

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match=">= 1"):
            LatencyReservoir(0)


class TestNodeSelection:
    def test_auto_picks_columnar_for_vectorized_lists(self, columnar):
        node = make_owner_node(
            columnar.lists[0], tracker="bitarray", include_position=False
        )
        assert isinstance(node, ColumnarOwnerNode)

    def test_entry_mode_forces_reference_path(self, columnar):
        node = make_owner_node(
            columnar.lists[0],
            tracker="bitarray",
            include_position=False,
            columnar="entry",
        )
        assert type(node) is ListOwnerNode

    def test_columnar_mode_rejects_scalar_lists(self):
        database = make_generator("uniform").generate(10, 1, seed=1)
        with pytest.raises(ValueError, match="vectorized"):
            make_owner_node(
                database.lists[0],
                tracker="bitarray",
                include_position=False,
                columnar="columnar",
            )

    def test_unknown_mode_rejected(self, columnar):
        with pytest.raises(ValueError, match="columnar mode"):
            make_owner_node(
                columnar.lists[0],
                tracker="bitarray",
                include_position=False,
                columnar="nope",
            )


class TestColumnarNodeEquivalence:
    """The vectorized serving path must mirror the per-entry reference."""

    OPS = (
        ("sorted_block", {"count": 5}),
        ("random_lookup_many", {"items": [3, 7, 11]}),
        ("sorted_next", {}),
        ("direct_step", {"items": [15]}),
        ("direct_block", {"items": [], "count": 4}),
        ("sorted_block", {"count": 100}),
        ("state", {}),
    )

    @pytest.mark.parametrize("include_position", [False, True])
    def test_identical_over_mixed_op_sequence(self, columnar, include_position):
        responses = {}
        for mode in ("entry", "columnar"):
            node = make_owner_node(
                columnar.lists[0],
                tracker="bitarray",
                include_position=include_position,
                columnar=mode,
            )
            responses[mode] = [
                node.handle(kind, dict(payload)) for kind, payload in self.OPS
            ]
        assert responses["entry"] == responses["columnar"]

    def test_unknown_item_failure_is_identical(self, columnar):
        known = columnar.lists[0].entry_at(1).item
        for mode in ("entry", "columnar"):
            node = make_owner_node(
                columnar.lists[0],
                tracker="bitarray",
                include_position=False,
                columnar=mode,
            )
            with pytest.raises(Exception) as excinfo:
                node.handle(
                    "random_lookup_many",
                    {"items": [known, 10**9]},
                )
            assert "10" in str(excinfo.value) or "unknown" in str(
                excinfo.value
            ).lower()
            # The partial tally up to the failure point must match the
            # scalar reference, which charges each access before the
            # lookup: the known item and the failed one both metered.
            state = node.handle("state", {})
            assert state["random"] == 2


class TestQuantilePinnedEdges:
    def test_empty_reservoir_returns_none_not_crash(self):
        reservoir = LatencyReservoir()
        assert reservoir.quantile(0.5) is None
        assert reservoir.quantile(0.0) is None
        assert reservoir.quantile(1.0) is None

    def test_single_sample_is_every_quantile(self):
        reservoir = LatencyReservoir()
        reservoir.record(7e-6)
        for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert reservoir.quantile(fraction) == 7e-6

    def test_quantile_orders_the_sample(self):
        reservoir = LatencyReservoir(8)
        for value in (4e-6, 1e-6, 3e-6, 2e-6):
            reservoir.record(value)
        assert reservoir.quantile(0.0) == 1e-6
        assert reservoir.quantile(1.0) == 4e-6
        assert reservoir.quantile(0.5) == 3e-6

    def test_rejects_out_of_range_fraction(self):
        reservoir = LatencyReservoir()
        reservoir.record(1e-6)
        with pytest.raises(ValueError, match="fraction"):
            reservoir.quantile(1.5)
        with pytest.raises(ValueError, match="fraction"):
            reservoir.quantile(-0.1)


class TestPerListMetrics:
    def test_routed_ops_accumulate_per_list(self, columnar):
        daemon = _daemon(columnar)
        daemon.handle("sorted_next", {"list": 0})
        daemon.handle("sorted_next", {"list": 0})
        daemon.handle("sorted_next", {"list": 1})
        per_list = daemon.metrics()["per_list"]
        assert per_list["0"]["ops"] == 2
        assert per_list["1"]["ops"] == 1
        assert per_list["0"]["seconds"] >= 0.0

    def test_zero_op_lists_still_reported(self, columnar):
        daemon = _daemon(columnar)
        daemon.handle("sorted_next", {"list": 0})
        per_list = daemon.metrics()["per_list"]
        assert per_list["1"] == {"ops": 0, "seconds": 0.0}

    def test_reset_keeps_the_accumulated_mass(self, columnar):
        # A rebalancer reads load across sessions; "reset" is a data-
        # state op, not a metrics wipe.
        daemon = _daemon(columnar)
        daemon.handle("sorted_next", {"list": 0})
        daemon.handle("reset", {})
        assert daemon.metrics()["per_list"]["0"]["ops"] == 1

    def test_multi_frames_attribute_inner_ops(self, columnar):
        daemon = _daemon(columnar)
        daemon.handle("multi", {"ops": [
            {"kind": "sorted_next", "payload": {"list": 0}},
            {"kind": "sorted_next", "payload": {"list": 1}},
        ]})
        per_list = daemon.metrics()["per_list"]
        assert per_list["0"]["ops"] == 1
        assert per_list["1"]["ops"] == 1


class TestFreshDaemonRebalanceSignal:
    """A never-served daemon must yield a zero-mass, guard-friendly
    signal — the input ``cluster stats --suggest-placement`` gates on."""

    def test_fresh_metrics_fold_to_zero_mass_without_crashing(self, columnar):
        from repro.distributed.placement import (
            ClusterPlacement,
            list_masses,
            placement_balance,
        )

        documents = [
            _daemon(columnar, indices=(0, 1)).metrics(),
            _daemon(columnar, indices=(2,)).metrics(),
        ]
        masses = list_masses(documents)
        assert set(masses) == {0, 1, 2}
        assert all(mass == 0.0 for mass in masses.values())
        balance = placement_balance(
            ClusterPlacement.build(3, owners=2), masses
        )
        assert balance["total_mass"] == 0.0
        assert balance["imbalance"] == 1.0  # vacuously balanced, never NaN
