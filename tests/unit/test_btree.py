"""Unit tests for the B+tree substrate."""

import pytest

from repro.btree import BPlusTree


class TestConstruction:
    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert not tree
        assert 1 not in tree
        assert tree.first_cell() is None
        assert list(tree.items()) == []

    def test_min_max_on_empty_raise(self):
        tree = BPlusTree(order=4)
        with pytest.raises(KeyError):
            tree.min_key()
        with pytest.raises(KeyError):
            tree.max_key()


class TestInsertLookup:
    def test_insert_and_get(self):
        tree = BPlusTree(order=4)
        assert tree.insert(5, "five") is True
        assert tree.get(5) == "five"
        assert tree[5] == "five"
        assert 5 in tree

    def test_insert_replaces_value(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "old")
        assert tree.insert(5, "new") is False
        assert tree[5] == "new"
        assert len(tree) == 1

    def test_missing_key_get_returns_default(self):
        tree = BPlusTree(order=4)
        assert tree.get(1) is None
        assert tree.get(1, "fallback") == "fallback"

    def test_missing_key_getitem_raises(self):
        tree = BPlusTree(order=4)
        with pytest.raises(KeyError):
            tree[42]

    def test_many_inserts_split_and_stay_sorted(self):
        tree = BPlusTree(order=4)
        keys = [37, 2, 19, 44, 1, 99, 73, 5, 61, 28, 50, 3, 88, 12]
        for key in keys:
            tree.insert(key, key * 10)
        assert len(tree) == len(keys)
        assert list(tree.keys()) == sorted(keys)
        assert all(tree[key] == key * 10 for key in keys)
        tree.validate()
        assert tree.height() > 1

    def test_setitem_syntax(self):
        tree = BPlusTree(order=4)
        tree[1] = "a"
        assert tree[1] == "a"

    def test_ascending_and_descending_insertion_orders(self):
        for order_of_keys in (range(100), range(99, -1, -1)):
            tree = BPlusTree(order=4)
            for key in order_of_keys:
                tree.insert(key)
            assert list(tree.keys()) == list(range(100))
            tree.validate()

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "fig", "date", "cherry", "banana"]:
            tree.insert(word)
        assert list(tree.keys()) == sorted(
            ["pear", "apple", "fig", "date", "cherry", "banana"]
        )


class TestMinMaxSuccessor:
    def _tree(self):
        tree = BPlusTree(order=4)
        for key in [10, 20, 30, 40, 50, 60, 70]:
            tree.insert(key)
        return tree

    def test_min_max(self):
        tree = self._tree()
        assert tree.min_key() == 10
        assert tree.max_key() == 70

    def test_successor_of_present_key(self):
        assert self._tree().successor(30) == 40

    def test_successor_of_absent_key(self):
        assert self._tree().successor(35) == 40

    def test_successor_below_min(self):
        assert self._tree().successor(-5) == 10

    def test_successor_at_max_raises(self):
        with pytest.raises(KeyError):
            self._tree().successor(70)


class TestLeafCells:
    def test_first_cell_walk_visits_all_keys(self):
        tree = BPlusTree(order=4)
        for key in range(25):
            tree.insert(key)
        cell = tree.first_cell()
        seen = []
        while cell is not None:
            seen.append(cell.element)
            cell = cell.next
        assert seen == list(range(25))

    def test_cell_for_present_and_absent(self):
        tree = BPlusTree(order=4)
        tree.insert(7, "seven")
        cell = tree.cell_for(7)
        assert cell is not None
        assert cell.element == 7
        assert cell.value == "seven"
        assert tree.cell_for(8) is None

    def test_cell_next_is_none_at_end(self):
        tree = BPlusTree(order=4)
        tree.insert(1)
        assert tree.cell_for(1).next is None


class TestRangeIteration:
    def _tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 10):
            tree.insert(key, key)
        return tree

    def test_full_range(self):
        assert [k for k, _v in self._tree().range_items()] == list(range(0, 100, 10))

    def test_bounded_range_inclusive(self):
        keys = [k for k, _v in self._tree().range_items(25, 60)]
        assert keys == [30, 40, 50, 60]

    def test_bounded_range_exclusive_high(self):
        keys = [k for k, _v in self._tree().range_items(25, 60, inclusive=False)]
        assert keys == [30, 40, 50]

    def test_open_low(self):
        keys = [k for k, _v in self._tree().range_items(high=30)]
        assert keys == [0, 10, 20, 30]


class TestDelete:
    def test_delete_missing_returns_false(self):
        tree = BPlusTree(order=4)
        assert tree.delete(1) is False

    def test_delete_present(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "one")
        assert tree.delete(1) is True
        assert 1 not in tree
        assert len(tree) == 0

    def test_delitem_raises_on_missing(self):
        tree = BPlusTree(order=4)
        with pytest.raises(KeyError):
            del tree[9]

    def test_pop_returns_value(self):
        tree = BPlusTree(order=4)
        tree.insert(3, "three")
        assert tree.pop(3) == "three"
        assert tree.pop(3, "gone") == "gone"
        with pytest.raises(KeyError):
            tree.pop(3)

    def test_delete_everything_both_directions(self):
        for reverse in (False, True):
            tree = BPlusTree(order=4)
            keys = list(range(200))
            for key in keys:
                tree.insert(key)
            for key in sorted(keys, reverse=reverse):
                assert tree.delete(key)
                tree.validate()
            assert len(tree) == 0

    def test_delete_triggers_merges_and_borrows(self):
        # Interleaved pattern known to exercise both leaf borrow
        # directions and internal merges at order 4.
        tree = BPlusTree(order=4)
        for key in range(64):
            tree.insert(key)
        for key in range(0, 64, 2):
            assert tree.delete(key)
            tree.validate()
        assert list(tree.keys()) == list(range(1, 64, 2))

    def test_reinsertion_after_delete(self):
        tree = BPlusTree(order=4)
        for key in range(32):
            tree.insert(key, "first")
        for key in range(32):
            tree.delete(key)
        for key in range(32):
            tree.insert(key, "second")
        assert all(tree[key] == "second" for key in range(32))
        tree.validate()
