"""Tests for DynamicSortedList and DynamicDatabase."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import get_algorithm
from repro.algorithms.naive import brute_force_topk
from repro.dynamic import DynamicDatabase, DynamicSortedList
from repro.errors import (
    DuplicateItemError,
    InconsistentListsError,
    InvalidPositionError,
    UnknownItemError,
)
from repro.lists.sorted_list import SortedList
from repro.scoring import SUM


class TestDynamicSortedList:
    @pytest.fixture()
    def lst(self) -> DynamicSortedList:
        return DynamicSortedList(
            [(10, 4.0), (20, 8.0), (30, 6.0), (40, 2.0)], name="dyn"
        )

    def test_matches_static_ordering(self, lst):
        static = SortedList([(10, 4.0), (20, 8.0), (30, 6.0), (40, 2.0)])
        assert lst.items() == static.items()
        assert lst.scores() == static.scores()

    def test_tie_break_matches_static(self):
        pairs = [(3, 5.0), (1, 5.0), (2, 7.0)]
        dynamic = DynamicSortedList(pairs)
        static = SortedList(pairs)
        assert dynamic.items() == static.items()

    def test_entry_at_and_lookup(self, lst):
        assert lst.entry_at(1).item == 20
        assert lst.lookup(30) == (6.0, 2)
        assert lst.position_of(40) == 4

    def test_entry_at_out_of_range(self, lst):
        with pytest.raises(InvalidPositionError):
            lst.entry_at(5)

    def test_lookup_unknown(self, lst):
        with pytest.raises(UnknownItemError):
            lst.lookup(99)

    def test_insert_duplicate_rejected(self, lst):
        with pytest.raises(DuplicateItemError):
            lst.insert(10, 1.0)

    def test_update_moves_item(self, lst):
        lst.update(40, 9.0)
        assert lst.position_of(40) == 1
        assert lst.lookup(40) == (9.0, 1)

    def test_update_to_same_score_is_noop(self, lst):
        lst.update(20, 8.0)
        assert lst.position_of(20) == 1

    def test_update_unknown_raises(self, lst):
        with pytest.raises(UnknownItemError):
            lst.update(99, 1.0)

    def test_remove(self, lst):
        lst.remove(20)
        assert len(lst) == 3
        assert 20 not in lst
        assert lst.entry_at(1).item == 30

    def test_remove_unknown_raises(self, lst):
        with pytest.raises(UnknownItemError):
            lst.remove(99)

    def test_apply_delta(self, lst):
        lst.apply_delta(10, 5.0)  # 4 + 5 = 9 -> top
        assert lst.position_of(10) == 1

    def test_entries_iteration(self, lst):
        entries = list(lst.entries())
        assert [e.position for e in entries] == [1, 2, 3, 4]
        assert [e.item for e in entries] == [20, 30, 10, 40]


@given(
    initial=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 100)),
        min_size=1, max_size=30, unique_by=lambda pair: pair[0],
    ),
    updates=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 100)), max_size=30
    ),
)
@settings(max_examples=50)
def test_dynamic_list_matches_rebuilt_static(initial, updates):
    dynamic = DynamicSortedList((item, float(s)) for item, s in initial)
    model = {item: float(s) for item, s in initial}
    for item, score in updates:
        if item in model:
            dynamic.update(item, float(score))
            model[item] = float(score)
    static = SortedList(model.items())
    assert dynamic.items() == static.items()
    assert dynamic.scores() == static.scores()
    for item in model:
        assert dynamic.lookup(item) == static.lookup(item)


class TestDynamicDatabase:
    @pytest.fixture()
    def database(self) -> DynamicDatabase:
        return DynamicDatabase.from_score_rows(
            [
                [9.0, 7.0, 5.0, 3.0],
                [2.0, 9.0, 6.0, 4.0],
            ]
        )

    def test_read_surface(self, database):
        assert database.m == 2
        assert database.n == 4
        assert database.local_scores(1) == (7.0, 9.0)
        assert database.item_ids == frozenset({0, 1, 2, 3})

    def test_rejects_diverging_lists(self):
        a = DynamicSortedList([(0, 1.0)])
        b = DynamicSortedList([(1, 1.0)])
        with pytest.raises(InconsistentListsError):
            DynamicDatabase([a, b])

    def test_algorithms_run_directly(self, database):
        expected = [e.score for e in brute_force_topk(database, 2, SUM)]
        for name in ("ta", "bpa", "bpa2"):
            result = get_algorithm(name).run(database, 2, SUM)
            assert list(result.scores) == pytest.approx(expected), name

    def test_update_changes_answers(self, database):
        before = get_algorithm("bpa2").run(database, 1, SUM)
        assert before.items[0].item == 1  # 7 + 9 = 16
        database.update_score(0, 3, 20.0)  # item 3: 20 + 4 = 24
        after = get_algorithm("bpa2").run(database, 1, SUM)
        assert after.items[0].item == 3

    def test_insert_item_all_lists(self, database):
        database.insert_item(9, [10.0, 10.0])
        assert database.n == 5
        result = get_algorithm("ta").run(database, 1, SUM)
        assert result.items[0].item == 9

    def test_insert_item_wrong_arity_rolls_back(self, database):
        with pytest.raises(InconsistentListsError):
            database.insert_item(9, [1.0])
        assert database.n == 4

    def test_insert_duplicate_rolls_back(self, database):
        with pytest.raises(DuplicateItemError):
            database.insert_item(0, [1.0, 1.0])
        # Item 0 still has its original scores everywhere.
        assert database.local_scores(0) == (9.0, 2.0)

    def test_remove_item(self, database):
        database.remove_item(1)
        assert database.n == 3
        assert database.item_ids == frozenset({0, 2, 3})

    def test_continuous_agreement_under_updates(self, database):
        rng_updates = [
            (0, 2, 11.0), (1, 0, 8.0), (0, 0, 1.0), (1, 3, 9.5),
        ]
        for list_index, item, score in rng_updates:
            database.update_score(list_index, item, score)
            expected = [e.score for e in brute_force_topk(database, 2, SUM)]
            result = get_algorithm("bpa").run(database, 2, SUM)
            assert list(result.scores) == pytest.approx(expected)


class TestMutationSubscriptions:
    """The mutation stream that drives service epoch invalidation."""

    @pytest.fixture()
    def database(self) -> DynamicDatabase:
        return DynamicDatabase.from_score_rows(
            [[9.0, 7.0, 5.0, 3.0], [2.0, 4.0, 6.0, 8.0]]
        )

    def test_every_mutation_kind_notifies_once(self, database):
        events = []
        database.subscribe(events.append)
        database.update_score(0, 1, 20.0)
        database.apply_delta(1, 2, 0.5)
        database.insert_item(9, [1.0, 1.0])
        database.remove_item(0)
        assert [(e.kind, e.item) for e in events] == [
            ("update_score", 1),
            ("apply_delta", 2),
            ("insert_item", 9),
            ("remove_item", 0),
        ]

    def test_callbacks_fire_after_the_database_is_consistent(self, database):
        observed = []
        database.subscribe(
            lambda event: observed.append(database.local_scores(event.item))
        )
        database.update_score(0, 1, 20.0)
        assert observed == [(20.0, 4.0)]

    def test_score_capture_is_skipped_without_score_watchers(self, database):
        # A subscriber that only counts mutations (with_scores=False)
        # must not trigger the O(m log n) capture: events arrive with
        # None vectors and the database never walks its treaps.
        events = []
        unsubscribe = database.subscribe(events.append, with_scores=False)
        captures = []
        original = DynamicDatabase.local_scores
        DynamicDatabase.local_scores = lambda self, item: (
            captures.append(item) or original(self, item)
        )
        try:
            database.update_score(0, 1, 20.0)
            database.remove_item(0)
        finally:
            DynamicDatabase.local_scores = original
        assert captures == []
        assert [e.new_scores for e in events] == [None, None]
        assert [e.old_scores for e in events] == [None, None]
        # Once a score watcher joins, capture resumes.
        database.subscribe(lambda e: None, with_scores=True)
        database.update_score(0, 1, 21.0)
        assert events[-1].new_scores is not None
        unsubscribe()
        unsubscribe()  # idempotent; watcher accounting must not go negative
        assert database._score_watchers == 1

    def test_events_carry_exact_score_vectors(self, database):
        # The delta cache folds event.new_scores as ground truth, so the
        # derived post-state (single-coordinate swap, no second capture)
        # must be bit-equal to what a fresh lookup reports.
        events = []
        database.subscribe(events.append)
        database.update_score(0, 1, 20.0)
        database.apply_delta(1, 2, 0.5)
        database.insert_item(9, [1.0, 1.5])
        database.remove_item(0)
        update, delta, insert, remove = events
        assert update.old_scores == (7.0, 4.0)
        assert update.new_scores == (20.0, 4.0)
        assert update.list_index == 0
        assert delta.old_scores == (5.0, 6.0)
        assert delta.new_scores == (5.0, 6.5)
        assert delta.new_scores == database.local_scores(2)
        assert insert.old_scores is None
        assert insert.new_scores == (1.0, 1.5)
        assert remove.old_scores == (9.0, 2.0)
        assert remove.new_scores is None

    def test_failed_mutations_do_not_notify(self, database):
        events = []
        database.subscribe(events.append)
        with pytest.raises(InconsistentListsError):
            database.insert_item(9, [1.0])  # wrong arity, rolled back
        with pytest.raises(DuplicateItemError):
            database.insert_item(0, [1.0, 1.0])  # rolled back
        with pytest.raises(UnknownItemError):
            database.update_score(0, 999, 1.0)
        assert events == []

    def test_unsubscribe_is_idempotent(self, database):
        events = []
        unsubscribe = database.subscribe(events.append)
        database.update_score(0, 1, 20.0)
        unsubscribe()
        unsubscribe()  # second call is a no-op
        database.update_score(0, 1, 30.0)
        assert len(events) == 1

    def test_multiple_subscribers_all_fire_in_order(self, database):
        order = []
        database.subscribe(lambda e: order.append("a"))
        database.subscribe(lambda e: order.append("b"))
        database.update_score(0, 1, 20.0)
        assert order == ["a", "b"]


class TestRemoveItemRollback:
    """``remove_item`` must be all-or-nothing (mirrors ``insert_item``)."""

    class _FaultyList(DynamicSortedList):
        """A list whose ``remove`` can be armed to raise."""

        fail_removal_of: object = None

        def remove(self, item):
            if item == self.fail_removal_of:
                raise RuntimeError("injected removal fault")
            super().remove(item)

    @pytest.fixture()
    def faulty_database(self):
        healthy = DynamicSortedList([(0, 9.0), (1, 7.0), (2, 5.0)], name="L1")
        faulty = self._FaultyList([(0, 2.0), (1, 9.0), (2, 6.0)], name="L2")
        return DynamicDatabase([healthy, faulty]), faulty

    def test_failed_removal_rolls_back_earlier_lists(self, faulty_database):
        database, faulty = faulty_database
        before = {item: database.local_scores(item) for item in (0, 1, 2)}
        faulty.fail_removal_of = 1
        with pytest.raises(RuntimeError, match="injected removal fault"):
            database.remove_item(1)
        # The database is unchanged: item 1 is back in *every* list with
        # its original score (the pre-fix code left it dropped from L1).
        assert database.item_ids == frozenset({0, 1, 2})
        for item, scores in before.items():
            assert database.local_scores(item) == scores
        for lst in database.lists:
            assert sorted(lst.items()) == [0, 1, 2]

    def test_failed_removal_does_not_notify(self, faulty_database):
        database, faulty = faulty_database
        events = []
        database.subscribe(events.append)
        faulty.fail_removal_of = 1
        with pytest.raises(RuntimeError):
            database.remove_item(1)
        assert events == []

    def test_rolled_back_removal_keeps_list_order(self, faulty_database):
        database, faulty = faulty_database
        order_before = [lst.items() for lst in database.lists]
        faulty.fail_removal_of = 2
        with pytest.raises(RuntimeError):
            database.remove_item(2)
        assert [lst.items() for lst in database.lists] == order_before
        # A later, healthy removal still works end to end.
        faulty.fail_removal_of = None
        database.remove_item(2)
        assert database.item_ids == frozenset({0, 1})

    def test_remove_unknown_item_changes_nothing(self, faulty_database):
        database, _ = faulty_database
        with pytest.raises(UnknownItemError):
            database.remove_item(99)
        assert database.item_ids == frozenset({0, 1, 2})
