"""QueryPlanner: observed statistics, cost ranking, overfetch, policies."""

from __future__ import annotations

import pytest

from repro.algorithms.base import get_algorithm
from repro.bench.batch import QuerySpec
from repro.columnar import ColumnarDatabase
from repro.datagen import UniformGenerator
from repro.errors import InvalidQueryError
from repro.scoring import MIN, SUM
from repro.service.planner import (
    AUTO_CANDIDATES,
    ListStatistics,
    QueryPlanner,
    ServicePolicy,
)


@pytest.fixture(scope="module")
def columnar() -> ColumnarDatabase:
    return ColumnarDatabase.from_database(
        UniformGenerator().generate(300, 3, seed=5)
    )


@pytest.fixture(scope="module")
def planner(columnar) -> QueryPlanner:
    return QueryPlanner(columnar)


class TestListStatistics:
    def test_stop_estimate_matches_definition(self, columnar):
        stats = ListStatistics(columnar, SUM)
        for k in (1, 5, 20):
            p = stats.ta_stop_estimate(k)
            assert 1 <= p <= columnar.n
            # p is the *first* position where the k-th total meets the
            # threshold: it qualifies, and p-1 (if any) does not.
            assert stats.kth_total(k) >= stats.threshold_at(p)
            if p > 1:
                assert stats.kth_total(k) < stats.threshold_at(p - 1)

    def test_stop_estimate_is_monotone_in_k(self, columnar):
        stats = ListStatistics(columnar, SUM)
        estimates = [stats.ta_stop_estimate(k) for k in (1, 3, 10, 40, 150)]
        assert estimates == sorted(estimates)

    def test_estimate_lower_bounds_the_real_stop_position(self, columnar):
        stats = ListStatistics(columnar, SUM)
        for k in (1, 5, 25):
            measured = get_algorithm("ta").run(columnar, k, SUM).stop_position
            assert stats.ta_stop_estimate(k) <= measured

    def test_validates_arguments(self, columnar):
        stats = ListStatistics(columnar, SUM)
        with pytest.raises(InvalidQueryError):
            stats.kth_total(0)
        with pytest.raises(InvalidQueryError):
            stats.threshold_at(columnar.n + 1)


class TestPlanning:
    def test_auto_resolves_to_a_candidate_with_min_cost(self, planner):
        plan = planner.plan(QuerySpec("auto", k=10), cache_enabled=False)
        assert plan.algorithm in AUTO_CANDIDATES
        assert plan.predicted_costs[plan.algorithm] == min(
            plan.predicted_costs[name] for name in AUTO_CANDIDATES
        )

    def test_explicit_algorithm_is_honored(self, planner):
        plan = planner.plan(QuerySpec("bpa2", k=10), cache_enabled=False)
        assert plan.algorithm == "bpa2"
        assert plan.backend == "kernel"

    def test_non_default_options_fall_back_to_reference(self, planner):
        plan = planner.plan(
            QuerySpec("ta", k=10, options={"memoize": True}),
            cache_enabled=False,
        )
        assert plan.backend == "reference"

    def test_no_random_access_policy_forces_nra(self, columnar):
        planner = QueryPlanner(
            columnar, policy=ServicePolicy(allow_random=False)
        )
        plan = planner.plan(QuerySpec("auto", k=5), cache_enabled=True)
        assert plan.algorithm == "nra"
        # An explicit NRA request is satisfiable; anything needing
        # random access is refused, never silently substituted.
        assert (
            planner.plan(QuerySpec("nra", k=5), cache_enabled=True).algorithm
            == "nra"
        )
        with pytest.raises(InvalidQueryError, match="random access"):
            planner.plan(QuerySpec("bpa2", k=5), cache_enabled=True)

    def test_k_is_clamped_to_the_database(self, planner, columnar):
        plan = planner.plan(QuerySpec("auto", k=10_000), cache_enabled=False)
        assert plan.k_requested == columnar.n
        assert plan.k_fetch == columnar.n
        with pytest.raises(InvalidQueryError):
            planner.plan(QuerySpec("auto", k=0), cache_enabled=False)

    def test_statistics_are_cached_per_scoring(self, planner):
        assert planner.statistics(SUM) is planner.statistics(SUM)
        assert planner.statistics(SUM) is not planner.statistics(MIN)

    def test_plans_are_memoized_per_normalized_spec(self, planner):
        first = planner.plan(QuerySpec("auto", k=4), cache_enabled=True)
        # The service's cache-hit hot path must not re-pay estimation.
        assert planner.plan(QuerySpec("auto", k=4), cache_enabled=True) is first
        assert (
            planner.plan(QuerySpec("auto", k=4), cache_enabled=False)
            is not first
        )


class TestOverfetch:
    def test_bucketing_rounds_up_to_powers_of_two(self, planner):
        assert planner.bucketed_k(1, cache_enabled=True) == 1
        assert planner.bucketed_k(5, cache_enabled=True) == 8
        assert planner.bucketed_k(8, cache_enabled=True) == 8
        assert planner.bucketed_k(9, cache_enabled=True) == 16

    def test_bucketing_is_capped_by_n(self, columnar):
        planner = QueryPlanner(columnar)
        assert planner.bucketed_k(columnar.n, cache_enabled=True) == columnar.n

    def test_no_overfetch_without_cache_or_when_disabled(self, columnar):
        planner = QueryPlanner(columnar)
        assert planner.bucketed_k(5, cache_enabled=False) == 5
        frugal = QueryPlanner(columnar, policy=ServicePolicy(overfetch=False))
        assert frugal.bucketed_k(5, cache_enabled=True) == 5

    def test_plans_expose_the_overfetch(self, planner):
        plan = planner.plan(QuerySpec("bpa2", k=5), cache_enabled=True)
        assert plan.k_requested == 5
        assert plan.k_fetch == 8
        assert plan.overfetched


class TestShardAutoTuning:
    def test_serial_pool_keeps_one_shard(self, planner):
        decision = planner.choose_shard_count(pool="serial", cpus=1)
        assert decision.shards == 1
        assert decision.workers == 1
        # Sharding on one worker only adds work: cost must not decrease.
        assert decision.predicted_costs[1] == min(
            decision.predicted_costs.values()
        )

    def test_parallel_pool_fans_out(self, planner):
        decision = planner.choose_shard_count(pool="process", cpus=8)
        assert decision.shards > 1
        assert decision.workers == 8

    def test_candidates_are_bounded_powers_of_two(self, planner):
        decision = planner.choose_shard_count(
            pool="process", cpus=4, max_shards=6
        )
        assert set(decision.predicted_costs) == {1, 2, 4}

    def test_empty_database_decides_one_shard(self):
        from repro.lists.database import Database

        empty = ColumnarDatabase.from_database(Database.from_score_rows([[]]))
        decision = QueryPlanner(empty).choose_shard_count(pool="process", cpus=4)
        assert decision.shards == 1

    def test_service_exposes_the_decision(self, columnar):
        from repro.service import QueryService

        with QueryService(columnar, shards="auto", pool="serial") as service:
            assert service.shard_decision is not None
            assert service.shards == service.shard_decision.shards == 1
            served = service.submit(QuerySpec("bpa2", k=3))
            assert served.stats.planned_shards == service.shards

    def test_fixed_shards_skip_the_tuner(self, columnar):
        from repro.service import QueryService

        with QueryService(columnar, shards=2, pool="serial") as service:
            assert service.shard_decision is None
            assert service.shards == 2

    def test_invalid_shard_request_rejected(self, columnar):
        from repro.service import QueryService

        with pytest.raises(ValueError, match="positive int or 'auto'"):
            QueryService(columnar, shards=0)


class TestTransportChoice:
    def test_default_policy_plans_local(self, planner):
        plan = planner.plan(QuerySpec("bpa2", k=5), cache_enabled=True)
        assert plan.transport == "local"

    def test_auto_never_pays_for_the_network(self, columnar):
        from repro.types import CostModel

        pricey = CostModel.paper(columnar.n)
        pricey = CostModel(
            sorted_cost=pricey.sorted_cost,
            random_cost=pricey.random_cost,
            message_cost=0.5,
            byte_cost=0.01,
        )
        planner = QueryPlanner(columnar, cost_model=pricey)
        plan = planner.plan(QuerySpec("ta", k=5), cache_enabled=True)
        assert plan.transport == "local"

    def test_forced_network_picks_the_cheaper_protocol(self, columnar):
        from repro.types import CostModel

        model = CostModel(message_cost=1.0, byte_cost=0.001)
        planner = QueryPlanner(
            columnar,
            policy=ServicePolicy(transport="network"),
            cost_model=model,
        )
        plan = planner.plan(QuerySpec("bpa2", k=5), cache_enabled=True)
        # Batch never ships more messages or bytes than per-entry.
        assert plan.transport == "network-batch"
        assert "network" in plan.reason

    def test_network_policy_keeps_local_for_undriven_algorithms(self, columnar):
        planner = QueryPlanner(columnar, policy=ServicePolicy(transport="network"))
        assert (
            planner.plan(QuerySpec("naive", k=2), cache_enabled=True).transport
            == "local"
        )
        # Non-default options have no distributed driver either.
        assert (
            planner.plan(
                QuerySpec("ta", k=2, options={"memoize": True}),
                cache_enabled=True,
            ).transport
            == "local"
        )

    def test_network_transport_serves_identical_answers(self, columnar):
        from repro.service import QueryService

        spec = QuerySpec("bpa", k=6)
        with QueryService(columnar, pool="serial", cache_size=0) as local:
            expected = local.submit(spec)
        with QueryService(
            columnar,
            pool="serial",
            cache_size=0,
            policy=ServicePolicy(transport="network"),
        ) as networked:
            served = networked.submit(spec)
        assert served.item_ids == expected.item_ids
        assert served.scores == expected.scores
        assert served.stats.plan.transport.startswith("network-")
        assert "network" in served.result.extras

    def test_predicted_network_rejects_undriven_algorithm(self, planner):
        with pytest.raises(InvalidQueryError, match="no distributed driver"):
            planner.predicted_network("naive", 5, SUM)

    def test_typod_transport_policy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown transport policy"):
            ServicePolicy(transport="netwok")

    def test_forced_network_with_options_annotates_the_pin(self, columnar):
        planner = QueryPlanner(
            columnar, policy=ServicePolicy(transport="network")
        )
        plan = planner.plan(
            QuerySpec("ta", k=2, options={"memoize": True}), cache_enabled=True
        )
        # The forced network policy cannot apply (drivers run default
        # configs); the override is dropped *visibly*, not silently.
        assert plan.transport == "local"
        assert "options pin the query to the shard pool" in plan.reason


class TestBlockRoundArithmetic:
    def test_partial_final_block_still_costs_a_wave(self, columnar):
        # 3 predicted rounds at width 2 need ceil(3/2) = 2 waves — the
        # old floor division under-billed the partial final block,
        # making wide blocks look free exactly when they waste the most.
        import math

        def batch_messages(width):
            planner = QueryPlanner(
                columnar, policy=ServicePolicy(block_width=width)
            )
            return planner.predicted_network("ta", 5, SUM)["batch"]["messages"]

        tally = QueryPlanner(columnar).predicted_tallies(5, SUM)["ta"]
        rounds = max(1, (tally.sorted + tally.direct) // columnar.m)
        for width in (1, 2, 3, 4, 7, 8, 16):
            waves = max(1, math.ceil(rounds / width))
            assert batch_messages(width) == 4 * columnar.m * waves

    def test_wider_blocks_never_predict_more_messages(self, columnar):
        previous = None
        for width in (1, 2, 4, 8, 16):
            planner = QueryPlanner(
                columnar, policy=ServicePolicy(block_width=width)
            )
            messages = planner.predicted_network("ta", 5, SUM)["batch"][
                "messages"
            ]
            if previous is not None:
                assert messages <= previous
            previous = messages


class TestFeedbackDrivenPlanning:
    def _feedback_planner(self, columnar, **kwargs):
        from repro.service.feedback import PlanFeedback

        feedback = PlanFeedback(**kwargs)
        planner = QueryPlanner(columnar, feedback=feedback)
        return planner, feedback

    def test_exploration_covers_every_candidate(self, columnar):
        planner, feedback = self._feedback_planner(
            columnar, min_samples=1, reelect_every=0
        )
        from repro.service.feedback import plan_signature

        seen = set()
        for _ in range(len(AUTO_CANDIDATES)):
            plan = planner.plan(QuerySpec("auto", k=10), cache_enabled=True)
            seen.add(plan.algorithm)
            feedback.record(
                algorithm=plan.algorithm,
                transport=plan.transport,
                signature=plan_signature(SUM, plan.k_fetch),
                predicted_cost=plan.predicted_costs[plan.algorithm],
                seconds=0.001,
            )
        assert seen == set(AUTO_CANDIDATES)

    def test_memo_survives_until_generation_moves(self, columnar):
        planner, feedback = self._feedback_planner(columnar, min_samples=1)
        spec = QuerySpec("ta", k=10)
        first = planner.plan(spec, cache_enabled=True)
        assert planner.plan(spec, cache_enabled=True) is first
        feedback.invalidate()
        assert planner.plan(spec, cache_enabled=True) is not first

    def test_overfetch_override_rebuckets_k(self, columnar):
        planner = QueryPlanner(columnar)
        assert planner.bucketed_k(5, cache_enabled=True) == 8
        planner.set_overfetch_override(False)
        assert planner.bucketed_k(5, cache_enabled=True) == 5
        planner.set_overfetch_override(None)
        assert planner.bucketed_k(5, cache_enabled=True) == 8

    def test_adaptive_knob_validation(self):
        with pytest.raises(ValueError, match="feedback_blend"):
            ServicePolicy(feedback_blend=2.0)
        with pytest.raises(ValueError, match="feedback_min_samples"):
            ServicePolicy(feedback_min_samples=0)
        with pytest.raises(ValueError, match="feedback_tolerance"):
            ServicePolicy(feedback_tolerance=-1.0)
        with pytest.raises(ValueError, match="drift_window"):
            ServicePolicy(drift_window=1)
        with pytest.raises(ValueError, match="drift_threshold"):
            ServicePolicy(drift_threshold=1.5)
