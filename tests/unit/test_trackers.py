"""Unit + property tests for the best-position trackers (paper §5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.best_position import (
    BitArrayTracker,
    BPlusTreeTracker,
    NaiveTracker,
    make_tracker,
)
from repro.errors import InvalidPositionError

ALL_KINDS = ("naive", "bitarray", "btree")


@pytest.fixture(params=ALL_KINDS)
def tracker_kind(request) -> str:
    return request.param


class TestBasics:
    def test_starts_at_zero(self, tracker_kind):
        tracker = make_tracker(tracker_kind, 10)
        assert tracker.best_position == 0
        assert tracker.seen_count == 0

    def test_mark_position_one_advances(self, tracker_kind):
        tracker = make_tracker(tracker_kind, 10)
        tracker.mark(1)
        assert tracker.best_position == 1

    def test_gap_blocks_advance(self, tracker_kind):
        tracker = make_tracker(tracker_kind, 10)
        tracker.mark(1)
        tracker.mark(3)
        assert tracker.best_position == 1

    def test_filling_gap_jumps_past_prefilled(self, tracker_kind):
        tracker = make_tracker(tracker_kind, 10)
        for position in (3, 4, 5, 1):
            tracker.mark(position)
        assert tracker.best_position == 1
        tracker.mark(2)
        assert tracker.best_position == 5

    def test_duplicate_marks_are_noops(self, tracker_kind):
        tracker = make_tracker(tracker_kind, 10)
        tracker.mark(1)
        tracker.mark(1)
        assert tracker.seen_count == 1
        assert tracker.best_position == 1

    def test_is_seen(self, tracker_kind):
        tracker = make_tracker(tracker_kind, 10)
        tracker.mark(4)
        assert tracker.is_seen(4)
        assert not tracker.is_seen(5)

    def test_full_coverage_reaches_n(self, tracker_kind):
        n = 25
        tracker = make_tracker(tracker_kind, n)
        for position in range(n, 0, -1):
            tracker.mark(position)
        assert tracker.best_position == n
        assert tracker.seen_count == n

    @pytest.mark.parametrize("bad", [0, -3, 11])
    def test_out_of_range_mark_rejected(self, tracker_kind, bad):
        tracker = make_tracker(tracker_kind, 10)
        with pytest.raises(InvalidPositionError):
            tracker.mark(bad)

    def test_paper_example3_positions(self, tracker_kind):
        # P1 = {1, 4, 9} from Example 3 round 1: bp must be 1.
        tracker = make_tracker(tracker_kind, 12)
        for position in (1, 4, 9):
            tracker.mark(position)
        assert tracker.best_position == 1


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_tracker("naive", 5), NaiveTracker)
        assert isinstance(make_tracker("bitarray", 5), BitArrayTracker)
        assert isinstance(make_tracker("btree", 5), BPlusTreeTracker)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_tracker("bloom", 5)


@given(
    marks=st.lists(st.integers(1, 60), max_size=200),
    n=st.just(60),
)
def test_all_trackers_agree_on_random_sequences(marks, n):
    trackers = [make_tracker(kind, n) for kind in ALL_KINDS]
    for position in marks:
        for tracker in trackers:
            tracker.mark(position)
        best = {tracker.best_position for tracker in trackers}
        assert len(best) == 1, f"trackers diverged: {best}"
        counts = {tracker.seen_count for tracker in trackers}
        assert len(counts) == 1


@given(marks=st.lists(st.integers(1, 40), min_size=1, max_size=120))
def test_best_position_matches_definition(marks):
    """bp = largest p such that all of 1..p are marked (paper Section 4)."""
    tracker = make_tracker("bitarray", 40)
    seen: set[int] = set()
    for position in marks:
        tracker.mark(position)
        seen.add(position)
    expected = 0
    while expected + 1 in seen:
        expected += 1
    assert tracker.best_position == expected


@given(marks=st.lists(st.integers(1, 40), min_size=1, max_size=120))
def test_best_position_is_monotone_nondecreasing(marks):
    tracker = make_tracker("btree", 40)
    previous = 0
    for position in marks:
        tracker.mark(position)
        assert tracker.best_position >= previous
        previous = tracker.best_position
