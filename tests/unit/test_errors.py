"""The exception hierarchy contract: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.DatabaseError,
    errors.InconsistentListsError,
    errors.DuplicateItemError,
    errors.UnknownItemError,
    errors.InvalidPositionError,
    errors.ExhaustedListError,
    errors.ScoringError,
    errors.NonMonotonicScoringError,
    errors.InvalidQueryError,
    errors.GenerationError,
    errors.DistributedError,
    errors.ProtocolError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_every_error_is_a_repro_error(error):
    assert issubclass(error, errors.ReproError)


def test_lookup_errors_are_also_stdlib_errors():
    # Callers using KeyError/IndexError idioms keep working.
    assert issubclass(errors.UnknownItemError, KeyError)
    assert issubclass(errors.InvalidPositionError, IndexError)


def test_specialization_chains():
    assert issubclass(errors.DuplicateItemError, errors.DatabaseError)
    assert issubclass(errors.NonMonotonicScoringError, errors.ScoringError)
    assert issubclass(errors.ProtocolError, errors.DistributedError)


def test_catching_base_catches_all():
    for error in ALL_ERRORS:
        with pytest.raises(errors.ReproError):
            raise error("boom")
