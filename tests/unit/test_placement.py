"""Unit tests for list-to-owner placement."""

from __future__ import annotations

import pytest

from repro.distributed.placement import STRATEGIES, ClusterPlacement


class TestBuild:
    def test_default_is_one_owner_per_list(self):
        placement = ClusterPlacement.build(4)
        assert placement.owners == 4
        assert placement.groups == ((0,), (1,), (2,), (3,))
        assert placement.max_group == 1

    @pytest.mark.parametrize("owners", [None, 0])
    def test_none_and_zero_mean_legacy(self, owners):
        assert ClusterPlacement.build(3, owners=owners).owners == 3

    def test_contiguous_balances_adjacent_chunks(self):
        placement = ClusterPlacement.build(5, owners=2)
        assert placement.groups == ((0, 1, 2), (3, 4))
        assert placement.max_group == 3

    def test_striped_round_robins(self):
        placement = ClusterPlacement.build(5, owners=2, strategy="striped")
        assert placement.groups == ((0, 2, 4), (1, 3))

    def test_owners_clamped_to_m(self):
        placement = ClusterPlacement.build(3, owners=10)
        assert placement.owners == 3

    def test_single_owner_hosts_everything(self):
        placement = ClusterPlacement.build(4, owners=1)
        assert placement.groups == ((0, 1, 2, 3),)
        assert placement.owner_of == (0, 0, 0, 0)

    def test_owner_of_inverts_groups(self):
        placement = ClusterPlacement.build(6, owners=4, strategy="striped")
        for index in range(6):
            assert index in placement.groups[placement.owner_of[index]]

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError, match="m must be"):
            ClusterPlacement.build(0, owners=1)

    def test_rejects_negative_owners(self):
        with pytest.raises(ValueError, match="owners must be"):
            ClusterPlacement.build(3, owners=-1)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            ClusterPlacement.build(3, owners=2, strategy="random")

    def test_strategies_tuple_is_exported(self):
        assert STRATEGIES == ("contiguous", "striped")


class TestValidation:
    def test_groups_must_partition_range_m(self):
        with pytest.raises(ValueError, match="partition"):
            ClusterPlacement(m=3, groups=((0, 1),))
        with pytest.raises(ValueError, match="partition"):
            ClusterPlacement(m=3, groups=((0, 1), (1, 2)))

    def test_no_empty_owners(self):
        with pytest.raises(ValueError, match="no lists"):
            ClusterPlacement(m=2, groups=((0, 1), ()))


class TestSerialization:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_dict_roundtrip(self, strategy):
        placement = ClusterPlacement.build(5, owners=2, strategy=strategy)
        assert ClusterPlacement.from_dict(placement.to_dict()) == placement

    def test_to_dict_is_json_plain(self):
        import json

        placement = ClusterPlacement.build(4, owners=3)
        data = json.loads(json.dumps(placement.to_dict()))
        assert ClusterPlacement.from_dict(data) == placement
