"""Unit tests for list-to-owner placement."""

from __future__ import annotations

import pytest

from repro.distributed.placement import (
    STRATEGIES,
    ClusterPlacement,
    list_masses,
    placement_balance,
    rebalance_placement,
)


class TestBuild:
    def test_default_is_one_owner_per_list(self):
        placement = ClusterPlacement.build(4)
        assert placement.owners == 4
        assert placement.groups == ((0,), (1,), (2,), (3,))
        assert placement.max_group == 1

    @pytest.mark.parametrize("owners", [None, 0])
    def test_none_and_zero_mean_legacy(self, owners):
        assert ClusterPlacement.build(3, owners=owners).owners == 3

    def test_contiguous_balances_adjacent_chunks(self):
        placement = ClusterPlacement.build(5, owners=2)
        assert placement.groups == ((0, 1, 2), (3, 4))
        assert placement.max_group == 3

    def test_striped_round_robins(self):
        placement = ClusterPlacement.build(5, owners=2, strategy="striped")
        assert placement.groups == ((0, 2, 4), (1, 3))

    def test_owners_clamped_to_m(self):
        placement = ClusterPlacement.build(3, owners=10)
        assert placement.owners == 3

    def test_single_owner_hosts_everything(self):
        placement = ClusterPlacement.build(4, owners=1)
        assert placement.groups == ((0, 1, 2, 3),)
        assert placement.owner_of == (0, 0, 0, 0)

    def test_owner_of_inverts_groups(self):
        placement = ClusterPlacement.build(6, owners=4, strategy="striped")
        for index in range(6):
            assert index in placement.groups[placement.owner_of[index]]

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError, match="m must be"):
            ClusterPlacement.build(0, owners=1)

    def test_rejects_negative_owners(self):
        with pytest.raises(ValueError, match="owners must be"):
            ClusterPlacement.build(3, owners=-1)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            ClusterPlacement.build(3, owners=2, strategy="random")

    def test_strategies_tuple_is_exported(self):
        assert STRATEGIES == ("contiguous", "striped")


class TestValidation:
    def test_groups_must_partition_range_m(self):
        with pytest.raises(ValueError, match="partition"):
            ClusterPlacement(m=3, groups=((0, 1),))
        with pytest.raises(ValueError, match="partition"):
            ClusterPlacement(m=3, groups=((0, 1), (1, 2)))

    def test_no_empty_owners(self):
        with pytest.raises(ValueError, match="no lists"):
            ClusterPlacement(m=2, groups=((0, 1), ()))


class TestSerialization:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_dict_roundtrip(self, strategy):
        placement = ClusterPlacement.build(5, owners=2, strategy=strategy)
        assert ClusterPlacement.from_dict(placement.to_dict()) == placement

    def test_to_dict_is_json_plain(self):
        import json

        placement = ClusterPlacement.build(4, owners=3)
        data = json.loads(json.dumps(placement.to_dict()))
        assert ClusterPlacement.from_dict(data) == placement


class TestListMasses:
    def test_folds_per_list_seconds_across_documents(self):
        documents = [
            {"lists": [0, 1], "per_list": {
                "0": {"ops": 10, "seconds": 0.5},
                "1": {"ops": 5, "seconds": 0.1},
            }},
            {"lists": [2], "per_list": {"2": {"ops": 3, "seconds": 0.2}}},
        ]
        assert list_masses(documents) == {0: 0.5, 1: 0.1, 2: 0.2}

    def test_zero_op_lists_stay_with_zero_mass(self):
        documents = [{"lists": [0, 1], "per_list": {
            "0": {"ops": 4, "seconds": 0.3},
            "1": {"ops": 0, "seconds": 0.0},
        }}]
        assert list_masses(documents) == {0: 0.3, 1: 0.0}

    def test_timing_free_documents_fall_back_to_op_counts(self):
        documents = [{"lists": [0, 1], "per_list": {
            "0": {"ops": 100, "seconds": 0.0},
            "1": {"ops": 300, "seconds": 0.0},
        }}]
        masses = list_masses(documents)
        assert masses[1] == pytest.approx(3 * masses[0])
        assert masses[0] > 0

    def test_legacy_documents_without_per_list_keep_hosted_set(self):
        assert list_masses([{"lists": [0, 1]}]) == {0: 0.0, 1: 0.0}


class TestRebalancePlacement:
    def test_lpt_splits_hot_lists_apart(self):
        masses = {0: 1.0, 1: 0.9, 2: 0.1, 3: 0.05}
        placement = rebalance_placement(masses, owners=2)
        assert placement.strategy == "rebalanced"
        owner_of = placement.owner_of
        assert owner_of[0] != owner_of[1]  # the two hot lists separate

    def test_document_input_defaults_owners_to_document_count(self):
        documents = [
            {"lists": [0, 1, 2], "per_list": {
                "0": {"ops": 9, "seconds": 0.9},
                "1": {"ops": 1, "seconds": 0.1},
                "2": {"ops": 1, "seconds": 0.1},
            }},
            {"lists": [3], "per_list": {"3": {"ops": 1, "seconds": 0.1}}},
        ]
        placement = rebalance_placement(documents)
        assert placement.owners == 2
        assert placement.m == 4

    def test_zero_signal_degrades_to_count_balanced(self):
        placement = rebalance_placement(
            {index: 0.0 for index in range(6)}, owners=3
        )
        assert [len(group) for group in placement.groups] == [2, 2, 2]

    def test_mass_mapping_requires_explicit_owners(self):
        with pytest.raises(ValueError, match="owners is required"):
            rebalance_placement({0: 1.0, 1: 1.0})

    def test_rejects_gaps_in_list_coverage(self):
        with pytest.raises(ValueError, match="every list"):
            rebalance_placement({0: 1.0, 2: 1.0}, owners=2)

    def test_rejects_empty_stats(self):
        with pytest.raises(ValueError, match="no per-list"):
            rebalance_placement([])

    def test_improves_balance_of_a_skewed_layout(self):
        masses = {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.1, 4: 0.05, 5: 0.05}
        skewed = ClusterPlacement(
            m=6, groups=((0, 1, 2, 3), (4,), (5,)), strategy="contiguous"
        )
        proposal = rebalance_placement(masses, owners=3)
        before = placement_balance(skewed, masses)["imbalance"]
        after = placement_balance(proposal, masses)["imbalance"]
        assert after < before


class TestPlacementBalance:
    def test_perfect_balance_reports_one(self):
        placement = ClusterPlacement.build(4, owners=2)
        balance = placement_balance(placement, {i: 1.0 for i in range(4)})
        assert balance["imbalance"] == 1.0
        assert balance["per_owner_mass"] == [2.0, 2.0]
        assert balance["total_mass"] == 4.0

    def test_zero_mass_collapses_to_one_not_nan(self):
        placement = ClusterPlacement.build(4, owners=2)
        assert placement_balance(placement, {})["imbalance"] == 1.0

    def test_imbalance_is_max_over_mean(self):
        placement = ClusterPlacement.build(4, owners=2)
        balance = placement_balance(
            placement, {0: 3.0, 1: 0.0, 2: 0.5, 3: 0.5}
        )
        assert balance["imbalance"] == pytest.approx(3.0 / 2.0)

    def test_all_zero_masses_report_one_not_nan(self):
        # Regression: a fresh cluster reports every hosted list with
        # mass 0.0 (not a missing mapping) — the ratio must still pin
        # to 1.0 instead of dividing by the zero mean.
        placement = ClusterPlacement.build(4, owners=2)
        balance = placement_balance(placement, {i: 0.0 for i in range(4)})
        assert balance["imbalance"] == 1.0
        assert balance["total_mass"] == 0.0

    def test_single_owner_is_balanced_by_construction(self):
        placement = ClusterPlacement.build(4, owners=1)
        balance = placement_balance(placement, {0: 9.0, 1: 0.0, 2: 1.0})
        assert balance["imbalance"] == 1.0
        assert balance["per_owner_mass"] == [10.0]


class TestFreshClusterGuards:
    """The edge cases ``cluster stats --suggest-placement`` gates on."""

    FRESH_DOCUMENTS = [
        {"per_list": {"0": {"ops": 0, "seconds": 0.0},
                      "1": {"ops": 0, "seconds": 0.0}}},
        {"per_list": {"2": {"ops": 0, "seconds": 0.0},
                      "3": {"ops": 0, "seconds": 0.0}}},
    ]

    def test_fresh_documents_fold_to_zero_total_mass(self):
        # The CLI's "no observed load yet" guard keys off this total:
        # it must come out exactly 0.0, not NaN and not a crash.
        masses = list_masses(self.FRESH_DOCUMENTS)
        assert masses == {0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0}
        current = ClusterPlacement.build(4, owners=2)
        assert placement_balance(current, masses)["total_mass"] == 0.0

    def test_zero_mass_rebalance_degrades_to_count_balance(self):
        # Were the guard bypassed, the LPT fallback still must not
        # strand an owner without lists or propose asymmetric counts.
        proposal = rebalance_placement(self.FRESH_DOCUMENTS)
        assert proposal.owners == 2
        assert sorted(len(group) for group in proposal.groups) == [2, 2]
        assert sorted(i for g in proposal.groups for i in g) == [0, 1, 2, 3]
