"""Unit + property tests for the order-statistic treap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dynamic.treap import OrderStatisticTreap

_keys = st.integers(-300, 300)


class TestBasics:
    def test_empty(self):
        treap = OrderStatisticTreap()
        assert len(treap) == 0
        assert not treap
        assert 5 not in treap
        assert list(treap) == []

    def test_insert_and_contains(self):
        treap = OrderStatisticTreap()
        assert treap.insert(5)
        assert 5 in treap
        assert len(treap) == 1

    def test_duplicate_insert_is_noop(self):
        treap = OrderStatisticTreap()
        treap.insert(5)
        assert not treap.insert(5)
        assert len(treap) == 1

    def test_delete(self):
        treap = OrderStatisticTreap()
        treap.insert(5)
        assert treap.delete(5)
        assert 5 not in treap
        assert not treap.delete(5)

    def test_iteration_is_sorted(self):
        treap = OrderStatisticTreap()
        for key in (7, 1, 9, 3, 5):
            treap.insert(key)
        assert list(treap) == [1, 3, 5, 7, 9]

    def test_tuple_keys(self):
        treap = OrderStatisticTreap()
        treap.insert((-2.0, 1))
        treap.insert((-3.0, 0))
        treap.insert((-2.0, 0))
        assert list(treap) == [(-3.0, 0), (-2.0, 0), (-2.0, 1)]


class TestRankSelect:
    @pytest.fixture()
    def treap(self) -> OrderStatisticTreap:
        treap = OrderStatisticTreap()
        for key in (10, 20, 30, 40, 50):
            treap.insert(key)
        return treap

    def test_rank(self, treap):
        assert treap.rank(10) == 1
        assert treap.rank(30) == 3
        assert treap.rank(50) == 5

    def test_rank_of_missing_raises(self, treap):
        with pytest.raises(KeyError):
            treap.rank(35)

    def test_select(self, treap):
        assert treap.select(1) == 10
        assert treap.select(5) == 50

    @pytest.mark.parametrize("rank", [0, 6, -1])
    def test_select_out_of_range(self, treap, rank):
        with pytest.raises(IndexError):
            treap.select(rank)

    def test_rank_select_roundtrip(self, treap):
        for rank in range(1, 6):
            assert treap.rank(treap.select(rank)) == rank


class TestDeterminism:
    def test_same_inputs_build_same_tree(self):
        a = OrderStatisticTreap()
        b = OrderStatisticTreap()
        for key in range(100):
            a.insert(key)
        for key in reversed(range(100)):
            b.insert(key)
        assert list(a) == list(b)
        a.validate()
        b.validate()

    def test_reasonable_balance(self):
        # With splitmix priorities, 4096 sequential inserts must not
        # degenerate (validated indirectly: rank/select stay fast and
        # validate() passes; depth itself is not part of the API).
        treap = OrderStatisticTreap()
        for key in range(4096):
            treap.insert(key)
        treap.validate()
        assert treap.rank(4095) == 4096


@given(keys=st.lists(_keys))
def test_matches_sorted_set_model(keys):
    treap = OrderStatisticTreap()
    model: set[int] = set()
    for key in keys:
        assert treap.insert(key) == (key not in model)
        model.add(key)
    assert list(treap) == sorted(model)
    treap.validate()


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), _keys), max_size=150
    )
)
def test_mixed_operations_match_model(operations):
    treap = OrderStatisticTreap()
    model: set[int] = set()
    for op, key in operations:
        if op == "insert":
            assert treap.insert(key) == (key not in model)
            model.add(key)
        else:
            assert treap.delete(key) == (key in model)
            model.discard(key)
    assert list(treap) == sorted(model)
    treap.validate()


@given(keys=st.lists(_keys, min_size=1, unique=True))
def test_rank_select_match_model(keys):
    treap = OrderStatisticTreap()
    for key in keys:
        treap.insert(key)
    ordered = sorted(keys)
    for index, key in enumerate(ordered, start=1):
        assert treap.rank(key) == index
        assert treap.select(index) == key
