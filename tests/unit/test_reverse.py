"""Unit coverage of the reverse top-k package (registry, index, engine).

The differential suite drives ``submit_reverse`` end to end against
the per-user brute-force oracle; these tests pin each layer's own
contract — registry versioning, the soundness of the pruning bounds
across every datagen family, and the engine's boundary-cache and
maintenance behavior against synthetic mutation events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.naive import brute_force_topk
from repro.columnar import ColumnarDatabase
from repro.dynamic.database import MutationEvent
from repro.errors import ScoringError, UnknownItemError
from repro.reverse import (
    ReverseTopkEngine,
    UserWeightRegistry,
    brute_force_reverse_topk,
)
from repro.reverse.index import RTopkIndex
from repro.scoring import WeightedSumScoring
from repro.testing import standard_test_databases


class TestRegistry:
    def test_add_get_and_contains(self):
        registry = UserWeightRegistry()
        entry = registry.add("alice", [1.0, 2.0])
        assert "alice" in registry
        assert registry.get("alice") is entry
        assert entry.weights == (1.0, 2.0)
        assert len(registry) == 1

    def test_duplicate_add_is_an_error(self):
        registry = UserWeightRegistry()
        registry.add("alice", [1.0])
        with pytest.raises(ValueError, match="already registered"):
            registry.add("alice", [2.0])

    def test_update_replaces_and_bumps_version(self):
        registry = UserWeightRegistry()
        first = registry.add("alice", [1.0])
        second = registry.update("alice", [2.0])
        assert second.version > first.version
        assert registry.get("alice").weights == (2.0,)

    def test_update_and_remove_of_unknown_users_raise(self):
        registry = UserWeightRegistry()
        with pytest.raises(KeyError):
            registry.update("ghost", [1.0])
        with pytest.raises(KeyError):
            registry.remove("ghost")

    def test_remove_drops_the_user(self):
        registry = UserWeightRegistry()
        registry.add("alice", [1.0])
        registry.remove("alice")
        assert "alice" not in registry
        assert len(registry) == 0

    def test_every_mutation_bumps_the_clock(self):
        registry = UserWeightRegistry()
        versions = [registry.version]
        registry.add("a", [1.0])
        versions.append(registry.version)
        registry.update("a", [2.0])
        versions.append(registry.version)
        registry.remove("a")
        versions.append(registry.version)
        assert versions == sorted(set(versions))

    def test_weights_are_validated_by_scoring(self):
        registry = UserWeightRegistry()
        with pytest.raises(ScoringError):
            registry.add("zero", [0.0, 0.0])
        with pytest.raises(ScoringError):
            registry.add("negative", [1.0, -0.5])

    def test_entries_and_users_are_sorted(self):
        registry = UserWeightRegistry()
        for user in ("cara", "alice", "bob"):
            registry.add(user, [1.0])
        assert registry.users() == ("alice", "bob", "cara")
        assert [e.user for e in registry.entries()] == [
            "alice", "bob", "cara",
        ]
        assert [e.user for e in registry] == ["alice", "bob", "cara"]

    def test_seed_users_is_deterministic_and_valid(self):
        a, b = UserWeightRegistry(), UserWeightRegistry()
        names_a = a.seed_users(5, 3, seed=9)
        names_b = b.seed_users(5, 3, seed=9)
        assert names_a == names_b == a.users()
        for user in names_a:
            weights = a.get(user).weights
            assert weights == b.get(user).weights
            assert len(weights) == 3
            assert all(0.0 < w <= 1.0 for w in weights)

    def test_aligned_matrix_matches_entries(self):
        registry = UserWeightRegistry()
        registry.add("b", [3.0, 4.0])
        registry.add("a", [1.0, 2.0])
        entries, matrix = registry.aligned(2)
        assert matrix.shape == (2, 2)
        assert matrix.tolist() == [[1.0, 2.0], [3.0, 4.0]]
        assert not matrix.flags.writeable
        # Cached until the registry changes.
        assert registry.aligned(2)[1] is matrix
        registry.add("c", [5.0, 6.0])
        assert registry.aligned(2)[1] is not matrix

    def test_aligned_rejects_arity_mismatch(self):
        registry = UserWeightRegistry()
        registry.add("alice", [1.0, 2.0])
        with pytest.raises(ScoringError, match="m=3"):
            registry.aligned(3)


def _columnar(database) -> ColumnarDatabase:
    if isinstance(database, ColumnarDatabase):
        return database
    return ColumnarDatabase.from_database(database)


class TestIndexBounds:
    def test_bounds_bracket_the_kth_score_on_every_family(self):
        rng = np.random.default_rng(31)
        for label, database in standard_test_databases():
            columnar = _columnar(database)
            index = RTopkIndex(columnar)
            m, n = columnar.m, columnar.n
            vectors = [
                tuple(float(w) for w in 1.0 - rng.random(m))
                for _ in range(4)
            ]
            for k in (1, 3, min(10, n)):
                if k > n:
                    continue
                weights = np.array(vectors, dtype=np.float64)
                lower, upper, slack = index.user_bounds(weights, k)
                for row, vector in enumerate(vectors):
                    scoring = WeightedSumScoring(vector)
                    kth = brute_force_topk(database, k, scoring)[-1].score
                    assert lower[row] - slack[row] <= kth, (label, k, vector)
                    assert kth <= upper[row] + slack[row], (label, k, vector)

    def test_decisions_are_sound_on_every_family(self):
        rng = np.random.default_rng(47)
        for label, database in standard_test_databases():
            columnar = _columnar(database)
            index = RTopkIndex(columnar)
            m, n = columnar.m, columnar.n
            weights = np.array(
                [1.0 - rng.random(m) for _ in range(6)], dtype=np.float64
            )
            k = min(5, n)
            memberships = []
            for row in range(weights.shape[0]):
                scoring = WeightedSumScoring(
                    tuple(float(w) for w in weights[row])
                )
                ranked = brute_force_topk(database, k, scoring)
                memberships.append({entry.item for entry in ranked})
            for item in list(columnar.item_ids)[:8]:
                scores = np.asarray(
                    columnar.local_scores(item), dtype=np.float64
                )
                in_mask, out_mask, _ = index.decide(weights, scores, k)
                for row in range(weights.shape[0]):
                    member = item in memberships[row]
                    if in_mask[row]:
                        assert member, (label, item, row)
                    if out_mask[row]:
                        assert not member, (label, item, row)

    def test_k_at_least_n_decides_everyone_in(self):
        _, database = next(iter(standard_test_databases()))
        columnar = _columnar(database)
        index = RTopkIndex(columnar)
        weights = np.array([[1.0] * columnar.m], dtype=np.float64)
        scores = np.asarray(
            columnar.local_scores(next(iter(columnar.item_ids))),
            dtype=np.float64,
        )
        in_mask, out_mask, _ = index.decide(weights, scores, columnar.n)
        assert in_mask.all() and not out_mask.any()

    def test_list_kth_validates_k(self):
        _, database = next(iter(standard_test_databases()))
        index = RTopkIndex(_columnar(database))
        with pytest.raises(ValueError):
            index.list_kth(0)
        with pytest.raises(ValueError):
            index.list_kth(database.n + 1)


def _engine_over(database, **kwargs):
    columnar = _columnar(database)
    registry = UserWeightRegistry()

    def runner(scoring, k):
        return brute_force_topk(columnar, k, scoring)

    engine = ReverseTopkEngine(registry, runner=runner, **kwargs)
    return columnar, registry, engine


class TestEngineQueries:
    def test_matches_the_oracle_on_every_family(self):
        for label, database in standard_test_databases():
            columnar, registry, engine = _engine_over(database)
            registry.seed_users(8, columnar.m, seed=3)
            k = min(4, columnar.n)
            for item in list(columnar.item_ids)[:6]:
                result = engine.query(
                    item, k, database=columnar, token="t0"
                )
                expected = brute_force_reverse_topk(
                    columnar, registry, item, k
                )
                assert result.users == expected, (label, item)

    def test_unknown_item_and_bad_k_raise(self):
        columnar, registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1]
        )
        registry.seed_users(2, columnar.m, seed=1)
        with pytest.raises(UnknownItemError):
            engine.query(10_000, 3, database=columnar, token="t0")
        with pytest.raises(ValueError):
            engine.query(
                next(iter(columnar.item_ids)),
                0,
                database=columnar,
                token="t0",
            )

    def test_empty_registry_answers_empty(self):
        columnar, _registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1]
        )
        result = engine.query(
            next(iter(columnar.item_ids)), 3, database=columnar, token="t0"
        )
        assert result.users == () and len(result) == 0

    def test_repeat_queries_reuse_cached_boundaries(self):
        columnar, registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1]
        )
        registry.seed_users(6, columnar.m, seed=5)
        item = next(iter(columnar.item_ids))
        first = engine.query(item, 3, database=columnar, token="t0")
        again = engine.query(item, 3, database=columnar, token="t0")
        assert first.stats.fallbacks > 0  # the item is genuinely undecided
        assert first.stats.boundary_hits == 0
        assert again.stats.fallbacks == 0
        assert again.stats.boundary_hits == first.stats.fallbacks

    def test_boundary_limit_zero_disables_the_cache(self):
        columnar, registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1], boundary_limit=0
        )
        registry.seed_users(6, columnar.m, seed=5)
        item = next(iter(columnar.item_ids))
        engine.query(item, 3, database=columnar, token="t0")
        assert engine.cached_boundaries == 0
        again = engine.query(item, 3, database=columnar, token="t0")
        assert again.stats.boundary_hits == 0

    def test_boundary_cache_is_lru_bounded(self):
        columnar, registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1], boundary_limit=2
        )
        registry.seed_users(6, columnar.m, seed=5)
        item = next(iter(columnar.item_ids))
        engine.query(item, 3, database=columnar, token="t0")
        assert engine.cached_boundaries <= 2

    def test_uncacheable_queries_neither_read_nor_seed(self):
        columnar, registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1]
        )
        registry.seed_users(4, columnar.m, seed=5)
        item = next(iter(columnar.item_ids))
        stale = engine.query(
            item, 3, database=columnar, token="t0", cacheable=False
        )
        assert engine.cached_boundaries == 0
        assert stale.stats.boundary_hits == 0
        # A later cacheable query starts cold.
        fresh = engine.query(item, 3, database=columnar, token="t0")
        assert fresh.stats.boundary_hits == 0


class TestEngineMaintenance:
    def _warm(self):
        columnar, registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1]
        )
        registry.seed_users(4, columnar.m, seed=5)
        item = next(iter(columnar.item_ids))
        engine.query(item, 3, database=columnar, token="t0")
        assert engine.cached_boundaries > 0
        return columnar, engine

    def test_harmless_update_keeps_every_entry(self):
        columnar, engine = self._warm()
        cached = engine.cached_boundaries
        low = [min(lst.scores_array) - 100.0 for lst in columnar.lists]
        engine.on_mutation(
            MutationEvent(
                kind="update_score", item=-1, new_scores=tuple(low)
            )
        )
        assert engine.cached_boundaries == cached
        assert engine.counters.maintenance_unchanged == cached

    def test_boundary_breaking_update_drops_or_patches(self):
        columnar, engine = self._warm()
        high = [max(lst.scores_array) + 100.0 for lst in columnar.lists]
        engine.on_mutation(
            MutationEvent(
                kind="update_score", item=-1, new_scores=tuple(high)
            )
        )
        counters = engine.counters
        assert counters.maintenance_patched + counters.maintenance_dropped > 0

    def test_capture_less_event_flushes_everything(self):
        _columnar_db, engine = self._warm()
        engine.on_mutation(
            MutationEvent(kind="update_score", item=0, new_scores=None)
        )
        assert engine.cached_boundaries == 0
        assert engine.counters.flushes == 1

    def test_removal_event_with_no_scores_is_classified(self):
        _columnar_db, engine = self._warm()
        # new_scores is None *means* removed for remove_item events —
        # not "capture off" — so this must classify, not flush.
        engine.on_mutation(
            MutationEvent(kind="remove_item", item=-1, new_scores=None)
        )
        assert engine.counters.flushes == 0

    def test_flush_on_empty_cache_is_cheap_noop_for_events(self):
        columnar, registry, engine = _engine_over(
            next(iter(standard_test_databases()))[1]
        )
        engine.on_mutation(
            MutationEvent(kind="update_score", item=0, new_scores=None)
        )
        assert engine.counters.flushes == 0  # nothing cached, nothing done
