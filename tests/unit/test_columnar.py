"""Unit coverage for the columnar storage layer and its fast paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import ColumnarDatabase, ColumnarList
from repro.errors import (
    DuplicateItemError,
    InconsistentListsError,
    InvalidPositionError,
    UnknownItemError,
)
from repro.lists.accessor import (
    DatabaseAccessor,
    DatabaseLike,
    ListAccessor,
    SortedListLike,
)
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList
from repro.scoring import SUM


@pytest.fixture()
def pair():
    """The same 3-list database on both backends."""
    rows = [
        [9.0, 7.0, 5.0, 3.0, 1.0, 8.0],
        [2.0, 9.0, 6.0, 4.0, 8.0, 1.0],
        [5.0, 3.0, 9.0, 8.0, 2.0, 6.0],
    ]
    return Database.from_score_rows(rows), ColumnarDatabase.from_score_rows(rows)


class TestColumnarList:
    def test_satisfies_the_source_protocol(self):
        columnar = ColumnarList.from_scores([3.0, 1.0, 2.0])
        assert isinstance(columnar, SortedListLike)

    def test_scalar_primitives_match_sorted_list(self):
        entries = [(5, 2.5), (2, 7.0), (9, 2.5), (0, 0.0)]
        python_list = SortedList(entries, name="L")
        columnar = ColumnarList(entries, name="L")
        assert len(columnar) == len(python_list)
        for position in range(1, len(python_list) + 1):
            assert columnar.entry_at(position) == python_list.entry_at(position)
            assert columnar.score_at(position) == python_list.score_at(position)
            assert columnar.item_at(position) == python_list.item_at(position)
        for item, _score in entries:
            assert columnar.lookup(item) == python_list.lookup(item)
            assert columnar.position_of(item) == python_list.position_of(item)
            assert item in columnar

    def test_scalar_access_returns_python_types(self):
        columnar = ColumnarList.from_scores([1.5, 0.5])
        entry = columnar.entry_at(1)
        assert type(entry.item) is int and type(entry.score) is float
        score, position = columnar.lookup(1)
        assert type(score) is float and type(position) is int

    def test_rejects_duplicate_items(self):
        with pytest.raises(DuplicateItemError):
            ColumnarList([(1, 0.5), (1, 0.7)])

    def test_position_bounds(self):
        columnar = ColumnarList.from_scores([1.0, 2.0])
        with pytest.raises(InvalidPositionError):
            columnar.entry_at(0)
        with pytest.raises(InvalidPositionError):
            columnar.entry_at(3)

    def test_unknown_items(self):
        columnar = ColumnarList.from_scores([1.0, 2.0])
        with pytest.raises(UnknownItemError):
            columnar.lookup(7)
        assert 7 not in columnar
        sparse = ColumnarList([(10, 1.0), (20, 2.0)])
        with pytest.raises(UnknownItemError):
            sparse.position_of(15)

    def test_numpy_integer_ids_work_on_dense_and_sparse_lists(self):
        dense = ColumnarList.from_scores([1.0, 3.0, 2.0])
        sparse = ColumnarList([(10, 1.0), (20, 2.0)])
        for columnar in (dense, sparse):
            for item in columnar.uids_array:  # yields np.int64
                assert columnar.lookup(item) == columnar.lookup(int(item))
                assert item in columnar

    def test_sparse_ids(self):
        sparse = ColumnarList([(100, 1.0), (7, 3.0), (55, 2.0)])
        assert not sparse.dense_ids
        assert sparse.items() == (7, 55, 100)
        assert sparse.position_of(7) == 1
        assert sparse.lookup(100) == (1.0, 3)

    def test_lookup_many_matches_scalar_lookups(self):
        columnar = ColumnarList([(3, 1.0), (1, 4.0), (4, 1.0), (5, 9.0)])
        items = np.array([5, 3, 1])
        scores, positions = columnar.lookup_many(items)
        for item, score, position in zip(items, scores, positions):
            assert (float(score), int(position)) == columnar.lookup(int(item))

    def test_lookup_many_rejects_unknown(self):
        columnar = ColumnarList.from_scores([1.0, 2.0, 3.0])
        with pytest.raises(UnknownItemError):
            columnar.lookup_many(np.array([0, 5]))

    def test_block_prefetch(self):
        columnar = ColumnarList.from_scores([float(i) for i in range(10)])
        positions, items, scores = columnar.block(3, 4)
        assert positions.tolist() == [3, 4, 5, 6]
        for position, item, score in zip(positions, items, scores):
            entry = columnar.entry_at(int(position))
            assert (entry.item, entry.score) == (int(item), float(score))
        # clipped at the end of the list
        positions, _items, _scores = columnar.block(9, 10)
        assert positions.tolist() == [9, 10]
        with pytest.raises(InvalidPositionError):
            columnar.block(0, 1)

    def test_array_views_are_read_only(self):
        columnar = ColumnarList.from_scores([1.0, 2.0])
        with pytest.raises(ValueError):
            columnar.scores_array[0] = 99.0
        with pytest.raises(ValueError):
            columnar.items_array[0] = 99


class TestColumnarDatabase:
    def test_satisfies_the_database_protocol(self, pair):
        _python, columnar = pair
        assert isinstance(columnar, DatabaseLike)

    def test_mirrors_database_introspection(self, pair):
        python, columnar = pair
        assert (columnar.m, columnar.n) == (python.m, python.n)
        assert columnar.item_ids == python.item_ids
        assert list(columnar.iter_items()) == list(python.iter_items())
        assert len(columnar) == len(python)
        assert columnar[0].items() == python[0].items()

    def test_rejects_mismatched_item_sets(self):
        with pytest.raises(InconsistentListsError):
            ColumnarDatabase(
                [
                    ColumnarList([(0, 1.0), (1, 2.0)]),
                    ColumnarList([(0, 1.0), (2, 2.0)]),
                ]
            )
        with pytest.raises(InconsistentListsError):
            ColumnarDatabase([])

    def test_score_matrix_is_by_ascending_item_id(self, pair):
        python, columnar = pair
        matrix = columnar.score_matrix()
        for row, item in enumerate(sorted(columnar.item_ids)):
            assert tuple(matrix[:, row]) == python.local_scores(item)

    def test_position_matrix_matches_positions(self, pair):
        python, columnar = pair
        matrix = columnar.position_matrix()
        for row, item in enumerate(sorted(columnar.item_ids)):
            assert tuple(matrix[:, row] + 1) == python.positions(item)

    def test_overall_scores_use_the_exact_callable(self, pair):
        _python, columnar = pair
        calls = []

        class Probe:
            name = "probe"

            def __call__(self, scores):
                calls.append(list(scores))
                return sum(scores)

        totals = columnar.overall_scores(Probe())
        assert len(totals) == columnar.n
        assert len(calls) == columnar.n
        # argument order is list order
        assert calls[0] == list(columnar.local_scores(0))

    def test_labels_round_trip(self):
        rows = [[1.0, 2.0]]
        columnar = ColumnarDatabase.from_score_rows(rows, labels={0: "zero"})
        assert columnar.label(0) == "zero"
        assert columnar.label(1) == "item 1"
        assert columnar.to_database().label(0) == "zero"

    def test_from_ranked_lists(self):
        columnar = ColumnarDatabase.from_ranked_lists(
            [[(1, 9.0), (0, 1.0)], [(0, 5.0), (1, 4.0)]]
        )
        assert columnar.positions(1) == (1, 2)


class TestMeteredBatchAccess:
    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_lookup_many_counts_every_item(self, pair, backend):
        database = pair[0] if backend == "python" else pair[1]
        accessor = ListAccessor(database.lists[0])
        scores, positions = accessor.lookup_many([0, 3, 5])
        assert accessor.tally.random == 3
        for item, score, position in zip([0, 3, 5], scores, positions):
            assert (float(score), int(position)) == database.lists[0].lookup(item)

    @pytest.mark.parametrize("backend", ["python", "columnar"])
    def test_sorted_block_counts_and_advances(self, pair, backend):
        database = pair[0] if backend == "python" else pair[1]
        accessor = ListAccessor(database.lists[0])
        first = accessor.sorted_next()
        entries = accessor.sorted_block(3)
        assert [e.position for e in entries] == [2, 3, 4]
        assert accessor.tally.sorted == 4
        assert accessor.last_sorted_position == 4
        # a block past the end is truncated, then empty
        tail = accessor.sorted_block(10)
        assert [e.position for e in tail] == [5, 6]
        assert accessor.sorted_block(5) == []
        assert accessor.exhausted
        # entries equal the scalar path's
        scalar = ListAccessor(database.lists[0])
        expected = [scalar.sorted_next() for _ in range(6)]
        assert [first] + entries + tail == expected
        with pytest.raises(ValueError):
            accessor.sorted_block(-1)

    def test_database_accessor_wraps_columnar(self, pair):
        _python, columnar = pair
        accessor = DatabaseAccessor(columnar)
        assert accessor.m == columnar.m
        assert accessor.n == columnar.n
        entry = accessor[0].sorted_next()
        assert entry.position == 1
        assert accessor.total_tally().sorted == 1


class TestKernelInputValidation:
    def test_kernels_validate_k_like_run(self, pair):
        from repro.columnar import fast_bpa, fast_bpa2, fast_ta
        from repro.errors import InvalidQueryError

        _python, columnar = pair
        for kernel in (fast_ta, fast_bpa, fast_bpa2):
            with pytest.raises(InvalidQueryError):
                kernel(columnar, 0, SUM)
            with pytest.raises(InvalidQueryError):
                kernel(columnar, columnar.n + 1, SUM)
