"""Unit tests for :class:`repro.lists.sorted_list.SortedList`."""

import pytest

from repro.errors import (
    DuplicateItemError,
    InvalidPositionError,
    UnknownItemError,
)
from repro.lists.sorted_list import SortedList


@pytest.fixture(params=["dict", "btree"])
def index_kind(request) -> str:
    return request.param


class TestConstruction:
    def test_sorts_descending_by_score(self, index_kind):
        lst = SortedList([(0, 1.0), (1, 3.0), (2, 2.0)], index_kind=index_kind)
        assert lst.items() == (1, 2, 0)
        assert lst.scores() == (3.0, 2.0, 1.0)

    def test_ties_break_by_ascending_item_id(self, index_kind):
        lst = SortedList([(3, 5.0), (1, 5.0), (2, 5.0)], index_kind=index_kind)
        assert lst.items() == (1, 2, 3)

    def test_duplicate_item_rejected(self):
        with pytest.raises(DuplicateItemError):
            SortedList([(1, 2.0), (1, 3.0)])

    def test_from_scores_uses_index_as_item_id(self):
        lst = SortedList.from_scores([5.0, 9.0, 7.0])
        assert lst.items() == (1, 2, 0)

    def test_unknown_index_kind_rejected(self):
        with pytest.raises(ValueError):
            SortedList([(0, 1.0)], index_kind="hashmap")

    def test_empty_list_is_allowed(self):
        lst = SortedList([])
        assert len(lst) == 0

    def test_name_is_kept(self):
        assert SortedList([(0, 1.0)], name="L7").name == "L7"


class TestAccessPrimitives:
    @pytest.fixture()
    def lst(self, index_kind) -> SortedList:
        return SortedList(
            [(10, 4.0), (20, 8.0), (30, 6.0), (40, 2.0)], index_kind=index_kind
        )

    def test_entry_at_positions_are_one_based(self, lst):
        assert lst.entry_at(1).item == 20
        assert lst.entry_at(4).item == 40

    def test_entry_at_returns_position_item_score(self, lst):
        entry = lst.entry_at(2)
        assert (entry.position, entry.item, entry.score) == (2, 30, 6.0)

    @pytest.mark.parametrize("position", [0, -1, 5])
    def test_entry_at_out_of_range(self, lst, position):
        with pytest.raises(InvalidPositionError):
            lst.entry_at(position)

    def test_score_and_item_at(self, lst):
        assert lst.score_at(3) == 4.0
        assert lst.item_at(3) == 10

    def test_position_of(self, lst):
        assert lst.position_of(20) == 1
        assert lst.position_of(40) == 4

    def test_position_of_unknown_item(self, lst):
        with pytest.raises(UnknownItemError):
            lst.position_of(999)

    def test_lookup_returns_score_and_position(self, lst):
        assert lst.lookup(30) == (6.0, 2)

    def test_contains(self, lst):
        assert 10 in lst
        assert 99 not in lst

    def test_entries_iterates_in_rank_order(self, lst):
        entries = list(lst.entries())
        assert [e.position for e in entries] == [1, 2, 3, 4]
        assert [e.item for e in entries] == [20, 30, 10, 40]
        assert [e.score for e in entries] == [8.0, 6.0, 4.0, 2.0]


class TestIndexKindsAgree:
    def test_dict_and_btree_indexes_agree(self):
        pairs = [(i * 3 % 41, float((i * 7) % 23)) for i in range(41)]
        dict_list = SortedList(pairs, index_kind="dict")
        btree_list = SortedList(pairs, index_kind="btree")
        assert dict_list.items() == btree_list.items()
        for item, _score in pairs:
            assert dict_list.lookup(item) == btree_list.lookup(item)
        assert dict_list.index_kind == "dict"
        assert btree_list.index_kind == "btree"
