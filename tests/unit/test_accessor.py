"""Unit tests for the metered accessors."""

import pytest

from repro.errors import ExhaustedListError
from repro.lists.accessor import DatabaseAccessor, ListAccessor
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList
from repro.types import AccessTally


@pytest.fixture()
def accessor() -> ListAccessor:
    return ListAccessor(SortedList([(0, 3.0), (1, 2.0), (2, 1.0)], name="L1"))


class TestListAccessor:
    def test_sorted_next_walks_in_rank_order(self, accessor):
        assert accessor.sorted_next().item == 0
        assert accessor.sorted_next().item == 1
        assert accessor.sorted_next().item == 2

    def test_sorted_next_counts(self, accessor):
        accessor.sorted_next()
        accessor.sorted_next()
        assert accessor.tally == AccessTally(sorted=2)

    def test_cursor_tracks_last_position(self, accessor):
        assert accessor.last_sorted_position == 0
        accessor.sorted_next()
        assert accessor.last_sorted_position == 1

    def test_exhaustion_raises(self, accessor):
        for _ in range(3):
            accessor.sorted_next()
        assert accessor.exhausted
        with pytest.raises(ExhaustedListError):
            accessor.sorted_next()

    def test_random_lookup_counts_and_returns(self, accessor):
        assert accessor.random_lookup(2) == (1.0, 3)
        assert accessor.tally == AccessTally(random=1)

    def test_direct_at_counts_and_returns(self, accessor):
        entry = accessor.direct_at(2)
        assert (entry.item, entry.score) == (1, 2.0)
        assert accessor.tally == AccessTally(direct=1)

    def test_direct_does_not_move_sorted_cursor(self, accessor):
        accessor.direct_at(3)
        assert accessor.last_sorted_position == 0
        assert accessor.sorted_next().position == 1

    def test_reset(self, accessor):
        accessor.sorted_next()
        accessor.random_lookup(0)
        accessor.reset()
        assert accessor.tally.total == 0
        assert accessor.last_sorted_position == 0
        assert accessor.sorted_next().position == 1

    def test_len_and_source(self, accessor):
        assert len(accessor) == 3
        assert accessor.source.name == "L1"


class TestDatabaseAccessor:
    @pytest.fixture()
    def database(self) -> Database:
        return Database.from_score_rows([[1.0, 2.0], [2.0, 1.0], [1.5, 0.5]])

    def test_one_accessor_per_list(self, database):
        accessor = DatabaseAccessor(database)
        assert accessor.m == 3
        assert accessor.n == 2
        assert len(list(accessor)) == 3

    def test_total_tally_sums_lists(self, database):
        accessor = DatabaseAccessor(database)
        accessor[0].sorted_next()
        accessor[1].random_lookup(0)
        accessor[2].direct_at(1)
        assert accessor.total_tally() == AccessTally(sorted=1, random=1, direct=1)

    def test_reset_clears_all(self, database):
        accessor = DatabaseAccessor(database)
        for list_accessor in accessor:
            list_accessor.sorted_next()
        accessor.reset()
        assert accessor.total_tally().total == 0
