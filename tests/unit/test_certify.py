"""Unit coverage of the shared k-th-entry certificate (exec.certify).

The cache suite exercises classify/patch end-to-end through a live
service; these tests pin the primitive's contract directly — every
verdict branch, the fold semantics, and the exhaustive mode standing
subscriptions rely on (the cache never passes it).
"""

from __future__ import annotations

import pytest

from repro.dynamic.database import MutationEvent
from repro.exec import certify
from repro.exec.merge import entry_key
from repro.scoring import SUM
from repro.types import ScoredItem


def event(item, new_scores, kind="update_score"):
    return MutationEvent(kind=kind, item=item, new_scores=new_scores)


def entries_of(*pairs):
    return tuple(ScoredItem(item=i, score=s) for i, s in pairs)


def members_of(entries):
    return {e.item: e.score for e in entries}


#: A full top-3 answer over sum scoring: 1 > 2 > 3, boundary at item 3.
TOP = entries_of((1, 3.0), (2, 2.0), (3, 1.0))
BOUNDARY = entry_key(TOP[-1])


# ---------------------------------------------------------------------------
# fold_events
# ---------------------------------------------------------------------------


class TestFoldEvents:
    def test_empty_window_folds_to_nothing(self):
        assert certify.fold_events(()) == {}

    def test_last_state_wins(self):
        window = (
            event(7, (0.1, 0.1)),
            event(7, (0.9, 0.9)),
            event(8, (0.5, 0.5)),
        )
        assert certify.fold_events(window) == {
            7: (0.9, 0.9),
            8: (0.5, 0.5),
        }

    def test_insert_then_remove_folds_to_absent(self):
        window = (
            event(7, (0.9, 0.9), kind="insert_item"),
            event(7, None, kind="remove_item"),
        )
        assert certify.fold_events(window) == {7: None}


# ---------------------------------------------------------------------------
# classify_delta
# ---------------------------------------------------------------------------


class TestClassifyDelta:
    def classify(self, events, *, boundary=BOUNDARY, members=None,
                 patch_limit=8, exhaustive=False):
        return certify.classify_delta(
            members if members is not None else members_of(TOP),
            boundary,
            events,
            SUM,
            patch_limit=patch_limit,
            exhaustive=exhaustive,
        )

    def test_empty_window_is_unchanged(self):
        assert self.classify(()) == (certify.UNCHANGED, ())

    def test_outsider_beyond_boundary_is_unchanged(self):
        # aggregate 0.4 < boundary score 1.0: provably cannot enter.
        assert self.classify((event(9, (0.2, 0.2)),)) == (
            certify.UNCHANGED,
            (),
        )

    def test_outsider_tied_with_boundary_loses_on_id(self):
        # aggregate exactly 1.0, id 9 > boundary id 3: still excluded.
        verdict, touched = self.classify((event(9, (0.5, 0.5)),))
        assert verdict == certify.UNCHANGED
        assert touched == ()

    def test_outsider_tied_with_boundary_wins_on_id(self):
        # aggregate 1.0, id 0 < 3: enters by the tie-break, so PATCH.
        verdict, touched = self.classify((event(0, (0.5, 0.5)),))
        assert verdict == certify.PATCH
        assert touched == (0,)

    def test_outsider_inside_boundary_is_patchable(self):
        verdict, touched = self.classify((event(9, (1.0, 1.0)),))
        assert verdict == certify.PATCH
        assert touched == (9,)

    def test_member_with_unchanged_aggregate_is_unchanged(self):
        # Local scores moved but the SUM aggregate is bit-equal.
        assert self.classify((event(2, (1.5, 0.5)),)) == (
            certify.UNCHANGED,
            (),
        )

    def test_member_with_changed_aggregate_is_patchable(self):
        verdict, touched = self.classify((event(2, (2.0, 1.5)),))
        assert verdict == certify.PATCH
        assert touched == (2,)

    def test_deleted_non_member_is_unchanged(self):
        assert self.classify((event(9, None, kind="remove_item"),)) == (
            certify.UNCHANGED,
            (),
        )

    def test_deleted_member_recomputes_without_exhaustive(self):
        # The vacated slot's heir is some unlogged outsider.
        assert self.classify((event(2, None, kind="remove_item"),)) == (
            certify.RECOMPUTE,
            (),
        )

    def test_deleted_member_patches_in_exhaustive_mode(self):
        verdict, touched = self.classify(
            (event(2, None, kind="remove_item"),), exhaustive=True
        )
        assert verdict == certify.PATCH
        assert touched == (2,)

    def test_no_boundary_recomputes_on_any_outsider(self):
        # An underfull cache entry has no exclusion boundary.
        assert self.classify(
            (event(9, (0.0, 0.0)),), boundary=None
        ) == (certify.RECOMPUTE, ())

    def test_no_boundary_is_fine_in_exhaustive_mode(self):
        # The answer holds *every* item: an insert always just enters.
        verdict, touched = self.classify(
            (event(9, (0.0, 0.0)),), boundary=None, exhaustive=True
        )
        assert verdict == certify.PATCH
        assert touched == (9,)

    def test_patch_limit_overflow_recomputes(self):
        window = tuple(event(100 + i, (1.0, 1.0)) for i in range(3))
        verdict, touched = self.classify(window, patch_limit=2)
        assert verdict == certify.RECOMPUTE
        assert touched == ()
        # One fewer touched item and the same window patches.
        verdict, touched = self.classify(window[:2], patch_limit=2)
        assert verdict == certify.PATCH

    def test_fold_neutralizes_roundtrip_mutations(self):
        # A member wanders and comes home: the folded final state is
        # bit-equal to the cached aggregate, so nothing was touched.
        window = (event(2, (9.0, 9.0)), event(2, (1.0, 1.0)))
        assert self.classify(window) == (certify.UNCHANGED, ())


# ---------------------------------------------------------------------------
# patch_entries
# ---------------------------------------------------------------------------


class TestPatchEntries:
    def patch(self, touched, fresh, *, entries=TOP, boundary=BOUNDARY,
              k=3, exhaustive=False):
        calls = []

        def rescore(items):
            calls.append(tuple(items))
            return fresh

        merged = certify.patch_entries(
            entries, touched, boundary, SUM, rescore,
            k=k, exhaustive=exhaustive,
        )
        assert calls == [tuple(touched)]
        return merged

    def test_member_rescore_keeps_order(self):
        merged = self.patch((2,), {2: (1.2, 1.0)})
        assert merged == entries_of((1, 3.0), (2, 2.2), (3, 1.0))

    def test_member_rescore_reorders(self):
        merged = self.patch((2,), {2: (2.0, 2.0)})
        assert merged == entries_of((2, 4.0), (1, 3.0), (3, 1.0))

    def test_outsider_enters_and_boundary_strengthens(self):
        merged = self.patch((9,), {9: (1.0, 0.5)})
        # item 9 at 1.5 displaces item 3; new boundary (1.5) dominates.
        assert merged == entries_of((1, 3.0), (2, 2.0), (9, 1.5))

    def test_weakened_boundary_is_rejected(self):
        # The boundary member drops to 0.5: every untouched outsider
        # between 0.5 and 1.0 could now deserve its slot.
        assert self.patch((3,), {3: (0.25, 0.25)}) is None

    def test_boundary_tie_by_id_is_kept(self):
        # Item 2 drops into a score tie with the boundary member; ids
        # break the tie (2 before 3), the k-th key is *equal* to the
        # old boundary — not weaker — so the patch is kept.
        merged = self.patch((2,), {2: (0.5, 0.5)})
        assert merged == entries_of((1, 3.0), (2, 1.0), (3, 1.0))

    def test_vanished_touched_item_is_unsafe(self):
        # rescore says the item no longer exists: state raced the
        # delta, never serve a guess.
        assert self.patch((2,), {2: None}) is None
        assert self.patch((2,), {}) is None

    def test_vanished_touched_item_drops_in_exhaustive_mode(self):
        merged = self.patch(
            (2,), {2: None}, boundary=None, exhaustive=True
        )
        assert merged == entries_of((1, 3.0), (3, 1.0))

    def test_underfull_pool_is_unsafe(self):
        # k=4 but only 3 live entries: the missing slot's occupant is
        # unknown to the delta.
        assert self.patch((2,), {2: (1.0, 1.0)}, k=4) is None

    def test_exhaustive_pool_truncates_to_k(self):
        # Exhaustive answers may exceed k mid-patch (an insert while
        # underfull); the merge keeps the best k with no boundary check.
        entries = entries_of((1, 3.0), (2, 2.0))
        merged = self.patch(
            (9,), {9: (2.5, 2.5)},
            entries=entries, boundary=None, k=2, exhaustive=True,
        )
        assert merged == entries_of((9, 5.0), (1, 3.0))

    def test_patch_limit_validation_lives_in_classify(self):
        # patch_entries trusts its caller: classify_delta is the gate.
        with pytest.raises(TypeError):
            certify.patch_entries(TOP, (2,), BOUNDARY, SUM)  # missing k
