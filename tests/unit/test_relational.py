"""Tests for the relational top-k layer."""

import pytest

from repro.errors import InvalidQueryError
from repro.relational import Table
from repro.relational.table import SchemaError


@pytest.fixture()
def table() -> Table:
    return Table(
        "restaurants",
        {
            "food": [4.0, 2.0, 5.0, 3.0],
            "service": [3.0, 5.0, 4.0, 2.0],
            "price": [30.0, 10.0, 50.0, 20.0],
        },
        labels={0: "Alpha", 1: "Beta", 2: "Gamma", 3: "Delta"},
    )


class TestConstruction:
    def test_basic_properties(self, table):
        assert table.name == "restaurants"
        assert table.n_rows == 4
        assert table.column_names == ("food", "service", "price")
        assert len(table) == 4

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Table("empty", {})

    def test_rejects_ragged_columns(self):
        with pytest.raises(SchemaError, match="ragged"):
            Table("bad", {"a": [1.0], "b": [1.0, 2.0]})

    def test_rejects_non_numeric(self):
        with pytest.raises(SchemaError, match="not numeric"):
            Table("bad", {"a": ["x", "y"]})

    def test_from_rows(self):
        table = Table.from_rows(
            "t", [{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}]
        )
        assert table.n_rows == 2
        assert table.column("a") == (1.0, 3.0)

    def test_from_rows_rejects_schema_drift(self):
        with pytest.raises(SchemaError, match="schema"):
            Table.from_rows("t", [{"a": 1.0}, {"b": 2.0}])

    def test_from_rows_rejects_empty(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", [])


class TestRowAndColumnAccess:
    def test_row(self, table):
        assert table.row(2) == {"food": 5.0, "service": 4.0, "price": 50.0}

    def test_row_out_of_range(self, table):
        with pytest.raises(InvalidQueryError):
            table.row(4)

    def test_unknown_column(self, table):
        with pytest.raises(SchemaError, match="no column"):
            table.column("ambiance")

    def test_labels(self, table):
        assert table.label(0) == "Alpha"
        Table("t", {"a": [1.0]}).label(0) == "row 0"


class TestIndexes:
    def test_index_is_cached(self, table):
        first = table.index_for("food")
        second = table.index_for("food")
        assert first is second

    def test_flipped_index_is_separate(self, table):
        assert table.index_for("price") is not table.index_for(
            "price", flipped=True
        )

    def test_flipped_index_ranks_small_values_first(self, table):
        index = table.index_for("price", flipped=True)
        assert index.item_at(1) == 1  # price 10 is best
        assert index.item_at(4) == 2  # price 50 is worst


class TestTopK:
    def test_weighted_query(self, table):
        result = table.topk(2, weights={"food": 1.0, "service": 1.0})
        # food+service: Alpha 7, Beta 7, Gamma 9, Delta 5.
        assert result.rows[0].id == 2
        assert result.rows[0].score == 9.0
        assert result.rows[0].label == "Gamma"
        # Tie at 7 between rows 0 and 1 -> smaller id wins deterministically.
        assert result.rows[1].id == 0

    def test_values_projection(self, table):
        result = table.topk(1, weights={"food": 1.0})
        assert result.rows[0].values == {"food": 5.0}
        assert result.columns == ("food",)

    def test_minimize_price(self, table):
        result = table.topk(1, weights={"price": 1.0}, minimize=("price",))
        assert result.rows[0].id == 1  # cheapest

    def test_minimize_must_be_weighted(self, table):
        with pytest.raises(InvalidQueryError, match="minimize"):
            table.topk(1, weights={"food": 1.0}, minimize=("price",))

    def test_requires_weights(self, table):
        with pytest.raises(InvalidQueryError):
            table.topk(1, weights={})

    @pytest.mark.parametrize("algorithm", ["ta", "bpa", "bpa2", "fa", "naive"])
    def test_all_algorithms_agree(self, table, algorithm):
        reference = table.topk(3, weights={"food": 2.0, "service": 1.0})
        result = table.topk(
            3, weights={"food": 2.0, "service": 1.0}, algorithm=algorithm
        )
        assert [r.score for r in result.rows] == pytest.approx(
            [r.score for r in reference.rows]
        )

    def test_algorithm_options_forwarded(self, table):
        result = table.topk(
            1, weights={"food": 1.0}, algorithm="bpa", tracker="btree"
        )
        assert result.stats.algorithm == "bpa"

    def test_stats_carry_tallies(self, table):
        result = table.topk(2, weights={"food": 1.0, "service": 1.0})
        assert result.stats.tally.total > 0
        assert len(result) == 2
        assert list(iter(result)) == list(result.rows)

    def test_combined_maximize_minimize(self, table):
        # High food, low price: Gamma has best food but worst price.
        result = table.topk(
            1,
            weights={"food": 1.0, "price": 0.1},
            minimize=("price",),
        )
        # scores: Alpha 4+2=6, Beta 2+4=6, Gamma 5+0=5, Delta 3+3=6.
        assert result.rows[0].id == 0  # tie at 6 -> smallest id
        assert result.rows[0].score == pytest.approx(6.0)