"""Unit tests for the network accounting fixes.

Covers the two previously untallied dimensions: payloads produced by
the columnar backend (NumPy scalars used to raise ``TypeError`` in
``payload_size``) and best-position exchange traffic (BPA's shipped
positions, BPA2's ``bp_score`` piggybacks), plus the per-round
message/byte breakdown the batched protocol is judged by.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.network import (
    NetworkStats,
    SimulatedNetwork,
    payload_size,
)
from repro.distributed.nodes import ListOwnerNode
from repro.lists.sorted_list import SortedList


class TestPayloadSizeNumpy:
    def test_numpy_scalars_price_like_python_numbers(self):
        assert payload_size(np.float64(1.5)) == payload_size(1.5) == 8
        assert payload_size(np.int64(3)) == payload_size(3) == 8
        assert payload_size(np.int32(3)) == 8

    def test_numpy_bool_prices_like_bool(self):
        assert payload_size(np.bool_(True)) == payload_size(True) == 1

    def test_numpy_values_inside_containers(self):
        payload = {"scores": [np.float64(0.25), np.float64(0.5)]}
        assert payload_size(payload) == len("scores") + 16

    def test_unknown_types_still_rejected(self):
        with pytest.raises(TypeError):
            payload_size(object())


class TestBestPositionTallies:
    def _network_with_owner(self, *, include_position: bool):
        network = SimulatedNetwork()
        owner = ListOwnerNode(
            SortedList([(0, 4.0), (1, 3.0), (2, 2.0), (3, 1.0)]),
            include_position=include_position,
        )
        network.register("owner/0", owner)
        return network

    def test_piggybacked_bp_score_is_tallied(self):
        network = self._network_with_owner(include_position=False)
        # First sorted access advances bp 0 -> 1: response carries
        # bp_score (8 bytes) under its key (8 bytes of "bp_score").
        network.request("owner/0", "sorted_next")
        assert network.stats.bp_messages == 1
        assert network.stats.bp_bytes == len("bp_score") + 8

    def test_response_without_bp_state_is_not_tallied(self):
        network = self._network_with_owner(include_position=False)
        network.request("owner/0", "sorted_next")  # bp 0 -> 1
        before = network.stats.bp_messages
        # Looking up the deepest item does not move bp: no piggyback.
        network.request("owner/0", "random_lookup", {"item": 3})
        assert network.stats.bp_messages == before

    def test_shipped_positions_count_as_bp_traffic(self):
        plain = self._network_with_owner(include_position=False)
        shipped = self._network_with_owner(include_position=True)
        for network in (plain, shipped):
            network.request("owner/0", "random_lookup", {"item": 3})
        assert shipped.stats.bp_bytes > plain.stats.bp_bytes

    def test_batched_positions_count_as_bp_traffic(self):
        network = self._network_with_owner(include_position=True)
        network.request("owner/0", "random_lookup_many", {"items": [1, 3]})
        assert network.stats.bp_messages == 1
        # "positions" list (2 x 8 bytes) + its key + bp_score piggyback.
        assert network.stats.bp_bytes >= len("positions") + 16


class TestRoundAccounting:
    def test_rounds_partition_the_totals(self):
        stats = NetworkStats()
        stats.record("a", 10, 5)  # before any round: bucket 0
        stats.begin_round()
        stats.record("b", 4, 4)
        stats.record("b", 4, 4)
        stats.begin_round()
        stats.record_one_way("c", 7)
        assert stats.rounds == 2
        assert stats.messages_by_round == [2, 4, 1]
        assert stats.bytes_by_round == [15, 16, 7]
        assert sum(stats.messages_by_round) == stats.messages
        assert sum(stats.bytes_by_round) == stats.bytes

    def test_snapshot_carries_the_new_counters(self):
        stats = NetworkStats()
        stats.begin_round()
        stats.record("x", 1, 2)
        snapshot = stats.snapshot()
        for key in (
            "rounds",
            "messages_by_round",
            "bytes_by_round",
            "bp_messages",
            "bp_bytes",
        ):
            assert key in snapshot
        assert snapshot["rounds"] == 1

    def test_snapshot_caps_the_per_round_series(self):
        stats = NetworkStats()
        rounds = NetworkStats.SNAPSHOT_MAX_ROUNDS + 40
        for _ in range(rounds):
            stats.begin_round()
            stats.record("x", 1, 1)
        snapshot = stats.snapshot()
        assert snapshot["rounds"] == rounds
        assert len(snapshot["messages_by_round"]) == NetworkStats.SNAPSHOT_MAX_ROUNDS
        assert len(snapshot["bytes_by_round"]) == NetworkStats.SNAPSHOT_MAX_ROUNDS
        # +1 for the pre-round bucket the raw series always carries.
        assert snapshot["rounds_omitted"] == rounds + 1 - NetworkStats.SNAPSHOT_MAX_ROUNDS
        # Totals still cover every round, truncation or not.
        assert snapshot["messages"] == 2 * rounds

    def test_drivers_report_their_round_count(self):
        from repro.datagen import UniformGenerator
        from repro.distributed import DistributedBPA2

        database = UniformGenerator().generate(200, 3, seed=9)
        result = DistributedBPA2().run(database, 5)
        net = result.extras["network"]
        assert net["rounds"] == result.rounds
        assert len(net["messages_by_round"]) == net["rounds"] + 1
