"""Unit tests for :class:`repro.lists.database.Database`."""

import pytest

from repro.errors import InconsistentListsError
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList


class TestValidation:
    def test_requires_at_least_one_list(self):
        with pytest.raises(InconsistentListsError):
            Database([])

    def test_rejects_diverging_item_sets(self):
        list_a = SortedList([(0, 1.0), (1, 2.0)])
        list_b = SortedList([(0, 1.0), (2, 2.0)])
        with pytest.raises(InconsistentListsError):
            Database([list_a, list_b])

    def test_rejects_subset_lists(self):
        list_a = SortedList([(0, 1.0), (1, 2.0)])
        list_b = SortedList([(0, 1.0)])
        with pytest.raises(InconsistentListsError):
            Database([list_a, list_b])

    def test_accepts_same_items_in_any_order(self):
        list_a = SortedList([(0, 1.0), (1, 2.0)])
        list_b = SortedList([(1, 9.0), (0, 3.0)])
        database = Database([list_a, list_b])
        assert database.m == 2
        assert database.n == 2


class TestConstructionHelpers:
    def test_from_score_rows(self):
        database = Database.from_score_rows([[1.0, 2.0], [5.0, 4.0]])
        assert database.m == 2
        assert database.n == 2
        assert database.lists[0].items() == (1, 0)
        assert database.lists[1].items() == (0, 1)

    def test_from_score_rows_names_lists(self):
        database = Database.from_score_rows([[1.0], [1.0], [1.0]])
        assert [lst.name for lst in database.lists] == ["L1", "L2", "L3"]

    def test_from_ranked_lists(self):
        database = Database.from_ranked_lists(
            [
                [(7, 3.0), (8, 2.0)],
                [(8, 9.0), (7, 1.0)],
            ]
        )
        assert database.item_ids == frozenset({7, 8})
        assert database.lists[1].item_at(1) == 8


class TestIntrospection:
    @pytest.fixture()
    def database(self) -> Database:
        return Database.from_score_rows(
            [[3.0, 1.0, 2.0], [1.0, 2.0, 3.0]],
            labels={0: "alpha", 1: "beta"},
        )

    def test_local_scores_in_list_order(self, database):
        assert database.local_scores(0) == (3.0, 1.0)
        assert database.local_scores(2) == (2.0, 3.0)

    def test_positions_in_list_order(self, database):
        assert database.positions(0) == (1, 3)
        assert database.positions(2) == (2, 1)

    def test_labels_with_fallback(self, database):
        assert database.label(0) == "alpha"
        assert database.label(2) == "item 2"

    def test_iteration_and_indexing(self, database):
        assert len(database) == 2
        assert list(database)[0] is database[0]

    def test_iter_items_sorted(self, database):
        assert list(database.iter_items()) == [0, 1, 2]
