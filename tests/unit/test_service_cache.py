"""ResultCache: LRU behavior, epoch indexing/expiry, key normalization."""

from __future__ import annotations

import time

import pytest

from repro.scoring import MIN, SUM, SumScoring, WeightedSumScoring
from repro.service.cache import (
    ResultCache,
    freeze_value,
    normalized_query_key,
    scoring_key,
)


class TestKeyNormalization:
    def test_equal_scoring_instances_share_a_key(self):
        assert scoring_key(SumScoring()) == scoring_key(SumScoring())
        assert scoring_key(SUM) == scoring_key(SumScoring())
        assert scoring_key(WeightedSumScoring([2.0, 1.0])) == scoring_key(
            WeightedSumScoring([2.0, 1.0])
        )

    def test_different_scorings_get_different_keys(self):
        assert scoring_key(SUM) != scoring_key(MIN)
        assert scoring_key(WeightedSumScoring([2.0, 1.0])) != scoring_key(
            WeightedSumScoring([1.0, 2.0])
        )

    def test_lambdas_never_falsely_collide(self):
        # Default reprs embed the object id, so two distinct callables
        # cannot share an entry (false misses are safe, false hits not).
        assert scoring_key(lambda s: sum(s)) != scoring_key(lambda s: sum(s))

    def test_default_repr_scorings_are_identity_pinned(self):
        # A key built from a default repr embeds the instance itself:
        # comparing address-bearing strings alone would let CPython's
        # id reuse alias a dead scoring with a different later one.
        class Opaque:
            def __call__(self, scores):
                return sum(scores)

        scoring = Opaque()
        key = scoring_key(scoring)
        assert key[-1] is scoring
        assert scoring_key(SUM)[-1] == repr(SUM)  # faithful reprs stay unpinned

    def test_nearby_weight_vectors_never_share_a_key(self):
        # Regression: WeightedSumScoring.name used to format weights
        # with 6 significant digits, so 0.3 and 0.30000004 — distinct
        # floats whose rankings differ — collided in the *name*
        # component of this key (the repr component saved the day only
        # by accident of tuple comparison order never being reached;
        # the name is documented as an identity and must be exact).
        close = WeightedSumScoring([0.3])
        closer = WeightedSumScoring([0.30000004])
        assert close.name != closer.name
        assert scoring_key(close) != scoring_key(closer)
        assert normalized_query_key("bpa2", 5, close, {}) != (
            normalized_query_key("bpa2", 5, closer, {})
        )

    def test_distinct_weight_vectors_get_distinct_keys_property(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        weight = st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        )
        vectors = st.lists(weight, min_size=1, max_size=4).filter(
            lambda ws: any(w > 0 for w in ws)
        )

        @hypothesis.given(first=vectors, second=vectors)
        def check(first, second):
            a = WeightedSumScoring(first)
            b = WeightedSumScoring(second)
            # Any two scorings that compare unequal on some score
            # vector must produce distinct cache keys — here the
            # weight tuples themselves are the witness: unequal
            # tuples always admit a separating score vector.
            if tuple(map(float, first)) != tuple(map(float, second)):
                assert scoring_key(a) != scoring_key(b)
            elif [repr(float(w)) for w in first] == [
                repr(float(w)) for w in second
            ]:
                # Bit-identical vectors share a key; -0.0 vs 0.0 may
                # key apart (a false miss, which is always safe).
                assert scoring_key(a) == scoring_key(b)

        check()

    def test_option_order_is_irrelevant(self):
        a = normalized_query_key("ta", 5, SUM, {"memoize": True, "x": 1})
        b = normalized_query_key("ta", 5, SUM, {"x": 1, "memoize": True})
        assert a == b

    def test_key_distinguishes_algorithm_k_and_options(self):
        base = normalized_query_key("ta", 5, SUM, {})
        assert normalized_query_key("bpa", 5, SUM, {}) != base
        assert normalized_query_key("ta", 6, SUM, {}) != base
        assert normalized_query_key("ta", 5, SUM, {"memoize": True}) != base

    def test_freeze_handles_nested_unhashables(self):
        frozen = freeze_value({"a": [1, {2, 3}], "b": {"c": [4]}})
        assert hash(frozen) == hash(freeze_value({"b": {"c": [4]}, "a": [1, {3, 2}]}))


class TestResultCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="maxsize"):
            ResultCache(0)

    def test_hit_and_miss_accounting(self):
        cache = ResultCache(4)
        key = normalized_query_key("ta", 5, SUM, {})
        assert cache.get(key, epoch=0) is None
        cache.put(key, "answer", epoch=0)
        assert cache.get(key, epoch=0) == "answer"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put(("a",), 1, epoch=0)
        cache.put(("b",), 2, epoch=0)
        assert cache.get(("a",), epoch=0) == 1  # refreshes 'a'
        cache.put(("c",), 3, epoch=0)  # evicts 'b', the LRU entry
        assert cache.get(("b",), epoch=0) is None
        assert cache.get(("a",), epoch=0) == 1
        assert cache.get(("c",), epoch=0) == 3
        assert cache.stats.evictions == 1

    def test_epoch_invalidation_is_lazy_and_counted(self):
        cache = ResultCache(4)
        cache.put(("a",), "stale", epoch=0)
        assert len(cache) == 1
        # The write epoch has passed: the entry is dropped on first read.
        assert cache.get(("a",), epoch=1) is None
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        # A fresh write under the new epoch serves normally.
        cache.put(("a",), "fresh", epoch=1)
        assert cache.get(("a",), epoch=1) == "fresh"

    def test_put_refreshes_epoch_and_value(self):
        cache = ResultCache(4)
        cache.put(("a",), "old", epoch=0)
        cache.put(("a",), "new", epoch=3)
        assert cache.get(("a",), epoch=3) == "new"
        assert len(cache) == 1

    def test_clear_preserves_stats(self):
        cache = ResultCache(4)
        cache.put(("a",), 1, epoch=0)
        cache.get(("a",), epoch=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_rejects_negative_patch_limit(self):
        with pytest.raises(ValueError, match="patch_limit"):
            ResultCache(4, patch_limit=-1)


class TestEpochIndex:
    """Entries are indexed by epoch so expiry never scans the table."""

    def test_drop_expired_removes_exactly_the_older_epochs(self):
        cache = ResultCache(16)
        for i in range(3):
            cache.put(("old", i), i, epoch=0)
        cache.put(("mid",), "m", epoch=2)
        for i in range(4):
            cache.put(("new", i), i, epoch=5)
        dropped = cache.drop_expired(5)
        assert dropped == 4
        assert len(cache) == 4
        assert ("mid",) not in cache
        assert all(("new", i) in cache for i in range(4))
        assert cache.stats.invalidations == 4
        assert cache.drop_expired(5) == 0  # idempotent

    def test_put_overwrite_moves_the_entry_between_epoch_buckets(self):
        cache = ResultCache(4)
        cache.put(("a",), "old", epoch=0)
        cache.put(("a",), "new", epoch=3)
        # The epoch-0 bucket no longer references the key: expiring
        # below 3 must not drop the refreshed entry.
        assert cache.drop_expired(3) == 0
        assert cache.get(("a",), epoch=3) == "new"

    def test_eviction_and_stale_read_keep_the_index_in_sync(self):
        cache = ResultCache(2)
        cache.put(("a",), 1, epoch=0)
        cache.put(("b",), 2, epoch=1)
        cache.put(("c",), 3, epoch=1)  # evicts ("a",) from epoch 0
        assert cache.drop_expired(1) == 0  # nothing left at epoch 0
        assert cache.get(("b",), epoch=2) is None  # lazy stale drop
        assert cache.drop_expired(2) == 1  # only ("c",) remained stale
        assert len(cache) == 0

    def test_clear_resets_the_index(self):
        cache = ResultCache(4)
        cache.put(("a",), 1, epoch=0)
        cache.clear()
        assert cache.drop_expired(10) == 0

    def test_entry_epoch_introspection(self):
        cache = ResultCache(4)
        assert cache.entry_epoch(("a",)) is None
        cache.put(("a",), 1, epoch=7)
        assert cache.entry_epoch(("a",)) == 7

    def test_drop_expired_cost_tracks_drops_not_cache_size(self):
        """Benchmark guard: expiring a handful of stale entries must be
        far cheaper than one pass over the whole table (the cost a
        scan-based expiry would pay on every cleanup)."""
        cache = ResultCache(200_000)
        stale, fresh = 100, 50_000
        for i in range(stale):
            cache.put(("stale", i), i, epoch=0)
        for i in range(fresh):
            cache.put(("fresh", i), i, epoch=1)
        # The scan a naive implementation would do: touch every entry.
        started = time.perf_counter()
        scanned = [
            key
            for key, (epoch, _) in cache._entries.items()
            if epoch < 1
        ]
        scan_seconds = time.perf_counter() - started
        assert len(scanned) == stale
        started = time.perf_counter()
        dropped = cache.drop_expired(1)
        drop_seconds = time.perf_counter() - started
        assert dropped == stale
        assert len(cache) == fresh
        # 100 deletions vs 50k iterations: orders of magnitude apart —
        # the comparison holds with huge margin on any hardware.
        assert drop_seconds < scan_seconds

    def test_noop_drop_expired_short_circuits(self):
        # The per-mutation call on a warm cache must not scan buckets:
        # with nothing below the cutoff the min-bucket bound answers
        # in O(1) (observable via an untouched _by_epoch mapping).
        cache = ResultCache(16)
        for i in range(4):
            cache.put(("k", i), i, epoch=10 + i)
        untouched = cache._by_epoch
        cache._by_epoch = None  # any scan would raise
        try:
            assert cache.drop_expired(10) == 0
            assert cache.drop_expired(5) == 0
        finally:
            cache._by_epoch = untouched
        assert cache.drop_expired(11) == 1  # the real purge still works

    def test_hit_rate_counts_all_reuse_outcomes(self):
        cache = ResultCache(4)
        cache.put(("a",), 1, epoch=0)
        cache.get(("a",), epoch=0)
        cache.get(("b",), epoch=0)
        cache.stats.revalidated += 1
        cache.stats.patched += 1
        assert cache.stats.reuses == 3
        assert cache.stats.lookups == 4
        assert cache.stats.hit_rate == pytest.approx(0.75)
