"""ResultCache: LRU behavior, epoch invalidation, key normalization."""

from __future__ import annotations

import pytest

from repro.scoring import MIN, SUM, SumScoring, WeightedSumScoring
from repro.service.cache import (
    ResultCache,
    freeze_value,
    normalized_query_key,
    scoring_key,
)


class TestKeyNormalization:
    def test_equal_scoring_instances_share_a_key(self):
        assert scoring_key(SumScoring()) == scoring_key(SumScoring())
        assert scoring_key(SUM) == scoring_key(SumScoring())
        assert scoring_key(WeightedSumScoring([2.0, 1.0])) == scoring_key(
            WeightedSumScoring([2.0, 1.0])
        )

    def test_different_scorings_get_different_keys(self):
        assert scoring_key(SUM) != scoring_key(MIN)
        assert scoring_key(WeightedSumScoring([2.0, 1.0])) != scoring_key(
            WeightedSumScoring([1.0, 2.0])
        )

    def test_lambdas_never_falsely_collide(self):
        # Default reprs embed the object id, so two distinct callables
        # cannot share an entry (false misses are safe, false hits not).
        assert scoring_key(lambda s: sum(s)) != scoring_key(lambda s: sum(s))

    def test_default_repr_scorings_are_identity_pinned(self):
        # A key built from a default repr embeds the instance itself:
        # comparing address-bearing strings alone would let CPython's
        # id reuse alias a dead scoring with a different later one.
        class Opaque:
            def __call__(self, scores):
                return sum(scores)

        scoring = Opaque()
        key = scoring_key(scoring)
        assert key[-1] is scoring
        assert scoring_key(SUM)[-1] == repr(SUM)  # faithful reprs stay unpinned

    def test_option_order_is_irrelevant(self):
        a = normalized_query_key("ta", 5, SUM, {"memoize": True, "x": 1})
        b = normalized_query_key("ta", 5, SUM, {"x": 1, "memoize": True})
        assert a == b

    def test_key_distinguishes_algorithm_k_and_options(self):
        base = normalized_query_key("ta", 5, SUM, {})
        assert normalized_query_key("bpa", 5, SUM, {}) != base
        assert normalized_query_key("ta", 6, SUM, {}) != base
        assert normalized_query_key("ta", 5, SUM, {"memoize": True}) != base

    def test_freeze_handles_nested_unhashables(self):
        frozen = freeze_value({"a": [1, {2, 3}], "b": {"c": [4]}})
        assert hash(frozen) == hash(freeze_value({"b": {"c": [4]}, "a": [1, {3, 2}]}))


class TestResultCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="maxsize"):
            ResultCache(0)

    def test_hit_and_miss_accounting(self):
        cache = ResultCache(4)
        key = normalized_query_key("ta", 5, SUM, {})
        assert cache.get(key, epoch=0) is None
        cache.put(key, "answer", epoch=0)
        assert cache.get(key, epoch=0) == "answer"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put(("a",), 1, epoch=0)
        cache.put(("b",), 2, epoch=0)
        assert cache.get(("a",), epoch=0) == 1  # refreshes 'a'
        cache.put(("c",), 3, epoch=0)  # evicts 'b', the LRU entry
        assert cache.get(("b",), epoch=0) is None
        assert cache.get(("a",), epoch=0) == 1
        assert cache.get(("c",), epoch=0) == 3
        assert cache.stats.evictions == 1

    def test_epoch_invalidation_is_lazy_and_counted(self):
        cache = ResultCache(4)
        cache.put(("a",), "stale", epoch=0)
        assert len(cache) == 1
        # The write epoch has passed: the entry is dropped on first read.
        assert cache.get(("a",), epoch=1) is None
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        # A fresh write under the new epoch serves normally.
        cache.put(("a",), "fresh", epoch=1)
        assert cache.get(("a",), epoch=1) == "fresh"

    def test_put_refreshes_epoch_and_value(self):
        cache = ResultCache(4)
        cache.put(("a",), "old", epoch=0)
        cache.put(("a",), "new", epoch=3)
        assert cache.get(("a",), epoch=3) == "new"
        assert len(cache) == 1

    def test_clear_preserves_stats(self):
        cache = ResultCache(4)
        cache.put(("a",), 1, epoch=0)
        cache.get(("a",), epoch=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
