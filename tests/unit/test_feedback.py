"""The control loop's bookkeeping: arms, width AIMD, drift windows."""

from __future__ import annotations

import pytest

from repro.scoring import MIN, SUM
from repro.service.feedback import (
    WIDTH_LATTICE,
    AdaptiveState,
    BlockWidthController,
    DriftDetector,
    PlanFeedback,
    WidthProbe,
    plan_signature,
    total_variation,
)
from repro.service.planner import ServicePolicy
from repro.types import CostModel


def _record(feedback, algorithm, *, seconds, predicted=100.0, sig=("sum", 8)):
    feedback.record(
        algorithm=algorithm,
        transport="local",
        signature=sig,
        predicted_cost=predicted,
        seconds=seconds,
        rounds=3,
        messages=12,
    )


class TestPlanSignature:
    def test_buckets_k_by_power_of_two(self):
        assert plan_signature(SUM, 5) == plan_signature(SUM, 8)
        assert plan_signature(SUM, 8) != plan_signature(SUM, 9)
        assert plan_signature(SUM, 1)[1] == 1

    def test_distinguishes_scoring(self):
        assert plan_signature(SUM, 4) != plan_signature(MIN, 4)


class TestPlanFeedback:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="smoothing"):
            PlanFeedback(smoothing=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            PlanFeedback(min_samples=0)
        with pytest.raises(ValueError, match="tolerance"):
            PlanFeedback(tolerance=-0.1)
        with pytest.raises(ValueError, match="blend"):
            PlanFeedback(blend=1.5)
        with pytest.raises(ValueError, match="reelect_every"):
            PlanFeedback(reelect_every=-1)

    def test_records_accumulate_per_arm(self):
        feedback = PlanFeedback(min_samples=2, reelect_every=0)
        _record(feedback, "ta", seconds=0.01)
        _record(feedback, "ta", seconds=0.01)
        _record(feedback, "bpa", seconds=0.02)
        assert feedback.samples("ta", "local", ("sum", 8)) == 2
        assert feedback.samples("bpa", "local", ("sum", 8)) == 1
        assert feedback.samples("bpa2", "local", ("sum", 8)) == 0
        assert feedback.arm_count == 2

    def test_generation_bumps_while_arm_matures_then_settles(self):
        feedback = PlanFeedback(
            min_samples=2, tolerance=0.5, reelect_every=0
        )
        before = feedback.generation
        _record(feedback, "ta", seconds=0.01)  # maturing
        _record(feedback, "ta", seconds=0.01)  # maturing (== min_samples)
        assert feedback.generation == before + 2
        settled = feedback.generation
        # Mature, consistent with its prediction: no invalidation.
        for _ in range(5):
            _record(feedback, "ta", seconds=0.01)
        assert feedback.generation == settled

    def test_divergent_observation_bumps_generation(self):
        feedback = PlanFeedback(
            min_samples=1, tolerance=0.25, reelect_every=0
        )
        _record(feedback, "ta", seconds=0.01, predicted=100.0)
        _record(feedback, "ta", seconds=0.01, predicted=100.0)
        settled = feedback.generation
        _record(feedback, "ta", seconds=0.01, predicted=100.0)
        assert feedback.generation == settled  # mature and consistent
        # One wildly slow bpa observation inflates the global
        # seconds-per-cost rate, so ta's next (unchanged) observation
        # now disagrees with its prediction beyond the tolerance.
        _record(feedback, "bpa", seconds=1.0, predicted=100.0)
        bumped = feedback.generation
        _record(feedback, "ta", seconds=0.01, predicted=100.0)
        assert feedback.generation > bumped

    def test_scheduled_reelection_bumps_generation(self):
        feedback = PlanFeedback(
            min_samples=1, tolerance=10.0, reelect_every=4
        )
        _record(feedback, "ta", seconds=0.01)  # maturing bump
        settled = feedback.generation
        _record(feedback, "ta", seconds=0.01)
        _record(feedback, "ta", seconds=0.01)
        assert feedback.generation == settled
        _record(feedback, "ta", seconds=0.01)  # 4th record: scheduled
        assert feedback.generation == settled + 1

    def test_explore_candidate_prefers_least_sampled(self):
        feedback = PlanFeedback(min_samples=2, reelect_every=0)
        sig = ("sum", 8)
        assert (
            feedback.explore_candidate(("ta", "bpa"), signature=sig) == "bpa"
        )
        _record(feedback, "bpa", seconds=0.01)
        assert (
            feedback.explore_candidate(("ta", "bpa"), signature=sig) == "ta"
        )
        for _ in range(2):
            _record(feedback, "ta", seconds=0.01)
            _record(feedback, "bpa", seconds=0.01)
        assert feedback.explore_candidate(("ta", "bpa"), signature=sig) is None

    def test_select_keeps_incumbent_inside_hysteresis_band(self):
        feedback = PlanFeedback(min_samples=1, tolerance=0.25)
        sig = ("sum", 8)
        picked, replanned, _ = feedback.select(
            ("ta", "bpa"), {"ta": 100.0, "bpa": 110.0}, signature=sig
        )
        assert (picked, replanned) == ("ta", False)
        # bpa now 10% cheaper — inside the 25% band, incumbent holds.
        picked, replanned, _ = feedback.select(
            ("ta", "bpa"), {"ta": 100.0, "bpa": 90.0}, signature=sig
        )
        assert (picked, replanned) == ("ta", False)
        assert feedback.replans == 0

    def test_select_replans_beyond_the_band(self):
        feedback = PlanFeedback(min_samples=1, tolerance=0.25)
        sig = ("sum", 8)
        feedback.select(("ta", "bpa"), {"ta": 100.0, "bpa": 110.0}, signature=sig)
        picked, replanned, reason = feedback.select(
            ("ta", "bpa"), {"ta": 100.0, "bpa": 60.0}, signature=sig
        )
        assert (picked, replanned) == ("bpa", True)
        assert feedback.replans == 1
        assert "re-planned" in reason

    def test_calibrated_costs_blend_only_mature_arms(self):
        feedback = PlanFeedback(min_samples=1, blend=0.5, reelect_every=0)
        sig = ("sum", 8)
        _record(feedback, "ta", seconds=0.01, predicted=100.0, sig=sig)
        model = CostModel.paper(1000)
        calibrated = feedback.calibrated_costs(
            {"ta": 100.0, "bpa": 80.0}, signature=sig, model=model
        )
        # bpa has no observations: its prediction passes through.
        assert calibrated["bpa"] == 80.0
        # ta's observation equals its prediction (it seeded the rate).
        assert calibrated["ta"] == pytest.approx(100.0)

    def test_invalidate_clears_incumbents_and_bumps_generation(self):
        feedback = PlanFeedback(min_samples=1)
        sig = ("sum", 8)
        feedback.select(("ta", "bpa"), {"ta": 1.0, "bpa": 2.0}, signature=sig)
        generation = feedback.generation
        feedback.invalidate()
        assert feedback.generation == generation + 1
        _, replanned, reason = feedback.select(
            ("ta", "bpa"), {"ta": 1.0, "bpa": 2.0}, signature=sig
        )
        assert not replanned and "initial" in reason


class TestBlockWidthController:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="lattice"):
            BlockWidthController(initial=3)
        with pytest.raises(ValueError, match="threshold"):
            BlockWidthController(threshold=1.0)
        with pytest.raises(ValueError, match="overshoot"):
            BlockWidthController(overshoot_limit=1.0)
        with pytest.raises(ValueError, match="patience"):
            BlockWidthController(patience=0)

    def test_steps_up_after_patience_deep_records(self):
        controller = BlockWidthController(initial=1, patience=2)
        for _ in range(2):
            controller.record(
                seconds=0.001, rounds=4, fetched_positions=4,
                stop_position=4, k=4,
            )
        assert controller.width == 2
        assert controller.adjustments == 1

    def test_never_steps_up_when_width_covers_the_stop(self):
        controller = BlockWidthController(initial=4, patience=1)
        for _ in range(10):
            controller.record(
                seconds=0.001, rounds=1, fetched_positions=4,
                stop_position=3, k=1,
            )
        assert controller.width == 4

    def test_overshoot_steps_down_only_after_patience(self):
        # k=1 query stopping at position 1 but fetching a whole block
        # of 16: provable need is 1, overshoot is 16x.
        controller = BlockWidthController(
            initial=16, patience=2, overshoot_limit=3.0
        )
        controller.record(
            seconds=0.001, rounds=1, fetched_positions=16,
            stop_position=1, k=1,
        )
        assert controller.width == 16  # one bad record: patience holds
        controller.record(
            seconds=0.001, rounds=1, fetched_positions=16,
            stop_position=1, k=1,
        )
        assert controller.width == 8

    def test_single_bad_record_does_not_break_an_up_streak(self):
        controller = BlockWidthController(initial=8, patience=2)
        deep = dict(seconds=0.001, rounds=2, fetched_positions=16,
                    stop_position=16, k=16)
        narrow = dict(seconds=0.001, rounds=1, fetched_positions=8,
                      stop_position=1, k=1)
        controller.record(**deep)
        controller.record(**narrow)  # overshoots, but patience=2
        controller.record(**deep)
        controller.record(**deep)
        assert controller.width == 16

    def test_slow_rounds_step_down_from_latency_alone(self):
        controller = BlockWidthController(
            initial=8, patience=1, threshold=2.0
        )
        covered = dict(rounds=1, fetched_positions=4, stop_position=2, k=2)
        controller.record(seconds=0.001, **covered)  # seeds the baseline
        controller.record(seconds=0.010, **covered)  # 10x the baseline
        assert controller.width == 4

    def test_width_stays_on_lattice_at_both_ends(self):
        controller = BlockWidthController(initial=1, patience=1)
        for _ in range(5):
            controller.record(
                seconds=0.001, rounds=1, fetched_positions=64,
                stop_position=1, k=1,
            )
        assert controller.width == 1
        controller = BlockWidthController(initial=16, patience=1)
        for _ in range(10):
            controller.record(
                seconds=0.001, rounds=8, fetched_positions=128,
                stop_position=128, k=64,
            )
        assert controller.width == 16

    def test_histogram_counts_the_width_each_record_ran_at(self):
        controller = BlockWidthController(initial=1, patience=1)
        controller.record(
            seconds=0.001, rounds=2, fetched_positions=2,
            stop_position=2, k=2,
        )
        controller.record(
            seconds=0.001, rounds=1, fetched_positions=2,
            stop_position=4, k=2,
        )
        assert controller.width_histogram[1] == 1
        assert controller.width_histogram[2] == 1


class TestWidthProbe:
    def test_tracks_last_total_and_calls(self):
        controller = BlockWidthController(initial=4)
        probe = WidthProbe(controller)
        assert probe() == 4
        assert probe() == 4
        assert (probe.last, probe.total, probe.calls) == (4, 8, 2)

    def test_follows_the_controller_live(self):
        controller = BlockWidthController(initial=2, patience=1)
        probe = WidthProbe(controller)
        assert probe() == 2
        controller.record(
            seconds=0.001, rounds=2, fetched_positions=4,
            stop_position=4, k=4,
        )
        assert probe() == 4
        assert probe.last == 4


class TestTotalVariation:
    def test_identical_histograms_have_zero_distance(self):
        assert total_variation({"a": 3, "b": 1}, {"a": 6, "b": 2}) == 0.0

    def test_disjoint_histograms_have_distance_one(self):
        assert total_variation({"a": 5}, {"b": 7}) == 1.0

    def test_empty_histogram_reports_zero(self):
        assert total_variation({}, {"a": 1}) == 0.0


class TestDriftDetector:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="window"):
            DriftDetector(window=1)
        with pytest.raises(ValueError, match="threshold"):
            DriftDetector(threshold=0.0)

    def test_stationary_stream_never_fires(self):
        detector = DriftDetector(window=8, threshold=0.6)
        key = DriftDetector.bucket("ta", 4, SUM)
        assert not any(detector.observe(key, k=4) for _ in range(64))
        assert detector.epochs == 0

    def test_shape_shift_fires_one_epoch(self):
        detector = DriftDetector(window=8, threshold=0.6)
        narrow = DriftDetector.bucket("ta", 2, SUM)
        deep = DriftDetector.bucket("ta", 64, SUM)
        for _ in range(16):  # reference + one confirming window
            detector.observe(narrow, k=2)
        fired = [detector.observe(deep, k=64) for _ in range(8)]
        assert fired.count(True) == 1
        assert detector.epochs == 1
        assert detector.last_divergence == 1.0

    def test_bucketing_absorbs_nearby_k(self):
        # k=5..8 share a bucket: drifting within it is not a shift.
        detector = DriftDetector(window=8, threshold=0.3)
        for index in range(64):
            key = DriftDetector.bucket("ta", 5 + index % 4, SUM)
            assert not detector.observe(key)

    def test_recent_k_and_distinct_ratio_window(self):
        detector = DriftDetector(window=4, threshold=0.6)
        for k in (1, 2, 3, 4, 5):
            detector.observe(DriftDetector.bucket("ta", k, SUM), k=k)
        assert list(detector.recent_k) == [2, 3, 4, 5]
        assert 0.0 < detector.distinct_ratio <= 1.0


class TestAdaptiveState:
    def test_from_policy_seeds_controllers_at_policy_width(self):
        state = AdaptiveState.from_policy(
            ServicePolicy(adaptive=True, block_width=8)
        )
        assert state.controller_for("network-batch").width == 8

    def test_off_lattice_policy_width_falls_back_to_one(self):
        state = AdaptiveState.from_policy(
            ServicePolicy(adaptive=True, block_width=5)
        )
        assert state.controller_for("network-batch").width == 1

    def test_signature_scopes_controllers_independently(self):
        state = AdaptiveState.from_policy(ServicePolicy(adaptive=True))
        narrow = state.controller_for("network-batch", ("sum", 1))
        deep = state.controller_for("network-batch", ("sum", 16))
        assert narrow is not deep
        assert state.controller_for("network-batch", ("sum", 1)) is narrow

    def test_width_histogram_merges_across_controllers(self):
        state = AdaptiveState.from_policy(ServicePolicy(adaptive=True))
        for signature in (("sum", 1), ("sum", 16)):
            state.controller_for("network-batch", signature).record(
                seconds=0.001, rounds=1, fetched_positions=1,
                stop_position=1, k=1,
            )
        assert state.width_histogram() == {1: 2}

    def test_lattice_is_sorted_and_starts_at_one(self):
        assert WIDTH_LATTICE[0] == 1
        assert list(WIDTH_LATTICE) == sorted(WIDTH_LATTICE)
