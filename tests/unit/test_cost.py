"""Unit tests for :mod:`repro.lists.cost` (CostReport)."""

import pytest

from repro.lists.cost import CostReport
from repro.types import AccessTally, CostModel, ScoredItem, TopKResult


def _result(sorted=0, random=0, direct=0, algorithm="ta", stop=5):
    return TopKResult(
        items=(ScoredItem(item=0, score=1.0),),
        tally=AccessTally(sorted=sorted, random=random, direct=direct),
        rounds=stop,
        stop_position=stop,
        algorithm=algorithm,
    )


class TestCostReport:
    def test_from_result(self):
        model = CostModel(sorted_cost=1.0, random_cost=10.0)
        report = CostReport.from_result(_result(sorted=4, random=3), model)
        assert report.algorithm == "ta"
        assert report.execution_cost == 4 + 30
        assert report.accesses == 7
        assert report.stop_position == 5

    def test_tally_is_copied(self):
        result = _result(sorted=1)
        report = CostReport.from_result(result, CostModel())
        report.tally.sorted = 99
        assert result.tally.sorted == 1

    def test_speedup_over(self):
        model = CostModel()
        cheap = CostReport.from_result(_result(sorted=10), model)
        pricey = CostReport.from_result(_result(sorted=40), model)
        assert cheap.speedup_over(pricey) == pytest.approx(4.0)
        assert pricey.speedup_over(cheap) == pytest.approx(0.25)

    def test_speedup_over_zero_cost(self):
        model = CostModel()
        free = CostReport.from_result(_result(), model)
        pricey = CostReport.from_result(_result(sorted=5), model)
        assert free.speedup_over(pricey) == float("inf")
        assert free.speedup_over(free) == 1.0

    def test_access_ratio_over(self):
        model = CostModel()
        few = CostReport.from_result(_result(direct=5), model)
        many = CostReport.from_result(_result(sorted=10, random=10), model)
        assert few.access_ratio_over(many) == pytest.approx(4.0)

    def test_access_ratio_over_zero(self):
        model = CostModel()
        none = CostReport.from_result(_result(), model)
        some = CostReport.from_result(_result(sorted=1), model)
        assert none.access_ratio_over(some) == float("inf")
        assert none.access_ratio_over(none) == 1.0
