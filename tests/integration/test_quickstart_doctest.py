"""The quickstart example's doctest session, run on every CI push.

``examples/quickstart.py`` opens with a seeded, fully deterministic
doctest; loading the module by path and executing its doctests here
keeps the example honest without paying for the full ``main()`` demo
(which stays covered by the slow example smoke tests).
"""

from __future__ import annotations

import doctest
import importlib.util
from pathlib import Path

QUICKSTART = Path(__file__).parents[2] / "examples" / "quickstart.py"


def _load_quickstart():
    spec = importlib.util.spec_from_file_location("quickstart", QUICKSTART)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_doctests_pass():
    module = _load_quickstart()
    results = doctest.testmod(module)
    assert results.attempted >= 8, "quickstart lost its doctest session"
    assert results.failed == 0
