"""Property test: the disk format round-trips arbitrary databases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import get_algorithm
from repro.lists.database import Database
from repro.scoring import SUM
from repro.storage import open_database, save_database

# Finite scores including negatives, tiny magnitudes and exact-integer
# floats — everything the generators can produce.
_scores = st.one_of(
    st.integers(-1000, 1000).map(float),
    st.floats(
        min_value=-1e6,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
        width=64,
    ),
)


@st.composite
def _databases(draw):
    n = draw(st.integers(1, 20))
    m = draw(st.integers(1, 4))
    rows = draw(
        st.lists(
            st.lists(_scores, min_size=n, max_size=n), min_size=m, max_size=m
        )
    )
    return Database.from_score_rows(rows)


@given(database=_databases())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_every_entry(database, tmp_path_factory):
    path = tmp_path_factory.mktemp("bptk") / "db.bptk"
    save_database(database, path)
    with open_database(path) as disk:
        assert disk.m == database.m
        assert disk.n == database.n
        for mem_list, disk_list in zip(database.lists, disk.lists):
            assert disk_list.items() == mem_list.items()
            assert disk_list.scores() == mem_list.scores()
            for item in mem_list.items():
                assert disk_list.lookup(item) == mem_list.lookup(item)


@given(database=_databases())
@settings(max_examples=20, deadline=None)
def test_queries_agree_across_media(database, tmp_path_factory):
    path = tmp_path_factory.mktemp("bptk") / "db.bptk"
    save_database(database, path)
    k = min(3, database.n)
    memory_result = get_algorithm("bpa2").run(database, k, SUM)
    with open_database(path) as disk:
        disk_result = get_algorithm("bpa2").run(disk, k, SUM)
    assert disk_result.same_scores(memory_result)
    assert disk_result.tally == memory_result.tally
