"""Concurrent-query sessions at the list owners.

Two interleaved queries against the same deployment must see independent
cursors, tallies and best positions — a property a single-session owner
cannot provide.
"""

import pytest

from repro.distributed.nodes import DEFAULT_SESSION, ListOwnerNode
from repro.lists.sorted_list import SortedList


@pytest.fixture()
def owner() -> ListOwnerNode:
    return ListOwnerNode(
        SortedList([(0, 9.0), (1, 7.0), (2, 5.0), (3, 3.0)]),
        include_position=True,
    )


class TestSessionIsolation:
    def test_independent_cursors(self, owner):
        first = owner.handle("sorted_next", {"session": "q1"})
        second = owner.handle("sorted_next", {"session": "q2"})
        # Both queries read position 1 — their cursors do not interact.
        assert first["item"] == second["item"] == 0
        third = owner.handle("sorted_next", {"session": "q1"})
        assert third["item"] == 1

    def test_independent_tallies(self, owner):
        owner.handle("sorted_next", {"session": "q1"})
        owner.handle("sorted_next", {"session": "q1"})
        owner.handle("random_lookup", {"session": "q2", "item": 3})
        assert owner.session_tally("q1").sorted == 2
        assert owner.session_tally("q1").random == 0
        assert owner.session_tally("q2").random == 1
        assert owner.session_tally("q2").sorted == 0

    def test_independent_best_positions(self, owner):
        owner.handle("direct_next", {"session": "q1"})
        owner.handle("direct_next", {"session": "q1"})
        owner.handle("direct_next", {"session": "q2"})
        assert owner.best_position_score("q1") == 7.0  # bp = 2
        assert owner.best_position_score("q2") == 9.0  # bp = 1

    def test_default_session_is_implicit(self, owner):
        owner.handle("sorted_next", {})
        assert owner.session_tally(DEFAULT_SESSION).sorted == 1
        assert owner.accessor.tally.sorted == 1

    def test_reset_targets_one_session(self, owner):
        owner.handle("sorted_next", {"session": "q1"})
        owner.handle("sorted_next", {"session": "q2"})
        owner.handle("reset", {"session": "q1"})
        assert owner.session_tally("q1").total == 0
        assert owner.session_tally("q2").total == 1

    def test_active_sessions_listed(self, owner):
        owner.handle("sorted_next", {"session": "q1"})
        owner.handle("sorted_next", {"session": "q2"})
        assert set(owner.active_sessions) >= {DEFAULT_SESSION, "q1", "q2"}


class TestInterleavedQueriesEndToEnd:
    def test_two_interleaved_ta_queries_both_correct(self):
        """Drive two TA queries by hand, strictly interleaved."""
        from repro.algorithms.naive import brute_force_topk
        from repro.datagen import UniformGenerator
        from repro.scoring import SUM

        database = UniformGenerator().generate(120, 3, seed=33)
        owners = [ListOwnerNode(lst) for lst in database.lists]
        expected = {
            "q1": [e.score for e in brute_force_topk(database, 3, SUM)],
            "q2": [e.score for e in brute_force_topk(database, 5, SUM)],
        }

        def run_round(session: str, state: dict) -> bool:
            """One TA round for one session; returns True when stopped."""
            last = []
            for index, owner in enumerate(owners):
                response = owner.handle("sorted_next", {"session": session})
                last.append(response["score"])
                item = response["item"]
                if item not in state["overall"]:
                    scores = [0.0] * len(owners)
                    scores[index] = response["score"]
                    for other in range(len(owners)):
                        if other != index:
                            reply = owners[other].handle(
                                "random_lookup", {"session": session, "item": item}
                            )
                            scores[other] = reply["score"]
                    state["overall"][item] = sum(scores)
            k = state["k"]
            top = sorted(state["overall"].values(), reverse=True)[:k]
            return len(top) == k and top[-1] >= sum(last)

        states = {
            "q1": {"overall": {}, "k": 3},
            "q2": {"overall": {}, "k": 5},
        }
        done = {"q1": False, "q2": False}
        for _ in range(120):
            for session in ("q1", "q2"):
                if not done[session]:
                    done[session] = run_round(session, states[session])
            if all(done.values()):
                break
        assert all(done.values())
        for session, state in states.items():
            top = sorted(state["overall"].values(), reverse=True)[: state["k"]]
            assert top == pytest.approx(expected[session])
