"""The paper's lemmas and theorems as executable properties.

Each test runs whole algorithm executions over hypothesis-generated
databases (including tie-heavy ones) and checks the corresponding claim
from the paper.
"""

import pytest
from hypothesis import given, settings

from repro.algorithms.base import get_algorithm
from repro.algorithms.naive import brute_force_topk
from repro.scoring import MAX, MIN, SUM
from repro.types import CostModel
from tests.conftest import databases


@given(case=databases())
def test_correctness_all_algorithms(case):
    """Theorems 1 and 6 (+ TA/FA correctness): exact top-k score multiset."""
    database, k = case
    expected = [e.score for e in brute_force_topk(database, k, SUM)]
    for name in ("fa", "ta", "bpa", "bpa2"):
        result = get_algorithm(name).run(database, k, SUM)
        assert list(result.scores) == pytest.approx(expected), name


@given(case=databases(tie_heavy=True))
def test_correctness_under_heavy_ties(case):
    database, k = case
    expected = [e.score for e in brute_force_topk(database, k, SUM)]
    for name in ("fa", "ta", "bpa", "bpa2"):
        result = get_algorithm(name).run(database, k, SUM)
        assert list(result.scores) == pytest.approx(expected), name


@given(case=databases())
def test_correctness_min_max_scoring(case):
    database, k = case
    for scoring in (MIN, MAX):
        expected = [e.score for e in brute_force_topk(database, k, scoring)]
        for name in ("ta", "bpa", "bpa2"):
            result = get_algorithm(name).run(database, k, scoring)
            assert list(result.scores) == pytest.approx(expected), (
                name,
                scoring.name,
            )


@given(case=databases())
def test_lemma1_bpa_sorted_accesses_at_most_ta(case):
    """Lemma 1: BPA stops at least as early as TA."""
    database, k = case
    ta = get_algorithm("ta").run(database, k, SUM)
    bpa = get_algorithm("bpa").run(database, k, SUM)
    assert bpa.tally.sorted <= ta.tally.sorted
    assert bpa.stop_position <= ta.stop_position


@given(case=databases())
def test_lemma2_random_accesses_proportional(case):
    """Lemma 2: ar = as * (m-1) for both TA and BPA."""
    database, k = case
    m = database.m
    for name in ("ta", "bpa"):
        result = get_algorithm(name).run(database, k, SUM)
        assert result.tally.random == result.tally.sorted * (m - 1), name


@given(case=databases())
def test_theorem2_bpa_cost_at_most_ta(case):
    """Theorem 2: execution cost of BPA <= TA (paper cost model)."""
    database, k = case
    model = CostModel.paper(database.n)
    ta = get_algorithm("ta").run(database, k, SUM)
    bpa = get_algorithm("bpa").run(database, k, SUM)
    assert bpa.execution_cost(model) <= ta.execution_cost(model)


@given(case=databases())
def test_theorem5_bpa2_never_reaccesses_a_position(case):
    """Theorem 5: per list, accesses == distinct positions touched."""
    database, k = case
    result = get_algorithm("bpa2").run(database, k, SUM)
    assert (
        result.extras["per_list_accesses"]
        == result.extras["per_list_distinct_positions"]
    )
    # Which also bounds the total by m * n:
    assert result.tally.total <= database.m * database.n


@given(case=databases())
def test_theorem7_bpa2_accesses_at_most_bpa(case):
    """Theorem 7: BPA2 performs no more list accesses than BPA."""
    database, k = case
    bpa = get_algorithm("bpa").run(database, k, SUM)
    bpa2 = get_algorithm("bpa2").run(database, k, SUM)
    assert bpa2.tally.total <= bpa.tally.total


@given(case=databases())
def test_fa_never_stops_later_than_naive_and_ta_not_later_than_fa(case):
    """The classic dominance chain: TA <= FA <= naive in stop position."""
    database, k = case
    fa = get_algorithm("fa").run(database, k, SUM)
    ta = get_algorithm("ta").run(database, k, SUM)
    assert ta.stop_position <= fa.stop_position
    assert fa.stop_position <= database.n


@given(case=databases())
def test_bpa_trackers_equivalent_end_to_end(case):
    """Bit array, B+tree and naive trackers must be interchangeable."""
    database, k = case
    reference = get_algorithm("bpa", tracker="naive").run(database, k, SUM)
    for tracker in ("bitarray", "btree"):
        result = get_algorithm("bpa", tracker=tracker).run(database, k, SUM)
        assert result.tally == reference.tally, tracker
        assert result.stop_position == reference.stop_position
        assert result.same_scores(reference)


@given(case=databases())
def test_memoized_ta_same_stop_fewer_accesses(case):
    """The memoization ablation never changes the answer or stop position."""
    database, k = case
    plain = get_algorithm("ta").run(database, k, SUM)
    memoized = get_algorithm("ta", memoize=True).run(database, k, SUM)
    assert memoized.stop_position == plain.stop_position
    assert memoized.tally.total <= plain.tally.total
    assert memoized.same_scores(plain)


@given(case=databases())
@settings(max_examples=30)
def test_nra_item_set_is_exact(case):
    database, k = case
    expected = sorted(e.score for e in brute_force_topk(database, k, SUM))
    result = get_algorithm("nra").run(database, k, SUM)
    exact = sorted(sum(database.local_scores(item)) for item in result.item_ids)
    assert exact == pytest.approx(expected)
