"""Tests for the Quick-Combine extension baseline."""

import pytest
from hypothesis import given, settings

from repro.algorithms import QuickCombine
from repro.algorithms.base import get_algorithm
from repro.algorithms.naive import brute_force_topk
from repro.datagen import UniformGenerator
from repro.errors import InvalidQueryError
from repro.scoring import MIN, SUM
from tests.conftest import databases


class TestConstruction:
    def test_registered(self):
        assert isinstance(get_algorithm("qc"), QuickCombine)

    def test_lookahead_exposed(self):
        assert QuickCombine(lookahead=5).lookahead == 5

    def test_rejects_bad_lookahead(self):
        with pytest.raises(InvalidQueryError):
            QuickCombine(lookahead=0)


class TestCorrectness:
    @given(case=databases())
    def test_matches_brute_force(self, case):
        database, k = case
        expected = [e.score for e in brute_force_topk(database, k, SUM)]
        result = QuickCombine().run(database, k, SUM)
        assert list(result.scores) == pytest.approx(expected)

    @given(case=databases(tie_heavy=True))
    @settings(max_examples=30)
    def test_matches_brute_force_under_ties(self, case):
        database, k = case
        expected = [e.score for e in brute_force_topk(database, k, SUM)]
        result = QuickCombine().run(database, k, SUM)
        assert list(result.scores) == pytest.approx(expected)

    @given(case=databases(max_items=16, max_lists=4))
    @settings(max_examples=20)
    def test_min_scoring(self, case):
        database, k = case
        expected = [e.score for e in brute_force_topk(database, k, MIN)]
        result = QuickCombine().run(database, k, MIN)
        assert list(result.scores) == pytest.approx(expected)

    @pytest.mark.parametrize("lookahead", [1, 2, 5, 10])
    def test_any_lookahead_is_correct(self, simple_database, lookahead):
        expected = [e.score for e in brute_force_topk(simple_database, 2, SUM)]
        result = QuickCombine(lookahead=lookahead).run(simple_database, 2, SUM)
        assert list(result.scores) == pytest.approx(expected)


class TestAdaptivity:
    def test_depths_reported_and_uneven_when_lists_differ(self):
        # List 1's scores fall off a cliff; lists 2 and 3 are flat.  The
        # adaptive scheduler should dig into the fast-dropping list.
        n = 400
        rows = [
            [1000.0 / (1 + i) for i in range(n)],  # steep
            [500.0 - 0.01 * i for i in range(n)],  # flat
            [500.0 - 0.01 * i for i in range(n)],  # flat
        ]
        from repro.lists.database import Database

        database = Database.from_score_rows(rows)
        result = QuickCombine(lookahead=2).run(database, 5, SUM)
        depths = result.extras["depths"]
        assert len(depths) == 3
        assert max(depths) == result.stop_position
        assert depths[0] > min(depths[1], depths[2])

    def test_total_accesses_competitive_with_ta_on_uniform(self):
        database = UniformGenerator().generate(2000, 5, seed=8)
        qc = QuickCombine().run(database, 10, SUM)
        ta = get_algorithm("ta", memoize=True).run(database, 10, SUM)
        # No formal guarantee, but QC should be in the same ballpark as
        # memoized TA (both avoid re-probes) — not 10x worse.
        assert qc.tally.total < ta.tally.total * 3
