"""The Lemma 3 / Theorem 8 worst-case constructions, verified end to end."""

import pytest

from repro.algorithms.base import get_algorithm
from repro.algorithms.naive import brute_force_topk
from repro.datagen.adversarial import (
    bpa2_favorable_database,
    bpa_favorable_database,
)
from repro.errors import GenerationError
from repro.scoring import SUM

LEMMA3_CASES = [(3, 2), (3, 5), (4, 3), (5, 4), (6, 2), (8, 3)]
THEOREM8_CASES = [(3, 3), (4, 2), (5, 4), (6, 3)]


class TestConstructionValidity:
    @pytest.mark.parametrize("m,u", LEMMA3_CASES)
    def test_lemma3_database_is_well_formed(self, m, u):
        database, info = bpa_favorable_database(m, u)
        assert database.m == m
        assert database.n == info.n
        items = database.item_ids
        for lst in database.lists:
            assert frozenset(lst.items()) == items
            scores = lst.scores()
            assert all(a > b for a, b in zip(scores, scores[1:]))

    @pytest.mark.parametrize("m,u", THEOREM8_CASES)
    def test_theorem8_database_is_well_formed(self, m, u):
        database, info = bpa2_favorable_database(m, u)
        assert database.m == m
        assert database.n == m * (u + 1)

    def test_rejects_m_below_3(self):
        with pytest.raises(GenerationError):
            bpa_favorable_database(2, 5)
        with pytest.raises(GenerationError):
            bpa2_favorable_database(2, 5)

    def test_rejects_u_below_1(self):
        with pytest.raises(GenerationError):
            bpa_favorable_database(4, 0)
        with pytest.raises(GenerationError):
            bpa2_favorable_database(4, 0)


class TestLemma3Separation:
    @pytest.mark.parametrize("m,u", LEMMA3_CASES)
    def test_stop_positions_match_prediction(self, m, u):
        database, info = bpa_favorable_database(m, u)
        k = min(3, info.max_k)
        ta = get_algorithm("ta").run(database, k, SUM)
        bpa = get_algorithm("bpa").run(database, k, SUM)
        assert ta.stop_position == info.expected_ta_stop
        assert bpa.stop_position == info.expected_bpa_stop

    @pytest.mark.parametrize("m,u", LEMMA3_CASES)
    def test_ratio_exceeds_m_minus_1(self, m, u):
        database, info = bpa_favorable_database(m, u)
        k = min(3, info.max_k)
        ta = get_algorithm("ta").run(database, k, SUM)
        bpa = get_algorithm("bpa").run(database, k, SUM)
        assert ta.stop_position / bpa.stop_position >= m - 1
        assert ta.tally.total / bpa.tally.total >= m - 1

    @pytest.mark.parametrize("m,u", LEMMA3_CASES)
    def test_answers_still_correct(self, m, u):
        database, info = bpa_favorable_database(m, u)
        k = min(3, info.max_k)
        expected = [e.score for e in brute_force_topk(database, k, SUM)]
        for name in ("ta", "bpa", "bpa2"):
            result = get_algorithm(name).run(database, k, SUM)
            assert list(result.scores) == pytest.approx(expected), name

    def test_k_can_be_as_large_as_mu(self):
        database, info = bpa_favorable_database(4, 3)
        result = get_algorithm("bpa").run(database, info.max_k, SUM)
        assert result.stop_position == info.expected_bpa_stop


class TestTheorem8Separation:
    @pytest.mark.parametrize("m,u", THEOREM8_CASES)
    def test_access_ratio_matches_prediction(self, m, u):
        database, info = bpa2_favorable_database(m, u)
        k = min(3, info.max_k)
        bpa = get_algorithm("bpa").run(database, k, SUM)
        bpa2 = get_algorithm("bpa2").run(database, k, SUM)
        assert bpa.stop_position == info.expected_ta_stop  # = j
        assert bpa2.rounds == info.expected_bpa2_rounds  # = u + 1
        assert bpa.tally.total == info.j * m * m
        assert bpa2.tally.total == (u + 1) * m * m

    @pytest.mark.parametrize("m,u", THEOREM8_CASES)
    def test_ratio_approaches_m_minus_1(self, m, u):
        database, info = bpa2_favorable_database(m, u)
        k = min(3, info.max_k)
        bpa = get_algorithm("bpa").run(database, k, SUM)
        bpa2 = get_algorithm("bpa2").run(database, k, SUM)
        ratio = bpa.tally.total / bpa2.tally.total
        assert ratio == pytest.approx(info.j / (u + 1))

    def test_figure2_scale_instance_matches_paper_numbers(self):
        # m=3, u=3 reproduces the paper's Figure 2 accounting exactly:
        # BPA 63 accesses, BPA2 36.
        database, info = bpa2_favorable_database(3, 3)
        bpa = get_algorithm("bpa").run(database, 3, SUM)
        bpa2 = get_algorithm("bpa2").run(database, 3, SUM)
        assert bpa.tally.total == 63
        assert bpa2.tally.total == 36

    @pytest.mark.parametrize("m,u", THEOREM8_CASES)
    def test_answers_still_correct(self, m, u):
        database, info = bpa2_favorable_database(m, u)
        k = min(3, info.max_k)
        expected = [e.score for e in brute_force_topk(database, k, SUM)]
        for name in ("ta", "bpa", "bpa2"):
            result = get_algorithm(name).run(database, k, SUM)
            assert list(result.scores) == pytest.approx(expected), name
