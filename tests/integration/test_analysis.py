"""Tests for the analytical models and execution traces."""

import pytest
from hypothesis import given, settings

from repro.algorithms.base import get_algorithm
from repro.analysis import (
    expected_best_position_advance,
    predicted_execution_cost,
    predicted_ta_stop_position_uniform,
    sum_of_uniforms_tail,
    trace_bpa,
    trace_ta,
)
from repro.datagen import UniformGenerator
from repro.datagen.figures import figure1_database
from repro.scoring import SUM
from repro.types import CostModel
from tests.conftest import databases


class TestIrwinHall:
    def test_boundaries(self):
        assert sum_of_uniforms_tail(3, 0.0) == 1.0
        assert sum_of_uniforms_tail(3, -1.0) == 1.0
        assert sum_of_uniforms_tail(3, 3.0) == 0.0

    def test_m1_is_uniform_tail(self):
        assert sum_of_uniforms_tail(1, 0.25) == pytest.approx(0.75)

    def test_m2_triangle(self):
        # P(U1 + U2 >= 1.5) = 0.125 for the triangular distribution.
        assert sum_of_uniforms_tail(2, 1.5) == pytest.approx(0.125)

    def test_symmetry_around_mean(self):
        assert sum_of_uniforms_tail(5, 2.0) == pytest.approx(
            1.0 - sum_of_uniforms_tail(5, 3.0), abs=1e-9
        )

    def test_large_m_uses_gaussian_smoothly(self):
        # One standard deviation above the mean: the tail is ~15.9% both
        # for the exact m=25 formula and the Gaussian branch at m=26.
        exact_25 = sum_of_uniforms_tail(25, 12.5 + (25 / 12) ** 0.5)
        approx_26 = sum_of_uniforms_tail(26, 13.0 + (26 / 12) ** 0.5)
        assert exact_25 == pytest.approx(0.159, abs=0.02)
        assert approx_26 == pytest.approx(0.159, abs=0.02)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            sum_of_uniforms_tail(0, 1.0)


class TestStopPositionPrediction:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_matches_measurement_within_25_percent(self, m):
        n, k = 4000, 10
        predicted = predicted_ta_stop_position_uniform(n, m, k)
        measured = (
            get_algorithm("ta")
            .run(UniformGenerator().generate(n, m, seed=5), k, SUM)
            .stop_position
        )
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_monotone_in_k(self):
        stops = [
            predicted_ta_stop_position_uniform(10_000, 4, k) for k in (1, 10, 100)
        ]
        assert stops == sorted(stops)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            predicted_ta_stop_position_uniform(100, 3, 0)


class TestBestPositionAdvance:
    def test_zero_cursor_no_advance(self):
        assert expected_best_position_advance(1000, 8, 0) == pytest.approx(0.0)

    def test_small_at_paper_operating_point(self):
        # m=8, p/n=0.16: the model says ~2.4 positions — the quantitative
        # reason BPA ~ TA on independent uniform data.
        advance = expected_best_position_advance(100_000, 8, 16_000)
        assert 1.0 < advance < 5.0

    def test_explodes_near_the_end(self):
        assert expected_best_position_advance(100, 8, 100) == float("inf")

    def test_grows_with_m(self):
        a4 = expected_best_position_advance(1000, 4, 300)
        a12 = expected_best_position_advance(1000, 12, 300)
        assert a12 > a4

    def test_matches_measured_bpa_headstart(self):
        n, m, k = 4000, 6, 10
        database = UniformGenerator().generate(n, m, seed=11)
        result = get_algorithm("bpa").run(database, k, SUM)
        p = result.stop_position
        measured_advance = max(result.extras["best_positions"]) - p
        model_advance = expected_best_position_advance(n, m, p)
        # Order-of-magnitude agreement: both must be tiny vs p.
        assert measured_advance <= 10 * (model_advance + 1)
        assert measured_advance < 0.05 * p

    def test_rejects_bad_cursor(self):
        with pytest.raises(ValueError):
            expected_best_position_advance(100, 3, 200)


class TestPredictedCost:
    def test_matches_paper_accounting(self):
        n, m, p = 1000, 4, 50
        model = CostModel.paper(n)
        expected = m * p * 1.0 + m * p * (m - 1) * model.random_cost
        assert predicted_execution_cost(n, m, p) == pytest.approx(expected)

    def test_matches_measured_ta_cost_exactly(self):
        n, m, k = 2000, 4, 5
        database = UniformGenerator().generate(n, m, seed=3)
        result = get_algorithm("ta").run(database, k, SUM)
        model = CostModel.paper(n)
        assert predicted_execution_cost(
            n, m, result.stop_position
        ) == pytest.approx(result.execution_cost(model))


class TestTraces:
    def test_figure1_ta_trace(self):
        trace = trace_ta(figure1_database(), 3)
        assert trace[-1].position == 6
        assert trace[-1].stopped
        assert [r.threshold for r in trace] == [88, 84, 80, 75, 72, 63]

    def test_figure1_bpa_trace(self):
        trace = trace_bpa(figure1_database(), 3)
        assert trace[-1].position == 3
        assert trace[-1].stopped
        assert trace[-1].best_positions == (9, 9, 6)
        assert trace[-1].threshold == 43.0

    @given(case=databases(max_items=18, max_lists=4))
    @settings(max_examples=25)
    def test_lambda_never_exceeds_delta(self, case):
        """The per-round heart of Lemma 1: lambda(p) <= delta(p)."""
        database, k = case
        ta = trace_ta(database, k)
        bpa = trace_bpa(database, k)
        for bpa_round in bpa:
            ta_round = ta[bpa_round.position - 1] if bpa_round.position <= len(ta) else None
            if ta_round is not None:
                assert bpa_round.threshold <= ta_round.threshold + 1e-9

    @given(case=databases(max_items=18, max_lists=4))
    @settings(max_examples=25)
    def test_traces_agree_with_production_algorithms(self, case):
        database, k = case
        ta_trace = trace_ta(database, k)
        bpa_trace = trace_bpa(database, k)
        ta = get_algorithm("ta").run(database, k, SUM)
        bpa = get_algorithm("bpa").run(database, k, SUM)
        assert ta_trace[-1].position == ta.stop_position
        assert bpa_trace[-1].position == bpa.stop_position
        assert list(ta_trace[-1].top_scores) == pytest.approx(list(ta.scores))
        assert list(bpa_trace[-1].top_scores) == pytest.approx(list(bpa.scores))

    @given(case=databases(max_items=18, max_lists=4))
    @settings(max_examples=25)
    def test_best_positions_nondecreasing_along_trace(self, case):
        database, k = case
        previous = (0,) * database.m
        for round_trace in trace_bpa(database, k):
            assert all(
                later >= earlier
                for later, earlier in zip(round_trace.best_positions, previous)
            )
            previous = round_trace.best_positions

    def test_ta_thresholds_nonincreasing(self, simple_database):
        trace = trace_ta(simple_database, 2)
        thresholds = [r.threshold for r in trace]
        assert thresholds == sorted(thresholds, reverse=True)
