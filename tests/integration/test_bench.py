"""Integration tests for the bench harness and figure registry."""

import pytest

from repro.bench.config import PAPER_DEFAULTS, resolve_scale
from repro.bench.experiments import get_figure, list_figures, speedup_factors
from repro.bench.harness import Experiment, ResultRow, ResultTable
from repro.datagen.base import GeneratorSpec


class TestConfig:
    def test_paper_defaults_match_table1(self):
        assert PAPER_DEFAULTS.n == 100_000
        assert PAPER_DEFAULTS.k == 20
        assert PAPER_DEFAULTS.m == 8
        assert PAPER_DEFAULTS.zipf_theta == 0.7

    def test_resolve_scale_names(self):
        assert resolve_scale("smoke").name == "smoke"
        assert resolve_scale("paper").n == 100_000

    def test_resolve_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert resolve_scale().name == "smoke"

    def test_resolve_scale_unknown(self):
        with pytest.raises(KeyError):
            resolve_scale("galactic")

    def test_paper_scale_sweeps_match_figures(self):
        scale = resolve_scale("paper")
        assert scale.m_sweep == tuple(range(2, 19, 2))
        assert scale.k_sweep == tuple(range(10, 101, 10))
        assert scale.n_sweep == tuple(range(25_000, 200_001, 25_000))


class TestFigureRegistry:
    def test_every_paper_figure_is_defined(self):
        expected = {f"fig{i}" for i in range(3, 18)}
        assert expected <= set(list_figures())

    def test_get_figure_unknown(self):
        with pytest.raises(KeyError):
            get_figure("fig99")

    def test_metrics_match_paper_axes(self):
        assert get_figure("fig3").metric == "execution_cost"
        assert get_figure("fig4").metric == "accesses"
        assert get_figure("fig5").metric == "response_time_ms"

    def test_sweeps_match_paper_axes(self):
        assert get_figure("fig3").sweep_name == "m"
        assert get_figure("fig12").sweep_name == "k"
        assert get_figure("fig15").sweep_name == "n"

    def test_correlated_figures_use_paper_alphas(self):
        assert get_figure("fig9").generator.params["alpha"] == 0.001
        assert get_figure("fig10").generator.params["alpha"] == 0.01
        assert get_figure("fig11").generator.params["alpha"] == 0.1
        assert get_figure("fig17").generator.params["alpha"] == 0.0001


class TestHarnessExecution:
    @pytest.fixture(scope="class")
    def table(self, request) -> ResultTable:
        tiny = request.getfixturevalue("tiny_scale")
        experiment = Experiment(
            name="test-exp",
            title="tiny uniform sweep",
            sweep_name="m",
            generator=GeneratorSpec("uniform"),
        )
        return experiment.run(tiny)

    @pytest.fixture(scope="class")
    def tiny_scale(self):
        from repro.bench.config import Scale

        return Scale(
            name="tiny", n=200, k=5, m=3,
            m_sweep=(2, 3), k_sweep=(2, 5), n_sweep=(100, 200), seed=1,
        )

    def test_rows_cover_grid_times_algorithms(self, table):
        assert len(table.rows) == 2 * 3  # two m values, three algorithms

    def test_series_and_value_lookups(self, table):
        assert table.sweep_values == [2, 3]
        assert table.algorithms == ["ta", "bpa", "bpa2"]
        series = table.series("ta")
        assert len(series) == 2
        assert all(v > 0 for v in series)
        assert table.value(2, "ta") == series[0]

    def test_value_unknown_raises(self, table):
        with pytest.raises(KeyError):
            table.value(99, "ta")

    def test_theorem2_visible_in_results(self, table):
        for m in table.sweep_values:
            assert table.value(m, "bpa") <= table.value(m, "ta") * (1 + 1e-9)

    def test_all_metrics_populated(self, table):
        for row in table.rows:
            assert row.execution_cost > 0
            assert row.accesses > 0
            assert row.response_time_ms >= 0
            assert row.stop_position > 0

    def test_to_text_contains_header_and_values(self, table):
        text = table.to_text()
        assert "test-exp" in text
        assert "ta" in text and "bpa2" in text
        assert str(len(text.splitlines())) and len(text.splitlines()) >= 4

    def test_to_csv_has_row_per_measurement(self, table):
        lines = table.to_csv().splitlines()
        assert lines[0].startswith("sweep_name,")
        assert len(lines) == 1 + len(table.rows)

    def test_k_sweep_reuses_database(self, tiny_scale):
        experiment = Experiment(
            name="ksweep", title="k sweep", sweep_name="k",
            generator=GeneratorSpec("uniform"),
        )
        table = experiment.run(tiny_scale)
        assert table.sweep_values == [2, 5]

    def test_custom_sweep_values(self, tiny_scale):
        experiment = Experiment(
            name="custom", title="custom sweep", sweep_name="m",
            generator=GeneratorSpec("uniform"), sweep_values=(2,),
        )
        table = experiment.run(tiny_scale)
        assert table.sweep_values == [2]

    def test_speedup_factors_structure(self, table):
        factors = speedup_factors(table)
        assert set(factors) == {
            "bpa_measured", "bpa_paper", "bpa2_measured", "bpa2_paper"
        }
        assert factors["bpa_paper"][2] == pytest.approx(1.0)
        assert factors["bpa2_paper"][3] == pytest.approx(2.0)
