"""Smoke tests: every shipped example must run and produce sane output."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parents[2] / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "top-20 answers" in out
        assert "bpa2" in out

    def test_paper_walkthrough(self, capsys):
        out = _run("paper_walkthrough.py", capsys)
        assert "TA stops" in out or "<-- TA stops" in out
        assert "<-- BPA stops" in out
        assert "d8=71" in out

    def test_document_retrieval(self, capsys):
        out = _run("document_retrieval.py", capsys)
        assert "top-5 documents" in out
        assert "BPA scanned" in out

    def test_relational_topk(self, capsys):
        out = _run("relational_topk.py", capsys)
        assert "top-5 restaurants" in out
        assert "verified identical to the full-scan answer" in out

    def test_network_monitoring(self, capsys):
        out = _run("network_monitoring.py", capsys)
        assert "dist-bpa2" in out
        assert "fewer messages" in out

    def test_continuous_monitoring(self, capsys):
        out = _run("continuous_monitoring.py", capsys)
        assert "epoch 6" in out
        assert "bpa2 cost" in out

    def test_progressive_search(self, capsys):
        out = _run("progressive_search.py", capsys)
        assert "page 3" in out
        assert "theta=1.5" in out
