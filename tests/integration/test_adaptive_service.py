"""Service-level integration of PR 4's engine features.

* ``gather_many``'s AIMD admission control replaces the fixed
  semaphore: replays stay answer- and cache-accounting-identical to the
  serial path, and every executed query's :class:`ServiceStats` records
  the admission window it ran under.
* The planner's ``wire_protocol`` / ``block_width`` policy knobs route
  eligible queries over the networked transport with pipelined waves
  and block rounds, still serving bit-identical answers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench.batch import QuerySpec
from repro.datagen.base import make_generator
from repro.service import QueryService, ServicePolicy


@pytest.fixture(scope="module")
def database():
    return make_generator("uniform").generate(400, 3, seed=23)


class TestAdaptiveGatherMany:
    def test_adaptive_replay_matches_serial(self, database):
        specs = [QuerySpec("auto", k=1 + (i % 7)) for i in range(30)]
        with QueryService(database, shards=1, pool="serial") as service:
            serial = service.submit_many(specs)
            serial_counts = (
                service.counters.executions,
                service.counters.cache_hits,
            )
        with QueryService(database, shards=1, pool="serial") as service:
            adaptive = asyncio.run(service.gather_many(specs, concurrency=8))
            adaptive_counts = (
                service.counters.executions,
                service.counters.cache_hits,
            )
        assert [r.item_ids for r in serial] == [r.item_ids for r in adaptive]
        assert [r.scores for r in serial] == [r.scores for r in adaptive]
        assert serial_counts == adaptive_counts

    def test_executed_queries_record_their_window(self, database):
        specs = [QuerySpec("ta", k=k) for k in range(1, 9)]
        with QueryService(database, shards=1, pool="serial", cache_size=0) as service:
            results = asyncio.run(service.gather_many(specs, concurrency=4))
        windows = [r.stats.concurrency_window for r in results]
        # Cache off: every query executed, so every stat carries the
        # window it was admitted under, clamped to the ceiling.
        assert all(1 <= w <= 4 for w in windows)

    def test_cache_hits_and_serial_submits_report_window_zero(self, database):
        spec = QuerySpec("bpa2", k=3)
        with QueryService(database, shards=1, pool="serial") as service:
            assert service.submit(spec).stats.concurrency_window == 0
            hit = asyncio.run(service.gather_many([spec], concurrency=2))[0]
            assert hit.stats.cache_hit
            assert hit.stats.concurrency_window == 0

    def test_fixed_semaphore_mode_still_available(self, database):
        specs = [QuerySpec("auto", k=4)] * 6
        with QueryService(database, shards=1, pool="serial") as service:
            results = asyncio.run(
                service.gather_many(specs, concurrency=3, adaptive=False)
            )
        assert all(r.stats.concurrency_window == 0 for r in results)
        assert len({r.item_ids for r in results}) == 1


class TestNetworkedServicePolicy:
    def test_pipelined_block_transport_serves_identical_answers(self, database):
        spec = QuerySpec("bpa2", k=5)
        with QueryService(database, shards=1, pool="serial") as baseline:
            expected = baseline.submit(spec)
        policy = ServicePolicy(
            transport="network", wire_protocol="pipelined", block_width=8
        )
        with QueryService(
            database, shards=1, pool="serial", policy=policy
        ) as service:
            served = service.submit(spec)
        assert served.stats.plan.transport == "network-pipelined"
        assert served.item_ids == expected.item_ids
        assert served.scores == expected.scores

    def test_policy_validates_new_knobs(self):
        with pytest.raises(ValueError, match="wire protocol"):
            ServicePolicy(wire_protocol="carrier-pigeon")
        with pytest.raises(ValueError, match="block_width"):
            ServicePolicy(block_width=0)
