"""Tests for the progressive (streaming) top-k generator."""

import itertools

import pytest
from hypothesis import given, settings

from repro.algorithms.naive import brute_force_topk
from repro.algorithms.progressive import progressive_topk
from repro.datagen import UniformGenerator
from repro.errors import InvalidQueryError
from repro.scoring import MIN, SUM
from repro.types import AccessTally
from tests.conftest import databases


class TestValidation:
    def test_rejects_unknown_mechanism(self, simple_database):
        with pytest.raises(InvalidQueryError):
            next(progressive_topk(simple_database, mechanism="fa"))


class TestOrdering:
    @pytest.mark.parametrize("mechanism", ["ta", "bpa"])
    def test_full_drain_is_the_exact_ranking(self, simple_database, mechanism):
        n = simple_database.n
        expected = [e.score for e in brute_force_topk(simple_database, n, SUM)]
        results = list(progressive_topk(simple_database, mechanism=mechanism))
        assert len(results) == n
        assert [r.score for r in results] == pytest.approx(expected)

    @pytest.mark.parametrize("mechanism", ["ta", "bpa"])
    @given(case=databases(max_items=18, max_lists=4))
    @settings(max_examples=25)
    def test_any_prefix_matches_brute_force(self, case, mechanism):
        database, k = case
        expected = [e.score for e in brute_force_topk(database, k, SUM)]
        prefix = list(
            itertools.islice(progressive_topk(database, mechanism=mechanism), k)
        )
        assert [r.score for r in prefix] == pytest.approx(expected)

    @given(case=databases(max_items=18, max_lists=4, tie_heavy=True))
    @settings(max_examples=20)
    def test_emission_order_is_nonincreasing(self, case):
        database, _k = case
        scores = [r.score for r in progressive_topk(database)]
        assert all(a >= b - 1e-9 for a, b in zip(scores, scores[1:]))

    def test_min_scoring(self, simple_database):
        expected = [e.score for e in brute_force_topk(simple_database, 3, MIN)]
        prefix = list(
            itertools.islice(progressive_topk(simple_database, MIN), 3)
        )
        assert [r.score for r in prefix] == pytest.approx(expected)


class TestLaziness:
    def test_tally_grows_with_consumption(self):
        database = UniformGenerator().generate(2000, 4, seed=6)
        tally = AccessTally()
        stream = progressive_topk(database, tally_out=tally)
        next(stream)
        after_one = tally.total
        assert after_one > 0
        for _ in range(20):
            next(stream)
        after_more = tally.total
        assert after_more > after_one
        # Far from a full scan.
        assert after_more < database.n * database.m

    def test_bpa_mechanism_emits_at_least_as_early_as_ta(self):
        """Lemma 1, streaming form: BPA's prefix never costs more."""
        database = UniformGenerator().generate(1000, 4, seed=7)
        costs = {}
        for mechanism in ("ta", "bpa"):
            tally = AccessTally()
            stream = progressive_topk(
                database, mechanism=mechanism, tally_out=tally
            )
            for _ in range(10):
                next(stream)
            costs[mechanism] = tally.total
        assert costs["bpa"] <= costs["ta"]

    def test_figure1_first_answer_timing(self):
        """On Figure 1 the top item (d8, 71) clears lambda at round 3."""
        from repro.datagen.figures import figure1_database

        database = figure1_database()
        tally = AccessTally()
        stream = progressive_topk(database, mechanism="bpa", tally_out=tally)
        first = next(stream)
        assert first.item == 8
        assert first.score == 71.0
        # 3 rounds * (3 sorted + 6 random) = 27 accesses, as in Example 3.
        assert tally.total == 27
