"""Standing queries over the real socket transport, end to end.

The acceptance path: long-lived subscriptions held by TCP clients
survive a 100+ mutation workload with every pushed delta stream
reconstructing the exact brute-force top-k — the client mirror is built
*only* from the initial ``watched`` answer plus replayed ``delta``
frames, so a single lost, reordered or wrong frame fails the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.base import make_generator
from repro.errors import ProtocolError
from repro.scoring import MIN, SUM
from repro.service import QueryService
from repro.service.workload import (
    WorkloadMutator,
    answers_match,
    dynamic_from,
)
from repro.watch import WatchClient, WatchServer

MUTATIONS = 120  # the acceptance floor is 100


def serving(n=60, m=3, seed=17):
    static = make_generator("uniform").generate(n, m, seed=seed)
    source = dynamic_from(static)
    service = QueryService(source, shards=1, pool="serial")
    return source, service


class TestWatchOverSocket:
    def test_subscription_survives_mutation_storm(self):
        source, service = serving()
        with service, WatchServer(service) as server, \
                WatchClient(server.port) as alpha, \
                WatchClient(server.port) as beta:
            handles = [
                alpha.watch(algorithm="bpa2", k=5, scoring="sum"),
                alpha.watch(algorithm="ta", k=3, scoring="min"),
                beta.watch(algorithm="auto", k=8, scoring="sum"),
            ]
            ks = (5, 3, 8)
            scorings = (SUM, MIN, SUM)
            mutator = WorkloadMutator(source, np.random.default_rng(99))
            for _step in range(MUTATIONS):
                with server.lock:
                    mutator.apply_one()
                for client in (alpha, beta):
                    client.sync()
                    client.drain()
                with server.lock:
                    for handle, k, scoring in zip(handles, ks, scorings):
                        assert answers_match(
                            handle.item_ids,
                            handle.scores,
                            source,
                            k,
                            scoring,
                        ), f"mirror diverged at step {_step}: {handle.id}"
            # The communication win: far fewer pushes than mutations.
            pushed = alpha.pushed_deltas + beta.pushed_deltas
            assert 0 < pushed < MUTATIONS * len(handles)
            # The server saw real maintenance traffic of every kind.
            counters = service.counters
            assert (
                counters.watch_unchanged
                + counters.watch_patched
                + counters.watch_recomputed
            ) == MUTATIONS * len(handles)

    def test_sequence_gap_detection(self):
        source, service = serving(n=20)
        with service, WatchServer(service) as server, \
                WatchClient(server.port) as client:
            handle = client.watch(algorithm="bpa2", k=4, scoring="sum")
            with server.lock:
                source.update_score(0, handle.item_ids[0], 9.0)
            client.sync()
            (delta,) = client.poll()
            skipped = type(delta)(
                subscription=delta.subscription,
                seq=delta.seq + 1,  # pretend one frame vanished
                epoch=delta.epoch,
                cause=delta.cause,
                exits=delta.exits,
                upserts=delta.upserts,
            )
            with pytest.raises(ProtocolError, match="delta gap"):
                handle.apply(skipped)
            assert handle.apply(delta)  # the true frame still lands

    def test_unwatch_stops_the_stream(self):
        source, service = serving(n=20)
        with service, WatchServer(service) as server, \
                WatchClient(server.port) as client:
            handle = client.watch(algorithm="bpa2", k=4, scoring="sum")
            client.unwatch(handle)
            with server.lock:
                source.update_score(0, handle.item_ids[0], 9.0)
            epoch = client.sync()
            assert client.poll() == []
            assert epoch == service.epoch
            with server.lock:
                assert service.subscriptions == ()

    def test_connection_drop_cancels_owned_subscriptions(self):
        source, service = serving(n=20)
        with service, WatchServer(service) as server:
            client = WatchClient(server.port)
            client.watch(algorithm="bpa2", k=4, scoring="sum")
            client.close()
            # The server notices on its next interaction with the dead
            # peer: the push fails and the subscription is cancelled.
            with server.lock:
                source.update_score(0, 0, 9.0)
                source.update_score(1, 0, 9.0)
            with server.lock:
                assert service.subscriptions == ()

    def test_query_and_watch_agree(self):
        source, service = serving(n=30)
        with service, WatchServer(service) as server, \
                WatchClient(server.port) as client:
            handle = client.watch(algorithm="bpa2", k=6, scoring="sum")
            mutator = WorkloadMutator(source, np.random.default_rng(5))
            for _ in range(20):
                with server.lock:
                    mutator.apply_one()
            client.sync()
            client.drain()
            # NB: never hold server.lock across a client request — the
            # serving thread needs it, and the reply would never come.
            _epoch, entries = client.query(
                algorithm="bpa2", k=6, scoring="sum"
            )
            assert entries == handle.entries
