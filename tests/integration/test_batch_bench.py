"""BatchRunner, compare_backends and the `bench compare-backends` CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.batch import (
    BatchRunner,
    QuerySpec,
    compare_backends,
    default_query_batch,
)
from repro.columnar import ColumnarDatabase
from repro.datagen import UniformGenerator
from repro.scoring import MIN, SUM


@pytest.fixture(scope="module")
def database():
    return UniformGenerator().generate(400, 3, seed=13)


class TestBatchRunner:
    def test_backends_produce_identical_batches(self, database):
        batch = default_query_batch(12, algorithm="bpa2", k_max=6)
        python_report = BatchRunner(database, backend="python").run(batch)
        columnar_report = BatchRunner(database, backend="columnar").run(batch)
        assert python_report.queries == columnar_report.queries == 12
        for a, b in zip(python_report.results, columnar_report.results):
            assert a == b
            assert a.extras == b.extras

    def test_kernel_dispatch_is_reported(self, database):
        batch = [
            QuerySpec("bpa2", k=3),
            QuerySpec("ta", k=3),
            QuerySpec("bpa", k=3),
            QuerySpec("naive", k=3),  # no kernel: generic columnar path
            QuerySpec("ta", k=3, options={"memoize": True}),  # kernel gated off
        ]
        report = BatchRunner(database, backend="columnar").run(batch)
        assert report.kernel_queries == 3
        python_report = BatchRunner(database, backend="python").run(batch)
        assert report.results == python_report.results

    def test_python_backend_never_uses_kernels(self, database):
        report = BatchRunner(database, backend="python").run(
            default_query_batch(4)
        )
        assert report.kernel_queries == 0
        assert report.queries_per_second > 0

    def test_mixed_scorings_share_nothing_incorrectly(self, database):
        batch = [
            QuerySpec("bpa2", k=4, scoring=SUM),
            QuerySpec("bpa2", k=4, scoring=MIN),
            QuerySpec("bpa2", k=4, scoring=SUM),
        ]
        runner = BatchRunner(database, backend="columnar")
        report = runner.run(batch)
        from repro.algorithms.base import get_algorithm

        for spec, result in zip(batch, report.results):
            reference = get_algorithm("bpa2").run(database, spec.k, spec.scoring)
            assert result == reference

    def test_accepts_either_database_type(self, database):
        columnar = ColumnarDatabase.from_database(database)
        batch = default_query_batch(3)
        from_python = BatchRunner(database, backend="columnar").run(batch)
        from_columnar = BatchRunner(columnar, backend="columnar").run(batch)
        assert from_python.results == from_columnar.results
        back = BatchRunner(columnar, backend="python").run(batch)
        assert back.results == from_columnar.results

    def test_rejects_unknown_backend(self, database):
        with pytest.raises(ValueError, match="unknown backend"):
            BatchRunner(database, backend="gpu")


class TestBatchEdgeCases:
    """Empty batches and out-of-range k have well-defined outcomes."""

    @pytest.mark.parametrize("backend", ("python", "columnar"))
    def test_empty_batch_is_a_valid_empty_report(self, database, backend):
        report = BatchRunner(database, backend=backend).run([])
        assert report.results == []
        assert report.queries == 0
        assert report.kernel_queries == 0
        assert report.seconds >= 0.0
        assert report.queries_per_second == 0.0

    @pytest.mark.parametrize("backend", ("python", "columnar"))
    def test_k_beyond_n_is_clamped_to_the_full_ranking(self, database, backend):
        runner = BatchRunner(database, backend=backend)
        clamped, _ = runner.run_one(QuerySpec("bpa2", k=database.n + 50))
        exact, _ = runner.run_one(QuerySpec("bpa2", k=database.n))
        assert len(clamped.items) == database.n
        assert clamped.items == exact.items

    def test_clamping_is_identical_across_backends(self, database):
        spec = QuerySpec("ta", k=10_000)
        python_result, _ = BatchRunner(database, backend="python").run_one(spec)
        columnar_result, _ = BatchRunner(
            database, backend="columnar"
        ).run_one(spec)
        assert python_result == columnar_result

    def test_k_below_one_still_raises(self, database):
        from repro.errors import InvalidQueryError

        runner = BatchRunner(database, backend="columnar")
        with pytest.raises(InvalidQueryError):
            runner.run_one(QuerySpec("bpa2", k=0))


class TestCompareBackends:
    def test_report_shape_and_equivalence(self):
        report = compare_backends(n=300, m=3, queries=10, k=5, repeats=1)
        assert report["results_identical"] is True
        assert report["columnar_backend"]["vectorized_kernel_queries"] == 10
        assert report["python_backend"]["seconds"] > 0
        assert report["speedup"] > 0
        json.dumps(report)  # must be JSON-serializable as-is

    def test_repeats_do_not_warm_the_context_cache(self, monkeypatch):
        # Each timed repeat must pay the full cold-batch cost; a cached
        # QueryContext carried across repeats inflates the speedup.
        from repro.bench import batch as batch_module
        from repro.columnar import engine

        builds = []
        original = engine.QueryContext.__init__

        def counting_init(self, database, scoring):
            builds.append(1)
            original(self, database, scoring)

        monkeypatch.setattr(engine.QueryContext, "__init__", counting_init)
        compare_backends(n=60, m=2, queries=4, k=3, repeats=3)
        assert len(builds) == 3  # one context build per columnar repeat

    def test_cli_rejects_bad_k_and_queries(self, capsys):
        from repro.cli import main

        assert main(["bench", "compare-backends", "--n", "50", "--k", "0"]) == 2
        assert "--k must be in 1..50" in capsys.readouterr().err
        assert main(["bench", "compare-backends", "--n", "50", "--k", "99"]) == 2
        capsys.readouterr()
        assert main(["bench", "compare-backends", "--queries", "0"]) == 2
        assert "--queries must be >= 1" in capsys.readouterr().err

    def test_cli_writes_the_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "speedup.json"
        code = main(
            [
                "bench",
                "compare-backends",
                "--n", "200", "--m", "3", "--queries", "6", "--k", "3",
                "--repeats", "1", "--out", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "speedup" in printed and "columnar" in printed
        payload = json.loads(out.read_text())
        assert payload["results_identical"] is True
        assert payload["config"]["queries"] == 6
