"""Integration tests for the async query front-end.

The headline property (ISSUE 3's integration criterion): a Zipf-popular
workload replayed through ``submit_async`` with bounded concurrency
yields *identical* answers and *identical* cache-hit accounting to the
serial ``submit_many`` replay — single-flight coalescing makes
concurrent duplicates reuse one execution exactly like the serial
replay reuses the cache.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench.batch import QuerySpec
from repro.datagen import UniformGenerator
from repro.dynamic import DynamicDatabase
from repro.scoring import MIN, SUM
from repro.service import QueryService, ServicePolicy, normalized_query_key
from repro.service.workload import (
    WorkloadConfig,
    build_database,
    build_workload,
    replay_async,
)

ZIPF_CONFIG = WorkloadConfig(
    generator="zipf",
    n=800,
    m=3,
    seed=13,
    queries=120,
    distinct=15,
    k_max=12,
    zipf_theta=1.0,
)


class TestAsyncMatchesSerial:
    @pytest.fixture(scope="class")
    def zipf_setup(self):
        return build_database(ZIPF_CONFIG), build_workload(ZIPF_CONFIG)

    def test_zipf_replay_concurrency_8_identical_to_serial(self, zipf_setup):
        database, workload = zipf_setup
        with QueryService(database, shards=2, pool="serial") as serial:
            serial_results = serial.submit_many(workload)
            serial_counters = serial.counters
        with QueryService(database, shards=2, pool="serial") as service:
            async_results = asyncio.run(
                service.gather_many(workload, concurrency=8)
            )
            async_counters = service.counters
        assert [(r.item_ids, r.scores) for r in serial_results] == [
            (r.item_ids, r.scores) for r in async_results
        ]
        assert async_counters.queries == serial_counters.queries
        assert async_counters.cache_hits == serial_counters.cache_hits
        assert async_counters.executions == serial_counters.executions

    def test_results_come_back_in_spec_order(self, zipf_setup):
        database, _ = zipf_setup
        specs = [QuerySpec("bpa2", k=k) for k in (1, 7, 3, 7, 1, 5)]
        with QueryService(database, pool="serial") as service:
            results = asyncio.run(service.gather_many(specs, concurrency=4))
        assert [r.stats.plan.k_requested for r in results] == [
            spec.k for spec in specs
        ]

    def test_replay_async_summary_matches_serial_accounting(self, zipf_setup):
        database, workload = zipf_setup
        with QueryService(database, pool="serial") as service:
            summary, results = replay_async(service, workload, concurrency=8)
        assert summary["queries"] == len(workload)
        assert summary["concurrency"] == 8
        assert summary["cache_hits"] == sum(r.stats.cache_hit for r in results)
        assert summary["coalesced"] == sum(r.stats.coalesced for r in results)


class TestCoalescing:
    @pytest.fixture()
    def service(self):
        database = UniformGenerator().generate(400, 3, seed=5)
        with QueryService(database, pool="serial") as service:
            yield service

    def test_identical_concurrent_queries_execute_once(self, service):
        results = asyncio.run(
            service.gather_many([QuerySpec("auto", k=4)] * 6, concurrency=4)
        )
        assert service.counters.executions == 1
        assert service.counters.cache_hits == 5
        assert service.counters.coalesced == 5
        assert all(r.item_ids == results[0].item_ids for r in results)
        assert sum(r.stats.coalesced for r in results) == 5

    def test_coalesced_stats_report_zero_accesses(self, service):
        results = asyncio.run(
            service.gather_many([QuerySpec("ta", k=3)] * 3, concurrency=3)
        )
        executed = [r for r in results if not r.stats.cache_hit]
        reused = [r for r in results if r.stats.cache_hit]
        assert len(executed) == 1 and len(reused) == 2
        assert all(r.stats.tally.total == 0 for r in reused)
        assert executed[0].stats.tally.total > 0

    def test_submit_async_without_semaphore(self, service):
        result = asyncio.run(service.submit_async(QuerySpec("bpa2", k=2)))
        assert result.result.k == 2

    def test_cache_off_disables_coalescing_like_the_serial_path(self):
        database = UniformGenerator().generate(300, 3, seed=8)
        specs = [QuerySpec("bpa2", k=4)] * 4
        with QueryService(database, pool="serial", cache_size=0) as serial:
            serial_results = serial.submit_many(specs)
            assert serial.counters.executions == 4
        with QueryService(database, pool="serial", cache_size=0) as service:
            results = asyncio.run(service.gather_many(specs, concurrency=4))
            assert service.counters.executions == 4
            assert service.counters.cache_hits == 0
            assert service.counters.coalesced == 0
        assert all(not r.stats.cache_hit for r in results)
        assert [(r.item_ids, r.scores) for r in results] == [
            (r.item_ids, r.scores) for r in serial_results
        ]

    def test_distinct_scorings_do_not_coalesce(self, service):
        specs = [QuerySpec("bpa2", k=3), QuerySpec("bpa2", k=3, scoring=MIN)]
        asyncio.run(service.gather_many(specs, concurrency=2))
        assert service.counters.executions == 2

    def test_cancelled_owner_does_not_fail_coalesced_waiters(self, service):
        spec = QuerySpec("bpa2", k=4)

        async def scenario():
            # A zero-permit semaphore parks the owner before execution,
            # so we can cancel it while a waiter is coalesced onto it.
            gate = asyncio.Semaphore(0)
            owner = asyncio.create_task(
                service.submit_async(spec, semaphore=gate)
            )
            await asyncio.sleep(0)  # owner registers as in-flight
            waiter = asyncio.create_task(service.submit_async(spec))
            await asyncio.sleep(0)  # waiter attaches to the owner
            owner.cancel()
            result = await waiter
            with pytest.raises(asyncio.CancelledError):
                await owner
            return result

        result = asyncio.run(scenario())
        # The waiter retried the execution itself instead of inheriting
        # the owner's cancellation.
        assert result.result.k == 4
        assert service.counters.executions == 1

    def test_cancelling_owner_and_waiter_cancels_the_waiter(self, service):
        spec = QuerySpec("bpa2", k=4)

        async def scenario():
            gate = asyncio.Semaphore(0)
            owner = asyncio.create_task(
                service.submit_async(spec, semaphore=gate)
            )
            await asyncio.sleep(0)
            waiter = asyncio.create_task(service.submit_async(spec))
            await asyncio.sleep(0)
            # A whole-batch teardown cancels both: the waiter must end
            # cancelled, not silently retry the execution to completion.
            owner.cancel()
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            with pytest.raises(asyncio.CancelledError):
                await owner

        asyncio.run(scenario())
        assert service.counters.executions == 0


class TestAsyncOverMutableData:
    @staticmethod
    def _mutable_service():
        source = DynamicDatabase.from_score_rows(
            [[float(v) for v in range(10)], [float(10 - v) for v in range(10)]]
        )
        return source, QueryService(source, pool="serial")

    @staticmethod
    def _race_mutation_into(service, source):
        """Make ``_execute_plan`` mutate the source mid-flight, once.

        Models a writer landing between the snapshot read and the cache
        write: the epoch bumps while the execution is in progress, so
        the computed result describes data that no longer exists.
        """
        real = service._execute_plan

        def racing(plan, spec):
            full = real(plan, spec)
            service._execute_plan = real
            source.update_score(0, 9, 100.0)
            source.update_score(1, 9, 100.0)
            return full

        service._execute_plan = racing

    def test_async_mutation_during_flight_does_not_poison_cache(self):
        source, service = self._mutable_service()
        with service:
            self._race_mutation_into(service, source)
            stale = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            fresh = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            again = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
        # The in-flight result is stale but must never be served as a
        # same-epoch hit after the mutation's snapshot rebuild: the
        # delta log sees the gap and *patches* the touched item against
        # the rebuilt snapshot (the answer equals a fresh execution).
        assert stale.item_ids != (9,)
        assert fresh.stats.cache_outcome == "patched"
        assert fresh.item_ids == (9,)
        assert fresh.scores == (200.0,)
        assert again.stats.cache_outcome == "hit"
        assert again.item_ids == (9,)
        # Telemetry reports the epoch each answer was computed under,
        # not whatever the epoch was when it finished.
        assert stale.stats.epoch == 0
        assert fresh.stats.epoch == again.stats.epoch == 2

    def test_sync_mutation_during_flight_does_not_poison_cache(self):
        source, service = self._mutable_service()
        with service:
            self._race_mutation_into(service, source)
            stale = service.submit(QuerySpec("bpa2", k=1))
            fresh = service.submit(QuerySpec("bpa2", k=1))
            again = service.submit(QuerySpec("bpa2", k=1))
        assert stale.item_ids != (9,)
        assert fresh.stats.cache_outcome == "patched"
        assert fresh.item_ids == (9,)
        assert fresh.scores == (200.0,)
        assert again.stats.cache_outcome == "hit"
        assert again.item_ids == (9,)
        assert stale.stats.epoch == 0
        assert fresh.stats.epoch == again.stats.epoch == 2

    def test_mutation_during_flight_misses_under_whole_epoch_policy(self):
        # With the delta log disabled the same race degrades to the
        # legacy behavior: the stale entry is dropped, never patched.
        source = DynamicDatabase.from_score_rows(
            [[float(v) for v in range(10)], [float(10 - v) for v in range(10)]]
        )
        policy = ServicePolicy(delta_log_depth=0)
        service = QueryService(source, pool="serial", policy=policy)
        with service:
            self._race_mutation_into(service, source)
            stale = service.submit(QuerySpec("bpa2", k=1))
            fresh = service.submit(QuerySpec("bpa2", k=1))
        assert stale.item_ids != (9,)
        assert fresh.stats.cache_outcome == "miss"
        assert fresh.item_ids == (9,)

    def test_sync_submit_defers_rebuild_while_async_in_flight(self):
        source, service = self._mutable_service()
        with service:

            async def scenario():
                gate = asyncio.Semaphore(0)
                flight = asyncio.create_task(
                    service.submit_async(QuerySpec("bpa2", k=1), semaphore=gate)
                )
                await asyncio.sleep(0)  # flight registers, parks on gate
                source.update_score(0, 9, 100.0)
                source.update_score(1, 9, 100.0)
                # The sync submit cannot reload the executor under the
                # parked flight: it serves the pinned snapshot instead.
                during = service.submit(QuerySpec("bpa2", k=1))
                refreshes_during = service.counters.snapshot_refreshes
                gate.release()
                await flight
                after = await service.submit_async(QuerySpec("bpa2", k=1))
                return during, refreshes_during, after

            during, refreshes_during, after = asyncio.run(scenario())
        assert refreshes_during == 0  # the rebuild was deferred
        assert not during.stats.cache_hit
        assert during.item_ids != (9,)  # the pinned (pre-mutation) snapshot
        assert during.stats.epoch == 0  # ... and telemetry says so
        assert after.item_ids == (9,)
        assert after.scores == (200.0,)  # equals a fresh post-mutation run
        assert after.stats.epoch == 2
        assert service.counters.snapshot_refreshes == 1
        # The deferred query did not cache its pinned-snapshot answer;
        # what the flight cached under epoch 0 is delta-patched, not
        # served stale.
        assert after.stats.cache_outcome == "patched"

    def test_mutation_between_gathers_refreshes_snapshot(self):
        source = DynamicDatabase.from_score_rows(
            [[float(v) for v in range(10)], [float(10 - v) for v in range(10)]]
        )
        with QueryService(source, pool="serial") as service:
            before = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            source.update_score(0, 9, 100.0)
            source.update_score(1, 9, 100.0)
            after = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
        assert before.item_ids != after.item_ids
        assert after.item_ids == (9,)
        assert service.counters.snapshot_refreshes == 1

    def test_closed_service_rejects_async_submits(self):
        database = UniformGenerator().generate(50, 2, seed=1)
        service = QueryService(database, pool="serial")
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            asyncio.run(service.submit_async(QuerySpec("ta", k=1)))


class TestDeltaEpochRaces:
    """Mutations racing the async path must never mis-key a cache entry.

    The discipline under test: entries are always keyed to the
    *snapshot* epoch the execution read, and revalidation/patching only
    ever advances an entry to the epoch of the lookup's own snapshot —
    so a mutation landing between coalesced waiters (or mid-execution)
    can never produce an entry stamped with an epoch whose data it
    never saw.
    """

    _KEY = normalized_query_key("bpa2", 1, SUM, {})

    @staticmethod
    def _mutable_service():
        source = DynamicDatabase.from_score_rows(
            [[float(v) for v in range(10)], [float(10 - v) for v in range(10)]]
        )
        return source, QueryService(source, pool="serial")

    def test_mutation_between_coalesced_waiters_keeps_snapshot_epoch(self):
        source, service = self._mutable_service()
        with service:

            async def scenario():
                gate = asyncio.Semaphore(0)
                owner = asyncio.create_task(
                    service.submit_async(QuerySpec("bpa2", k=1), semaphore=gate)
                )
                await asyncio.sleep(0)  # owner in flight under epoch 0
                waiter = asyncio.create_task(
                    service.submit_async(QuerySpec("bpa2", k=1))
                )
                await asyncio.sleep(0)  # waiter coalesces onto the owner
                # The mutation lands between the coalesced waiters.
                source.update_score(0, 9, 100.0)
                source.update_score(1, 9, 100.0)
                gate.release()
                return await owner, await waiter

            owner_res, waiter_res = asyncio.run(scenario())
            # Both flights served (and cached) the epoch-0 snapshot; the
            # entry must be keyed there, not at the live epoch (2).
            assert owner_res.stats.epoch == waiter_res.stats.epoch == 0
            assert waiter_res.stats.coalesced
            assert service.cache.entry_epoch(self._KEY) == 0
            assert service.epoch == 2

            # The next lookup sees the two-epoch gap, patches the entry
            # against the rebuilt snapshot, and re-keys it correctly.
            after = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            assert after.stats.cache_outcome == "patched"
            assert after.item_ids == (9,)
            assert after.scores == (200.0,)
            assert service.cache.entry_epoch(self._KEY) == 2

    def test_patched_entry_serves_hits_under_its_new_epoch(self):
        source, service = self._mutable_service()
        with service:
            asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            source.update_score(0, 9, 100.0)
            source.update_score(1, 9, 100.0)
            patched = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            again = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
        assert patched.stats.cache_outcome == "patched"
        assert again.stats.cache_outcome == "hit"
        assert again.item_ids == (9,)
        assert service.counters.executions == 1  # only the first query ran

    def test_revalidated_entry_is_restamped_not_requeried(self):
        source, service = self._mutable_service()
        with service:
            first = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            # Item 5's total drops from 10 to 8: still below item 0's 10
            # under the id tie-break, so the cached top-1 cannot change.
            source.update_score(0, 5, 3.0)
            second = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
        assert not first.stats.cache_hit
        assert second.stats.cache_outcome == "revalidated"
        assert second.item_ids == first.item_ids
        assert second.stats.epoch == 1
        assert service.cache.entry_epoch(self._KEY) == 1
        assert service.counters.executions == 1

    def test_deferred_sync_submit_cannot_advance_cache_entries(self):
        source, service = self._mutable_service()
        with service:

            async def scenario():
                await service.submit_async(QuerySpec("bpa2", k=1))
                gate = asyncio.Semaphore(0)
                flight = asyncio.create_task(
                    service.submit_async(QuerySpec("ta", k=2), semaphore=gate)
                )
                await asyncio.sleep(0)  # flight pins the snapshot
                source.update_score(0, 9, 100.0)
                source.update_score(1, 9, 100.0)
                # The deferred sync submit serves the pinned snapshot and
                # must leave the epoch-0 entry untouched (no revalidation
                # to an epoch whose data it cannot prove anything about).
                during = service.submit(QuerySpec("bpa2", k=1))
                entry_epoch_during = service.cache.entry_epoch(self._KEY)
                gate.release()
                await flight
                return during, entry_epoch_during

            during, entry_epoch_during = asyncio.run(scenario())
            assert during.stats.epoch == 0
            assert entry_epoch_during == 0
            after = service.submit(QuerySpec("bpa2", k=1))
            assert after.stats.cache_outcome == "patched"
            assert after.item_ids == (9,)
            assert service.cache.entry_epoch(self._KEY) == 2
