"""Integration tests for the async query front-end.

The headline property (ISSUE 3's integration criterion): a Zipf-popular
workload replayed through ``submit_async`` with bounded concurrency
yields *identical* answers and *identical* cache-hit accounting to the
serial ``submit_many`` replay — single-flight coalescing makes
concurrent duplicates reuse one execution exactly like the serial
replay reuses the cache.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench.batch import QuerySpec
from repro.datagen import UniformGenerator
from repro.dynamic import DynamicDatabase
from repro.scoring import MIN
from repro.service import QueryService
from repro.service.workload import (
    WorkloadConfig,
    build_database,
    build_workload,
    replay_async,
)

ZIPF_CONFIG = WorkloadConfig(
    generator="zipf",
    n=800,
    m=3,
    seed=13,
    queries=120,
    distinct=15,
    k_max=12,
    zipf_theta=1.0,
)


class TestAsyncMatchesSerial:
    @pytest.fixture(scope="class")
    def zipf_setup(self):
        return build_database(ZIPF_CONFIG), build_workload(ZIPF_CONFIG)

    def test_zipf_replay_concurrency_8_identical_to_serial(self, zipf_setup):
        database, workload = zipf_setup
        with QueryService(database, shards=2, pool="serial") as serial:
            serial_results = serial.submit_many(workload)
            serial_counters = serial.counters
        with QueryService(database, shards=2, pool="serial") as service:
            async_results = asyncio.run(
                service.gather_many(workload, concurrency=8)
            )
            async_counters = service.counters
        assert [(r.item_ids, r.scores) for r in serial_results] == [
            (r.item_ids, r.scores) for r in async_results
        ]
        assert async_counters.queries == serial_counters.queries
        assert async_counters.cache_hits == serial_counters.cache_hits
        assert async_counters.executions == serial_counters.executions

    def test_results_come_back_in_spec_order(self, zipf_setup):
        database, _ = zipf_setup
        specs = [QuerySpec("bpa2", k=k) for k in (1, 7, 3, 7, 1, 5)]
        with QueryService(database, pool="serial") as service:
            results = asyncio.run(service.gather_many(specs, concurrency=4))
        assert [r.stats.plan.k_requested for r in results] == [
            spec.k for spec in specs
        ]

    def test_replay_async_summary_matches_serial_accounting(self, zipf_setup):
        database, workload = zipf_setup
        with QueryService(database, pool="serial") as service:
            summary, results = replay_async(service, workload, concurrency=8)
        assert summary["queries"] == len(workload)
        assert summary["concurrency"] == 8
        assert summary["cache_hits"] == sum(r.stats.cache_hit for r in results)
        assert summary["coalesced"] == sum(r.stats.coalesced for r in results)


class TestCoalescing:
    @pytest.fixture()
    def service(self):
        database = UniformGenerator().generate(400, 3, seed=5)
        with QueryService(database, pool="serial") as service:
            yield service

    def test_identical_concurrent_queries_execute_once(self, service):
        results = asyncio.run(
            service.gather_many([QuerySpec("auto", k=4)] * 6, concurrency=4)
        )
        assert service.counters.executions == 1
        assert service.counters.cache_hits == 5
        assert service.counters.coalesced == 5
        assert all(r.item_ids == results[0].item_ids for r in results)
        assert sum(r.stats.coalesced for r in results) == 5

    def test_coalesced_stats_report_zero_accesses(self, service):
        results = asyncio.run(
            service.gather_many([QuerySpec("ta", k=3)] * 3, concurrency=3)
        )
        executed = [r for r in results if not r.stats.cache_hit]
        reused = [r for r in results if r.stats.cache_hit]
        assert len(executed) == 1 and len(reused) == 2
        assert all(r.stats.tally.total == 0 for r in reused)
        assert executed[0].stats.tally.total > 0

    def test_submit_async_without_semaphore(self, service):
        result = asyncio.run(service.submit_async(QuerySpec("bpa2", k=2)))
        assert result.result.k == 2

    def test_cache_off_disables_coalescing_like_the_serial_path(self):
        database = UniformGenerator().generate(300, 3, seed=8)
        specs = [QuerySpec("bpa2", k=4)] * 4
        with QueryService(database, pool="serial", cache_size=0) as serial:
            serial_results = serial.submit_many(specs)
            assert serial.counters.executions == 4
        with QueryService(database, pool="serial", cache_size=0) as service:
            results = asyncio.run(service.gather_many(specs, concurrency=4))
            assert service.counters.executions == 4
            assert service.counters.cache_hits == 0
            assert service.counters.coalesced == 0
        assert all(not r.stats.cache_hit for r in results)
        assert [(r.item_ids, r.scores) for r in results] == [
            (r.item_ids, r.scores) for r in serial_results
        ]

    def test_distinct_scorings_do_not_coalesce(self, service):
        specs = [QuerySpec("bpa2", k=3), QuerySpec("bpa2", k=3, scoring=MIN)]
        asyncio.run(service.gather_many(specs, concurrency=2))
        assert service.counters.executions == 2


class TestAsyncOverMutableData:
    def test_mutation_between_gathers_refreshes_snapshot(self):
        source = DynamicDatabase.from_score_rows(
            [[float(v) for v in range(10)], [float(10 - v) for v in range(10)]]
        )
        with QueryService(source, pool="serial") as service:
            before = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
            source.update_score(0, 9, 100.0)
            source.update_score(1, 9, 100.0)
            after = asyncio.run(service.submit_async(QuerySpec("bpa2", k=1)))
        assert before.item_ids != after.item_ids
        assert after.item_ids == (9,)
        assert service.counters.snapshot_refreshes == 1

    def test_closed_service_rejects_async_submits(self):
        database = UniformGenerator().generate(50, 2, seed=1)
        service = QueryService(database, pool="serial")
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            asyncio.run(service.submit_async(QuerySpec("ta", k=1)))
