"""Tests for the theta-approximation variants of TA, BPA and BPA2.

Fagin's theta-approximation guarantee: if the algorithm stops once k
items reach ``threshold / theta``, then every item it did NOT return has
an overall score at most ``theta`` times the k-th returned score.
"""

import pytest
from hypothesis import given, settings

from repro.algorithms.base import get_algorithm
from repro.datagen import UniformGenerator
from repro.errors import InvalidQueryError
from repro.scoring import SUM
from tests.conftest import databases

NAMES = ("ta", "bpa", "bpa2")


class TestValidation:
    @pytest.mark.parametrize("name", NAMES)
    def test_rejects_theta_below_one(self, name):
        with pytest.raises(InvalidQueryError):
            get_algorithm(name, approximation=0.5)

    @pytest.mark.parametrize("name", NAMES)
    def test_exposes_factor(self, name):
        assert get_algorithm(name, approximation=1.5).approximation == 1.5


class TestExactWhenThetaIsOne:
    @pytest.mark.parametrize("name", NAMES)
    def test_theta_one_is_the_exact_algorithm(self, simple_database, name):
        exact = get_algorithm(name).run(simple_database, 2, SUM)
        theta1 = get_algorithm(name, approximation=1.0).run(simple_database, 2, SUM)
        assert theta1.tally == exact.tally
        assert theta1.same_scores(exact)


def _check_guarantee(database, k, result, theta):
    """Every non-returned item scores <= theta * (k-th returned score)."""
    returned = set(result.item_ids)
    kth = min(result.scores)
    for item in database.item_ids:
        if item not in returned:
            overall = sum(database.local_scores(item))
            assert overall <= theta * kth + 1e-9
    # Returned scores must be genuine overall scores.
    for entry in result.items:
        assert sum(database.local_scores(entry.item)) == pytest.approx(entry.score)


class TestGuarantee:
    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("theta", [1.1, 1.5, 2.0])
    @given(case=databases(max_items=20, max_lists=4))
    @settings(max_examples=20)
    def test_theta_guarantee_on_random_databases(self, case, name, theta):
        database, k = case
        result = get_algorithm(name, approximation=theta).run(database, k, SUM)
        assert result.k == k
        _check_guarantee(database, k, result, theta)

    @pytest.mark.parametrize("name", NAMES)
    def test_theta_guarantee_on_uniform(self, name):
        database = UniformGenerator().generate(1500, 4, seed=9)
        theta = 1.25
        result = get_algorithm(name, approximation=theta).run(database, 10, SUM)
        _check_guarantee(database, 10, result, theta)


class TestCostSavings:
    @pytest.mark.parametrize("name", NAMES)
    def test_larger_theta_never_costs_more(self, name):
        database = UniformGenerator().generate(1500, 4, seed=10)
        costs = []
        for theta in (1.0, 1.2, 1.5, 2.0):
            result = get_algorithm(name, approximation=theta).run(database, 10, SUM)
            costs.append(result.tally.total)
        assert costs == sorted(costs, reverse=True) or all(
            later <= earlier for earlier, later in zip(costs, costs[1:])
        )

    def test_theta_2_saves_substantially_on_uniform(self):
        database = UniformGenerator().generate(3000, 6, seed=11)
        exact = get_algorithm("ta").run(database, 20, SUM)
        approx = get_algorithm("ta", approximation=2.0).run(database, 20, SUM)
        assert approx.tally.total < exact.tally.total * 0.5
