"""Integration tests for the simulated distributed layer."""

import pytest
from hypothesis import given, settings

from repro.algorithms.base import get_algorithm
from repro.algorithms.naive import brute_force_topk
from repro.datagen import UniformGenerator
from repro.distributed import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
    DistributedTPUT,
)
from repro.distributed.network import SimulatedNetwork, payload_size
from repro.distributed.nodes import ListOwnerNode
from repro.errors import InvalidQueryError, ProtocolError, ScoringError
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList
from repro.scoring import MIN, SUM
from tests.conftest import databases


@pytest.fixture(scope="module")
def uniform_db() -> Database:
    return UniformGenerator().generate(400, 4, seed=17)


class TestNetworkPrimitives:
    def test_payload_size_numbers(self):
        assert payload_size(3) == 8
        assert payload_size(2.5) == 8
        assert payload_size(None) == 1
        assert payload_size(True) == 1

    def test_payload_size_containers(self):
        assert payload_size({"a": 1}) == 1 + 8
        assert payload_size([1, 2, 3]) == 24
        assert payload_size((1.0, "xy")) == 10

    def test_payload_size_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            payload_size(object())

    def test_network_counts_round_trips(self):
        network = SimulatedNetwork()
        owner = ListOwnerNode(SortedList([(0, 2.0), (1, 1.0)]))
        network.register("owner/0", owner)
        network.request("owner/0", "sorted_next")
        assert network.stats.messages == 2
        assert network.stats.by_kind["sorted_next"] == 2
        assert network.stats.bytes > 0

    def test_duplicate_registration_rejected(self):
        network = SimulatedNetwork()
        owner = ListOwnerNode(SortedList([(0, 1.0)]))
        network.register("a", owner)
        with pytest.raises(ValueError):
            network.register("a", owner)

    def test_unknown_address_rejected(self):
        with pytest.raises(KeyError):
            SimulatedNetwork().request("nowhere", "sorted_next")

    def test_reset_stats(self):
        network = SimulatedNetwork()
        owner = ListOwnerNode(SortedList([(0, 1.0)]))
        network.register("a", owner)
        network.request("a", "sorted_next")
        network.reset_stats()
        assert network.stats.messages == 0


class TestListOwnerNode:
    @pytest.fixture()
    def owner(self) -> ListOwnerNode:
        return ListOwnerNode(
            SortedList([(0, 5.0), (1, 4.0), (2, 3.0), (3, 2.0)]),
            include_position=True,
        )

    def test_sorted_next_response(self, owner):
        response = owner.handle("sorted_next", {})
        assert response["item"] == 0
        assert response["score"] == 5.0
        assert response["position"] == 1
        assert response["bp_score"] == 5.0  # bp advanced 0 -> 1

    def test_random_lookup_response(self, owner):
        response = owner.handle("random_lookup", {"item": 2})
        assert response["score"] == 3.0
        assert response["position"] == 3

    def test_direct_next_walks_best_position(self, owner):
        first = owner.handle("direct_next", {})
        second = owner.handle("direct_next", {})
        assert (first["item"], second["item"]) == (0, 1)
        assert owner.best_position == 2

    def test_direct_next_reports_exhaustion(self, owner):
        for _ in range(4):
            owner.handle("direct_next", {})
        assert owner.handle("direct_next", {}) == {"exhausted": True}

    def test_top_returns_prefix(self, owner):
        response = owner.handle("top", {"count": 2})
        assert response["entries"] == [(0, 5.0), (1, 4.0)]

    def test_get_scores_above_continues_from_cursor(self, owner):
        owner.handle("top", {"count": 1})
        response = owner.handle("get_scores_above", {"threshold": 3.0})
        assert response["entries"] == [(1, 4.0), (2, 3.0)]

    def test_unknown_request_kind(self, owner):
        with pytest.raises(ProtocolError):
            owner.handle("drop_table", {})

    def test_reset_clears_state(self, owner):
        owner.handle("sorted_next", {})
        owner.handle("reset", {})
        assert owner.best_position == 0
        assert owner.accessor.tally.total == 0

    def test_best_position_score_inf_before_any_access(self, owner):
        assert owner.best_position_score() == float("inf")


class TestDriversMatchCentralized:
    def test_dist_ta_matches_ta(self, uniform_db):
        central = get_algorithm("ta").run(uniform_db, 10, SUM)
        distributed = DistributedTA().run(uniform_db, 10, SUM)
        assert distributed.same_scores(central)
        assert distributed.tally == central.tally
        assert distributed.stop_position == central.stop_position

    def test_dist_bpa_matches_bpa(self, uniform_db):
        central = get_algorithm("bpa").run(uniform_db, 10, SUM)
        distributed = DistributedBPA().run(uniform_db, 10, SUM)
        assert distributed.same_scores(central)
        assert distributed.tally == central.tally
        assert distributed.stop_position == central.stop_position

    def test_dist_bpa2_matches_bpa2(self, uniform_db):
        central = get_algorithm("bpa2").run(uniform_db, 10, SUM)
        distributed = DistributedBPA2().run(uniform_db, 10, SUM)
        assert distributed.same_scores(central)
        assert distributed.tally == central.tally

    def test_tput_matches_brute_force(self, uniform_db):
        expected = [e.score for e in brute_force_topk(uniform_db, 10, SUM)]
        result = DistributedTPUT().run(uniform_db, 10, SUM)
        assert list(result.scores) == pytest.approx(expected)

    @given(case=databases(max_items=16, max_lists=4))
    @settings(max_examples=25)
    def test_all_drivers_correct_on_random_databases(self, case):
        database, k = case
        expected = [e.score for e in brute_force_topk(database, k, SUM)]
        for driver in (DistributedTA(), DistributedBPA(), DistributedBPA2(),
                       DistributedTPUT()):
            result = driver.run(database, k, SUM)
            assert list(result.scores) == pytest.approx(expected), driver.name


class TestCommunicationAccounting:
    def test_messages_are_twice_accesses_for_rpc_drivers(self, uniform_db):
        for driver in (DistributedTA(), DistributedBPA(), DistributedBPA2()):
            result = driver.run(uniform_db, 5, SUM)
            assert result.extras["network"]["messages"] == 2 * result.tally.total

    def test_bpa_ships_more_bytes_than_ta(self, uniform_db):
        """BPA transfers seen positions; TA does not (paper Section 5)."""
        ta_bytes = DistributedTA().run(uniform_db, 5, SUM).extras["network"]["bytes"]
        bpa_bytes = DistributedBPA().run(uniform_db, 5, SUM).extras["network"]["bytes"]
        assert bpa_bytes > ta_bytes

    def test_bpa2_uses_fewest_messages_of_rpc_drivers(self, uniform_db):
        results = {
            driver.name: driver.run(uniform_db, 5, SUM)
            for driver in (DistributedTA(), DistributedBPA(), DistributedBPA2())
        }
        messages = {
            name: r.extras["network"]["messages"] for name, r in results.items()
        }
        assert messages["dist-bpa2"] <= messages["dist-bpa"]
        assert messages["dist-bpa2"] <= messages["dist-ta"]

    def test_tput_uses_constant_round_trips(self, uniform_db):
        result = DistributedTPUT().run(uniform_db, 5, SUM)
        m = uniform_db.m
        # Phases 1 and 2 are one round trip per owner; phase 3 adds one
        # round trip per missing candidate score.
        phase12 = 2 * (2 * m)
        assert result.extras["network"]["by_kind"]["top"] == 2 * m
        assert result.extras["network"]["by_kind"]["get_scores_above"] == 2 * m
        assert result.extras["network"]["messages"] >= phase12
        assert result.rounds == 3


class TestTPUTBehaviour:
    def test_rejects_non_sum_scoring(self, uniform_db):
        with pytest.raises(ScoringError):
            DistributedTPUT().run(uniform_db, 5, MIN)

    def test_rejects_bad_k(self, uniform_db):
        with pytest.raises(InvalidQueryError):
            DistributedTPUT().run(uniform_db, 0, SUM)

    def test_not_instance_optimal_pathology(self):
        """The paper's Section 7 example: a flat list defeats TPUT.

        One list holds many items just above the uniform threshold
        tau/m, forcing phase 2 to ship nearly the whole list, while
        BPA2 stops after a handful of accesses.
        """
        n = 300
        # List 1: one clear winner (score 100), then tiny scores; after
        # phase 1, tau = 100 and the uniform threshold is tau/m = 50.
        list1 = [(0, 100.0)] + [(i, 1.0 - i * 1e-4) for i in range(1, n)]
        # List 2: every other item scores ~96 — just above the uniform
        # threshold — so phase 2 must ship the whole list.
        list2 = [(i, 96.0 - i * 1e-4) for i in range(1, n)] + [(0, 90.0)]
        database = Database.from_ranked_lists([list1, list2])
        tput = DistributedTPUT().run(database, 1, SUM)
        bpa2 = get_algorithm("bpa2").run(database, 1, SUM)
        assert tput.items[0].item == 0
        assert tput.tally.total > n  # fetched (almost) everything
        assert bpa2.tally.total < n // 4  # adaptive algorithms stay cheap

    def test_extras_report_phases(self, uniform_db):
        result = DistributedTPUT().run(uniform_db, 5, SUM)
        assert result.extras["tau"] > 0
        assert result.extras["tau2"] >= result.extras["tau"]
        assert result.extras["candidates"] >= 5
