"""Explicit boundary coverage across all algorithms.

These complement the hypothesis properties with named, deterministic
corner cases: single-item databases, single lists, k = n, all-equal
scores, negative scores (the Gaussian family), and huge score gaps.
"""

import pytest

from repro.algorithms.base import get_algorithm
from repro.algorithms.naive import brute_force_topk
from repro.lists.database import Database
from repro.scoring import SUM

ALL = ("naive", "fa", "ta", "bpa", "bpa2", "qc")
EXACT = ("naive", "fa", "ta", "bpa", "bpa2", "qc")


def _agree(database, k):
    expected = [e.score for e in brute_force_topk(database, k, SUM)]
    for name in EXACT:
        result = get_algorithm(name).run(database, k, SUM)
        assert list(result.scores) == pytest.approx(expected), name
        assert result.k == k


class TestSingleItem:
    def test_n1_m1(self):
        _agree(Database.from_score_rows([[5.0]]), 1)

    def test_n1_many_lists(self):
        _agree(Database.from_score_rows([[5.0], [2.0], [9.0]]), 1)

    @pytest.mark.parametrize("name", ALL)
    def test_stop_position_is_1(self, name):
        database = Database.from_score_rows([[5.0], [2.0]])
        result = get_algorithm(name).run(database, 1, SUM)
        assert result.stop_position == 1


class TestKEqualsN:
    def test_small(self):
        database = Database.from_score_rows(
            [[3.0, 1.0, 2.0], [1.0, 3.0, 2.0]]
        )
        _agree(database, 3)

    @pytest.mark.parametrize("name", ALL)
    def test_returns_every_item(self, name):
        database = Database.from_score_rows(
            [[3.0, 1.0, 2.0, 5.0], [1.0, 3.0, 2.0, 0.5]]
        )
        result = get_algorithm(name).run(database, 4, SUM)
        assert sorted(result.item_ids) == [0, 1, 2, 3]


class TestDegenerateScores:
    def test_all_scores_equal(self):
        database = Database.from_score_rows([[7.0] * 6, [7.0] * 6])
        _agree(database, 3)

    @pytest.mark.parametrize("name", ("ta", "bpa"))
    def test_all_equal_stops_in_k_rounds(self, name):
        # Every item has the same overall score, so the threshold test
        # passes as soon as Y is full.
        database = Database.from_score_rows([[7.0] * 6, [7.0] * 6])
        result = get_algorithm(name).run(database, 2, SUM)
        assert result.stop_position == 2

    def test_negative_scores(self):
        # The Gaussian family produces negatives; sum stays monotonic.
        database = Database.from_score_rows(
            [[-1.0, -5.0, 2.0, 0.0], [-2.0, 1.0, -3.0, 0.5]]
        )
        _agree(database, 2)

    def test_huge_gaps(self):
        database = Database.from_score_rows(
            [[1e12, 1.0, 0.5, 0.0], [1e-12, 1e12, 0.25, 0.125]]
        )
        _agree(database, 2)

    def test_zero_scores_everywhere(self):
        database = Database.from_score_rows([[0.0] * 5, [0.0] * 5])
        _agree(database, 3)


class TestReverseCorrelation:
    def test_anti_correlated_lists(self):
        # List 2 is list 1 reversed: the hardest case for early stopping,
        # every algorithm must still be correct.
        forward = [float(i) for i in range(20)]
        database = Database.from_score_rows([forward, forward[::-1]])
        _agree(database, 4)

    @pytest.mark.parametrize("name", ("ta", "bpa"))
    def test_anti_correlated_forces_deep_scan(self, name):
        forward = [float(i) for i in range(40)]
        database = Database.from_score_rows([forward, forward[::-1]])
        result = get_algorithm(name).run(database, 1, SUM)
        # Best overall is ~n-1 everywhere; threshold starts near 2(n-1)
        # and the scan must go roughly half the list deep.
        assert result.stop_position >= 10


class TestRerunDeterminism:
    @pytest.mark.parametrize("name", ALL)
    def test_same_query_twice_identical(self, simple_database, name):
        first = get_algorithm(name).run(simple_database, 3, SUM)
        second = get_algorithm(name).run(simple_database, 3, SUM)
        assert first.items == second.items
        assert first.tally == second.tally
        assert first.stop_position == second.stop_position
