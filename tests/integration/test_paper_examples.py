"""Exact reproduction of the paper's worked examples (Figures 1 and 2).

These are the strongest fidelity tests in the suite: every number below
is printed in the paper (Sections 3-5), and the implementations must hit
them exactly.
"""

import pytest

from repro.algorithms.base import get_algorithm
from repro.datagen.figures import (
    FIGURE1_OVERALL,
    FIGURE1_THRESHOLDS,
    FIGURE2_OVERALL,
    FIGURE2_THRESHOLDS,
    figure1_database,
    figure2_database,
)
from repro.scoring import SUM

K = 3  # all worked examples use a top-3 query with sum scoring


@pytest.fixture(scope="module")
def fig1():
    return figure1_database()


@pytest.fixture(scope="module")
def fig2():
    return figure2_database()


class TestFigure1Data:
    """The encoded database must match the printed figure."""

    def test_shape(self, fig1):
        assert fig1.m == 3
        assert fig1.n == 12

    @pytest.mark.parametrize(
        "list_index,expected_prefix",
        [
            (0, [(1, 30), (4, 28), (9, 27), (3, 26), (7, 25),
                 (8, 23), (5, 17), (6, 14), (2, 11), (11, 10)]),
            (1, [(2, 28), (6, 27), (7, 25), (5, 24), (9, 23),
                 (1, 21), (8, 20), (3, 14), (4, 13), (14, 12)]),
            (2, [(3, 30), (5, 29), (8, 28), (4, 25), (2, 24),
                 (6, 19), (13, 15), (1, 14), (9, 12), (7, 11)]),
        ],
    )
    def test_printed_prefixes(self, fig1, list_index, expected_prefix):
        lst = fig1.lists[list_index]
        actual = [(lst.item_at(p), lst.score_at(p)) for p in range(1, 11)]
        assert actual == [(i, float(s)) for i, s in expected_prefix]

    def test_overall_scores_column(self, fig1):
        for item, expected in FIGURE1_OVERALL.items():
            assert sum(fig1.local_scores(item)) == expected

    def test_threshold_column(self, fig1):
        for position, expected in enumerate(FIGURE1_THRESHOLDS, start=1):
            threshold = sum(lst.score_at(position) for lst in fig1.lists)
            assert threshold == expected

    def test_labels(self, fig1):
        assert fig1.label(1) == "d1"
        assert fig1.label(14) == "d14"


class TestExample1FA:
    """Example 1: FA stops at position 8."""

    def test_fa_stops_at_8(self, fig1):
        result = get_algorithm("fa").run(fig1, K, SUM)
        assert result.stop_position == 8

    def test_fa_answers(self, fig1):
        result = get_algorithm("fa").run(fig1, K, SUM)
        assert set(result.item_ids) == {8, 3, 5}
        assert sorted(result.scores, reverse=True) == [71.0, 70.0, 70.0]


class TestExample2TA:
    """Example 2: TA stops at position 6 with 18 sorted + 36 random accesses."""

    def test_ta_stops_at_6(self, fig1):
        result = get_algorithm("ta").run(fig1, K, SUM)
        assert result.stop_position == 6

    def test_ta_access_counts(self, fig1):
        result = get_algorithm("ta").run(fig1, K, SUM)
        assert result.tally.sorted == 18  # 6 positions * 3 lists
        assert result.tally.random == 36  # one (m-1)-probe per sorted access

    def test_ta_threshold_at_stop_is_63(self, fig1):
        result = get_algorithm("ta").run(fig1, K, SUM)
        assert result.extras["threshold"] == 63.0

    def test_ta_answers(self, fig1):
        result = get_algorithm("ta").run(fig1, K, SUM)
        assert set(result.item_ids) == {3, 5, 8}


class TestExample3BPA:
    """Example 3: BPA stops at position 3 (vs TA's 6 = (m-1)x later)."""

    def test_bpa_stops_at_3(self, fig1):
        result = get_algorithm("bpa").run(fig1, K, SUM)
        assert result.stop_position == 3

    def test_bpa_access_counts(self, fig1):
        result = get_algorithm("bpa").run(fig1, K, SUM)
        assert result.tally.sorted == 9  # 3 positions * 3 lists
        assert result.tally.random == 18

    def test_bpa_lambda_at_stop_is_43(self, fig1):
        # Example 3: lambda = s1(9) + s2(9) + s3(6) = 11 + 13 + 19 = 43.
        result = get_algorithm("bpa").run(fig1, K, SUM)
        assert result.extras["lambda"] == 43.0

    def test_bpa_best_positions_at_stop(self, fig1):
        result = get_algorithm("bpa").run(fig1, K, SUM)
        assert result.extras["best_positions"] == (9, 9, 6)

    def test_bpa_is_m_minus_1_times_cheaper_than_ta(self, fig1):
        ta = get_algorithm("ta").run(fig1, K, SUM)
        bpa = get_algorithm("bpa").run(fig1, K, SUM)
        assert ta.stop_position == (fig1.m - 1) * bpa.stop_position
        assert ta.tally.total == (fig1.m - 1) * bpa.tally.total

    def test_bpa_answers(self, fig1):
        result = get_algorithm("bpa").run(fig1, K, SUM)
        assert set(result.item_ids) == {3, 5, 8}


class TestFigure2Data:
    def test_overall_scores_column(self, fig2):
        for item, expected in FIGURE2_OVERALL.items():
            assert sum(fig2.local_scores(item)) == expected

    def test_sum_column(self, fig2):
        for position, expected in enumerate(FIGURE2_THRESHOLDS, start=1):
            threshold = sum(lst.score_at(position) for lst in fig2.lists)
            assert threshold == expected


class TestSection51Example:
    """Figure 2: BPA does 63 accesses, BPA2 only 36."""

    def test_bpa_stops_at_7_with_63_accesses(self, fig2):
        result = get_algorithm("bpa").run(fig2, K, SUM)
        assert result.stop_position == 7
        assert result.tally.sorted == 21  # 7 * 3
        assert result.tally.random == 42  # 7 * 3 * 2
        assert result.tally.total == 63

    def test_bpa2_does_36_accesses(self, fig2):
        result = get_algorithm("bpa2").run(fig2, K, SUM)
        assert result.tally.direct == 12  # positions 1, 2, 3, 7 in each list
        assert result.tally.random == 24
        assert result.tally.total == 36

    def test_bpa2_direct_positions_are_1_2_3_7(self, fig2):
        result = get_algorithm("bpa2").run(fig2, K, SUM)
        assert result.rounds == 4
        assert result.stop_position == 7  # deepest direct access

    def test_both_answers_match(self, fig2):
        bpa = get_algorithm("bpa").run(fig2, K, SUM)
        bpa2 = get_algorithm("bpa2").run(fig2, K, SUM)
        assert set(bpa.item_ids) == {3, 4, 6}
        assert bpa.same_scores(bpa2)

    def test_access_ratio_is_about_m_minus_1(self, fig2):
        bpa = get_algorithm("bpa").run(fig2, K, SUM)
        bpa2 = get_algorithm("bpa2").run(fig2, K, SUM)
        ratio = bpa.tally.total / bpa2.tally.total
        assert ratio == pytest.approx(63 / 36)
