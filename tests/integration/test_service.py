"""QueryService end to end: correctness, caching, epochs, stats, pools."""

from __future__ import annotations

import pytest

from repro.algorithms.base import get_algorithm
from repro.bench.batch import QuerySpec
from repro.datagen import UniformGenerator
from repro.dynamic import DynamicDatabase
from repro.errors import InvalidQueryError
from repro.scoring import MIN, SUM
from repro.service import QueryService, ServicePolicy
from repro.service.workload import WorkloadConfig, build_workload, run_workload


@pytest.fixture(scope="module")
def database():
    return UniformGenerator().generate(400, 3, seed=13)


@pytest.fixture()
def service(database):
    with QueryService(database, shards=3, pool="serial") as svc:
        yield svc


class TestServedAnswers:
    def test_matches_the_reference_algorithm(self, service, database):
        for name in ("ta", "bpa", "bpa2", "nra"):
            for k in (1, 7, 50):
                served = service.submit(QuerySpec(name, k=k))
                reference = get_algorithm(name).run(database, k)
                assert served.item_ids == reference.item_ids, (name, k)
                assert served.scores == reference.scores, (name, k)

    def test_cache_on_equals_cache_off(self, database):
        specs = [QuerySpec("auto", k=k) for k in (3, 9, 3, 17, 9, 3)]
        with QueryService(database, shards=3, pool="serial") as cached, \
                QueryService(
                    database, shards=3, pool="serial", cache_size=0
                ) as uncached:
            a = cached.submit_many(specs)
            b = uncached.submit_many(specs)
        assert [(r.item_ids, r.scores) for r in a] == [
            (r.item_ids, r.scores) for r in b
        ]
        assert any(r.stats.cache_hit for r in a)
        assert not any(r.stats.cache_hit for r in b)

    def test_k_larger_than_n_is_clamped(self, service, database):
        served = service.submit(QuerySpec("bpa2", k=10 * database.n))
        assert len(served.items) == database.n
        assert served.stats.plan.k_requested == database.n

    def test_k_below_one_raises(self, service):
        with pytest.raises(InvalidQueryError):
            service.submit(QuerySpec("bpa2", k=0))

    def test_empty_batch_returns_empty_list(self, service):
        assert service.submit_many([]) == []

    def test_non_default_scoring_is_served_exactly(self, service, database):
        served = service.submit(QuerySpec("bpa2", k=5, scoring=MIN))
        reference = get_algorithm("bpa2").run(database, 5, MIN)
        assert served.item_ids == reference.item_ids
        assert served.scores == reference.scores


class TestCachingAndStats:
    def test_repeat_query_hits_and_skips_execution(self, service):
        first = service.submit(QuerySpec("auto", k=6))
        second = service.submit(QuerySpec("auto", k=6))
        assert not first.stats.cache_hit
        assert second.stats.cache_hit
        assert second.stats.tally.total == 0  # no list was touched
        assert second.item_ids == first.item_ids

    def test_overfetch_shares_entries_across_k(self, service):
        big = service.submit(QuerySpec("auto", k=8))
        small = service.submit(QuerySpec("auto", k=5))  # same bucket (8)
        assert small.stats.cache_hit
        assert small.item_ids == big.item_ids[:5]
        assert small.stats.plan.k_fetch == 8

    def test_stats_describe_the_execution(self, service):
        served = service.submit(QuerySpec("bpa2", k=4, scoring=SUM))
        stats = served.stats
        assert stats.plan.algorithm == "bpa2"
        assert stats.plan.backend == "kernel"
        assert stats.fanout == service.shards
        assert stats.tally.total > 0
        assert stats.seconds >= 0.0
        assert stats.epoch == 0

    def test_counters_aggregate(self, database):
        with QueryService(database, shards=2, pool="serial") as svc:
            svc.submit_many([QuerySpec("auto", k=3)] * 5)
            assert svc.counters.queries == 5
            assert svc.counters.cache_hits == 4
            assert svc.counters.executions == 1
            assert svc.counters.cache_hit_rate == pytest.approx(0.8)

    def test_nearby_weight_vectors_never_share_a_cache_entry(self, database):
        # Regression: WeightedSumScoring's 6-significant-digit name
        # rendered 0.3 and 0.30000004 identically, and the name feeds
        # the cache key — caching under one vector must never serve
        # the other's (different) ranking.
        from repro.algorithms.naive import brute_force_topk
        from repro.scoring import WeightedSumScoring

        close = WeightedSumScoring([0.3, 1.0, 0.5])
        closer = WeightedSumScoring([0.30000004, 1.0, 0.5])
        with QueryService(database, shards=1, pool="serial") as svc:
            cached = svc.submit(QuerySpec("bpa2", k=12, scoring=close))
            other = svc.submit(QuerySpec("bpa2", k=12, scoring=closer))
            assert not other.stats.cache_hit
            for served, scoring in ((cached, close), (other, closer)):
                oracle = brute_force_topk(database, 12, scoring)
                assert served.scores == tuple(e.score for e in oracle)

    def test_nra_bypasses_the_shard_fanout(self, service):
        served = service.submit(QuerySpec("nra", k=4))
        assert served.stats.fanout == 1

    def test_policy_without_random_access_plans_nra(self, database):
        with QueryService(
            database,
            shards=2,
            pool="serial",
            policy=ServicePolicy(allow_random=False),
        ) as svc:
            served = svc.submit(QuerySpec("auto", k=4))
        assert served.stats.plan.algorithm == "nra"
        reference = get_algorithm("nra").run(database, 4)
        assert served.item_ids == reference.item_ids

    def test_nra_is_never_overfetched(self, database):
        # NRA ranks by lower-bound scores, so only the full returned set
        # is exact — a truncated prefix of a larger fetch would serve
        # wrong items.  The planner must fetch exactly k, cache or not.
        with QueryService(database, shards=2, pool="serial") as svc:
            for k in (3, 5, 9):
                served = svc.submit(QuerySpec("nra", k=k))
                assert served.stats.plan.k_fetch == k
                reference = get_algorithm("nra").run(database, k)
                assert served.item_ids == reference.item_ids
                assert served.scores == reference.scores


class TestEpochInvalidation:
    def _dynamic(self) -> DynamicDatabase:
        rows = [
            [float((7 * i) % 23) for i in range(23)],
            [float((5 * i) % 23) for i in range(23)],
        ]
        return DynamicDatabase.from_score_rows(rows)

    def test_mutation_bumps_epoch_and_patches_affected_results(self):
        source = self._dynamic()
        with QueryService(source, shards=2, pool="serial") as svc:
            before = svc.submit(QuerySpec("auto", k=3))
            assert svc.epoch == 0
            source.update_score(0, 11, 1_000.0)
            assert svc.epoch == 1
            after = svc.submit(QuerySpec("auto", k=3))
            # The delta log proves the touched item is the only change:
            # the cached answer is repaired in place, never served stale.
            assert after.stats.cache_outcome == "patched"
            assert after.item_ids[0] == 11
            assert after.item_ids != before.item_ids

    def test_nra_entries_expire_whole_epoch_and_match_fresh_runs(self):
        # NRA reports lower-bound scores, so the delta certificate is
        # unsound for it: after any mutation a cached NRA entry must
        # recompute, and the recomputed serve must equal a fresh NRA
        # run over the same data (order, scores, lower bounds and all).
        rows = [
            [float((7 * i) % 23) for i in range(23)],
            [float((5 * i) % 23) for i in range(23)],
        ]
        source = DynamicDatabase.from_score_rows(rows)
        fresh_source = DynamicDatabase.from_score_rows(rows)
        with QueryService(source, shards=1, pool="serial") as svc, \
                QueryService(
                    fresh_source, shards=1, pool="serial", cache_size=0
                ) as oracle:
            svc.submit(QuerySpec("nra", k=4))
            member = svc.submit(QuerySpec("nra", k=4)).item_ids[2]
            for db in (source, fresh_source):
                db.update_score(0, member, 40.0)
            served = svc.submit(QuerySpec("nra", k=4))
            fresh = oracle.submit(QuerySpec("nra", k=4))
            assert served.stats.cache_outcome == "miss"
            assert served.item_ids == fresh.item_ids
            assert served.scores == fresh.scores

    def test_whole_epoch_policy_drops_stale_results(self):
        # delta_log_depth=0 restores the pre-delta behavior: any epoch
        # change is a full miss and the query re-executes.
        source = self._dynamic()
        policy = ServicePolicy(delta_log_depth=0)
        with QueryService(source, shards=2, pool="serial", policy=policy) as svc:
            svc.submit(QuerySpec("auto", k=3))
            source.update_score(0, 11, 1_000.0)
            after = svc.submit(QuerySpec("auto", k=3))
            assert not after.stats.cache_hit
            assert after.stats.cache_outcome == "miss"
            assert after.item_ids[0] == 11
            assert svc.mutation_log is None

    def test_every_mutation_kind_invalidates(self):
        source = self._dynamic()
        with QueryService(source, shards=1, pool="serial") as svc:
            svc.submit(QuerySpec("auto", k=2))
            source.apply_delta(1, 3, 5.0)
            source.insert_item(99, [50.0, 50.0])
            source.remove_item(0)
            assert svc.epoch == 3
            served = svc.submit(QuerySpec("auto", k=2))
            assert 99 in served.item_ids
            assert svc.counters.snapshot_refreshes == 1  # lazily, once

    def test_emptied_source_serves_empty_answers_then_recovers(self):
        source = DynamicDatabase.from_score_rows([[3.0, 1.0], [1.0, 3.0]])
        with QueryService(source, shards=2, pool="serial") as svc:
            assert len(svc.submit(QuerySpec("ta", k=2)).items) == 2
            source.remove_item(0)
            source.remove_item(1)
            served = svc.submit(QuerySpec("ta", k=2))
            assert served.items == ()
            assert served.stats.plan.reason == "database is empty"
            with pytest.raises(InvalidQueryError):
                svc.submit(QuerySpec("ta", k=0))  # k < 1 is still an error
            source.insert_item(7, [5.0, 5.0])
            again = svc.submit(QuerySpec("ta", k=2))
            assert again.item_ids == (7,)

    def test_manual_invalidate_forces_a_miss(self, database):
        with QueryService(database, shards=1, pool="serial") as svc:
            svc.submit(QuerySpec("auto", k=3))
            svc.invalidate()
            again = svc.submit(QuerySpec("auto", k=3))
            assert not again.stats.cache_hit
            assert svc.cache.stats.invalidations == 1

    def test_manual_invalidate_reclaims_dead_entries_eagerly(self):
        # With a delta log, invalidate() poisons the floor: every cached
        # entry is permanently unprovable, so it is purged immediately
        # instead of lingering until lookup or LRU eviction.
        source = self._dynamic()
        with QueryService(source, shards=1, pool="serial") as svc:
            for k in (2, 3, 5):
                svc.submit(QuerySpec("auto", k=k))
            assert len(svc.cache) > 0
            svc.invalidate()
            assert len(svc.cache) == 0
            after = svc.submit(QuerySpec("auto", k=3))
            assert after.stats.cache_outcome == "miss"


class TestPools:
    def test_thread_pool_serves_identical_answers(self, database):
        with QueryService(database, shards=3, pool="thread") as svc:
            served = svc.submit(QuerySpec("bpa2", k=9))
        reference = get_algorithm("bpa2").run(database, 9)
        assert served.item_ids == reference.item_ids
        assert served.scores == reference.scores

    def test_process_pool_serves_identical_answers(self):
        database = UniformGenerator().generate(120, 3, seed=3)
        with QueryService(
            database, shards=2, pool="process", cache_size=0
        ) as svc:
            served = [svc.submit(QuerySpec("bpa2", k=k)) for k in (1, 5, 30)]
        for result, k in zip(served, (1, 5, 30)):
            reference = get_algorithm("bpa2").run(database, k)
            assert result.item_ids == reference.item_ids
            assert result.scores == reference.scores
            assert result.stats.fanout == 2

    def test_process_pool_reload_reuses_workers_across_mutations(self):
        import os

        rows = [
            [float((7 * i) % 31) for i in range(30)],
            [float((11 * i) % 29) for i in range(30)],
        ]
        source = DynamicDatabase.from_score_rows(rows)
        with QueryService(
            source, shards=2, pool="process", cache_size=0
        ) as svc:
            svc.submit(QuerySpec("bpa2", k=3))
            pids_before = {
                pool.submit(os.getpid).result()
                for pool in svc._executor._process_pools
            }
            source.update_score(0, 5, 500.0)
            after = svc.submit(QuerySpec("bpa2", k=3))
            assert after.item_ids[0] == 5  # new snapshot is live
            pids_after = {
                pool.submit(os.getpid).result()
                for pool in svc._executor._process_pools
            }
            assert pids_before == pids_after  # no process respawn


class TestWorkloadReplay:
    def test_run_workload_report_shape_and_equality(self, tmp_path):
        config = WorkloadConfig(
            n=500, m=3, queries=40, distinct=8, k_max=6, shards=2,
            pool="serial",
        )
        report = run_workload(config)
        assert report["results_identical_to_baseline"] is True
        summary = report["service"]
        assert summary["queries"] == 40
        assert summary["cache_hit_rate"] > 0.5  # zipf-popular replay
        assert summary["shards"] == 2
        assert set(summary["accesses"]) == {"sorted", "random", "direct"}

    def test_build_workload_is_seeded_and_sized(self):
        config = WorkloadConfig(n=100, queries=25, distinct=5, seed=9)
        first = build_workload(config)
        second = build_workload(config)
        assert first == second
        assert len(first) == 25
        assert len({spec.k for spec in first}) <= 5


class TestSnapshotRefreshBenchmark:
    """The patched-refresh path must actually be cheaper than rebuilds."""

    def test_patched_refresh_beats_cold_rebuild(self):
        from repro.service.workload import snapshot_refresh_benchmark

        report = snapshot_refresh_benchmark(
            n=2_000, m=3, epochs=40, mutations_per_epoch=3, seed=12
        )
        # Correctness first: both strategies must converge on the same
        # bytes and the same served answer...
        assert report["snapshots_identical"] is True
        # ...and the patched run must have *patched* (not silently
        # rebuilt) while the budget-0 control never did.
        patched = report["patched"]
        assert patched["snapshot_patches"] == patched["snapshot_refreshes"]
        assert report["rebuild"]["snapshot_patches"] == 0
        # The perf claim recorded in reports/service_speedup.json: a
        # 3-item delta patch is measurably cheaper than re-sorting
        # 3x2000 entries from scratch (observed ~8x; the floor leaves
        # headroom for a noisy CI box).
        assert report["speedup_patched_vs_rebuild"] > 1.2
