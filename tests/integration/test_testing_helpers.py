"""The public differential-testing helpers must catch real bugs."""

import json

import pytest

from repro.algorithms.base import TopKAlgorithm, TopKBuffer
from repro.errors import NonMonotonicScoringError
from repro.testing import (
    assert_algorithm_correct,
    assert_scoring_usable,
    standard_test_databases,
)


class TestStandardDatabases:
    def test_grid_covers_the_regimes(self):
        labels = [label for label, _db in standard_test_databases()]
        assert "figure1" in labels
        assert "tie-heavy" in labels
        assert "single-list" in labels
        assert len(labels) >= 8

    def test_databases_are_valid(self):
        for label, database in standard_test_databases():
            items = database.item_ids
            for lst in database.lists:
                assert frozenset(lst.items()) == items, label


class _TruncatingAlgorithm(TopKAlgorithm):
    """Deliberately wrong: stops after the first round, whatever happens."""

    name = "broken"

    def _execute(self, accessor, k, scoring):
        buffer = TopKBuffer(k)
        for index, list_accessor in enumerate(accessor.accessors):
            entry = list_accessor.sorted_next()
            buffer.add(entry.item, entry.score)
        return buffer.ranked(), 1, 1, {}


class TestAssertAlgorithmCorrect:
    @pytest.mark.parametrize("name", ["ta", "bpa", "bpa2", "fa", "naive"])
    def test_accepts_the_shipped_algorithms(self, name):
        from repro.algorithms.base import get_algorithm

        assert_algorithm_correct(get_algorithm(name))

    def test_rejects_a_broken_algorithm(self):
        with pytest.raises(AssertionError, match="broken"):
            assert_algorithm_correct(_TruncatingAlgorithm())


class _NegSum:
    name = "negsum"

    def __call__(self, scores):
        return -sum(scores)


class TestAssertScoringUsable:
    def test_accepts_stock_functions(self):
        from repro.scoring import MIN, SUM, WeightedSumScoring

        assert_scoring_usable(SUM, 3)
        assert_scoring_usable(MIN, 3)
        assert_scoring_usable(WeightedSumScoring([1.0, 2.0, 0.5]), 3)

    def test_rejects_non_monotonic(self):
        with pytest.raises(NonMonotonicScoringError):
            assert_scoring_usable(_NegSum(), 3)


class TestResultTableJson:
    def test_json_roundtrip(self, tiny_scale):
        from repro.bench.harness import Experiment
        from repro.datagen.base import GeneratorSpec

        experiment = Experiment(
            name="json-exp", title="json test", sweep_name="m",
            generator=GeneratorSpec("uniform"), sweep_values=(2,),
        )
        table = experiment.run(tiny_scale)
        payload = json.loads(table.to_json())
        assert payload["experiment"] == "json-exp"
        assert payload["sweep_name"] == "m"
        assert len(payload["rows"]) == 3  # one per algorithm
        for row in payload["rows"]:
            assert row["execution_cost"] > 0
            assert row["accesses"] > 0
