"""CLI integration tests (direct invocation, no subprocess)."""

import json

import pytest

from repro.cli import main


class TestPaperExamples:
    def test_reports_paper_stop_positions(self, capsys):
        assert main(["paper-examples"]) == 0
        out = capsys.readouterr().out
        assert "fa: stops at position 8" in out
        assert "ta: stops at position 6" in out
        assert "bpa: stops at position 3" in out
        assert "total accesses=63" in out
        assert "total accesses=36" in out


class TestQuery:
    def test_runs_requested_algorithms(self, capsys):
        code = main([
            "query", "--n", "300", "--m", "3", "--k", "5",
            "--algorithms", "ta", "bpa2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ta" in out
        assert "bpa2" in out
        assert "cost" in out

    def test_unknown_algorithm_fails(self, capsys):
        code = main([
            "query", "--n", "100", "--m", "2", "--k", "2",
            "--algorithms", "grover",
        ])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_correlated_generator(self, capsys):
        code = main([
            "query", "--generator", "correlated", "--alpha", "0.05",
            "--n", "200", "--m", "3", "--k", "4",
        ])
        assert code == 0


class TestAdversarial:
    def test_reports_ratios(self, capsys):
        assert main(["adversarial", "--m", "4", "--u", "3"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3" in out
        assert "Theorem 8" in out
        assert "m-1 = 3" in out


class TestFigure:
    def test_runs_figure_at_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["figure", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "bpa2" in out

    def test_csv_output(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["figure", "fig13", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("sweep_name,")

    def test_out_dir_writes_three_formats(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["figure", "fig13", "--out", str(tmp_path / "results")]) == 0
        base = tmp_path / "results"
        assert (base / "fig13.txt").exists()
        assert (base / "fig13.csv").exists()
        assert (base / "fig13.json").exists()

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            main(["figure", "fig99"])


class TestDistributed:
    def test_reports_message_counts(self, capsys):
        assert main(["distributed", "--n", "200", "--m", "3", "--k", "3"]) == 0
        out = capsys.readouterr().out
        for name in ("dist-ta", "dist-bpa", "dist-bpa2", "tput"):
            assert name in out


class TestTrace:
    def test_figure1_trace(self, capsys):
        assert main(["trace", "--figure1"]) == 0
        out = capsys.readouterr().out
        assert "delta=63" in out
        assert "lambda=43" in out
        assert "bp=[9, 9, 6]" in out
        assert out.count("<-- stops") == 2

    def test_random_trace(self, capsys):
        assert main(["trace", "--n", "40", "--m", "3", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "TA trace" in out and "BPA trace" in out


class TestDistBenchCommand:
    def test_smoke_writes_report(self, capsys, tmp_path):
        out = tmp_path / "distributed_speedup.json"
        assert main(["dist-bench", "--smoke", "--queries", "30",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "distributed_speedup"
        for name in ("ta", "bpa", "bpa2"):
            cell = report["transport"]["drivers"][name]
            assert cell["results_identical_to_reference"]
            assert cell["bytes_reduction"] > 0
            assert cell["message_reduction"] > 0
        async_side = report["async_service"]
        assert async_side["results_identical"]
        assert async_side["cache_stats_identical"]
        printed = capsys.readouterr().out
        assert "wire protocols" in printed and "async service replay" in printed


class TestServeWorkloadAsyncMode:
    def test_smoke_async_replay(self, capsys, tmp_path):
        out = tmp_path / "smoke_async.json"
        assert main(["serve-workload", "--smoke", "--async-mode",
                     "--concurrency", "4", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["mode"] == "async"
        assert report["service"]["concurrency"] == 4
        assert report["results_identical_to_baseline"]
        assert "mode=async" in capsys.readouterr().out

    def test_auto_shards_accepted(self, capsys, tmp_path):
        out = tmp_path / "auto.json"
        assert main(["serve-workload", "--smoke", "--shards", "auto",
                     "--out", str(out)]) == 0
        assert json.loads(out.read_text())["config"]["shards"] == "auto"

    def test_garbage_shards_rejected(self, capsys):
        assert main(["serve-workload", "--smoke", "--shards", "many"]) == 2

    def test_speedup_needs_explicit_shards(self, capsys):
        assert main(["serve-workload", "--speedup", "--shards", "auto"]) == 2


class TestSnapshotCli:
    """``--snapshot-out``/``--snapshot-in`` and ``verify-snapshot``."""

    def _serve(self, extra, out):
        return main(["serve-workload", "--smoke", "--mutation-rate", "1.0",
                     "--verify", "--queries", "25", "--out", str(out),
                     *extra])

    def test_mutation_replay_round_trips_a_restart(self, capsys, tmp_path):
        state = tmp_path / "state.bpsn"
        assert self._serve(["--snapshot-out", str(state)],
                           tmp_path / "r1.json") == 0
        first = capsys.readouterr().out
        assert "snapshot saved to" in first
        report = json.loads((tmp_path / "r1.json").read_text())
        saved = report["snapshot_saved"]
        assert saved["path"] == str(state)
        assert saved["epoch"] > 0

        # "Restart": warm-start from the file, keep mutating, re-verify
        # every served answer against the brute-force oracle.
        assert self._serve(["--snapshot-in", str(state),
                            "--snapshot-out", str(state)],
                           tmp_path / "r2.json") == 0
        second = capsys.readouterr().out
        assert f"restored snapshot {state}" in second
        report2 = json.loads((tmp_path / "r2.json").read_text())
        assert report2["snapshot_restored_epoch"] == saved["epoch"]
        assert report2["snapshot_saved"]["epoch"] > saved["epoch"]
        assert report2["service"]["verified_identical"]

    def test_static_replay_accepts_snapshot_in(self, capsys, tmp_path):
        state = tmp_path / "state.bpsn"
        assert main(["serve-workload", "--smoke",
                     "--snapshot-out", str(state),
                     "--out", str(tmp_path / "r1.json")]) == 0
        capsys.readouterr()
        assert main(["serve-workload", "--smoke",
                     "--snapshot-in", str(state),
                     "--out", str(tmp_path / "r2.json")]) == 0
        out = capsys.readouterr().out
        assert "warm start" in out
        assert "results identical: True" in out

    def test_verify_snapshot_ok_and_repair(self, capsys, tmp_path):
        from repro.datagen.base import make_generator
        from repro.storage import write_snapshot
        from repro.storage.disk import _rank_section_offset
        from repro.storage.snapshot import (
            _CRC_PAIR,
            _SNAP_HEADER,
            _index_section_offset,
        )

        database = make_generator("uniform").generate(20, 2, seed=6)
        state = tmp_path / "state.bpsn"
        write_snapshot(database, state, epoch=9, compress=False)
        assert main(["verify-snapshot", str(state)]) == 0
        out = capsys.readouterr().out
        assert "epoch 9" in out and "snapshot OK" in out

        # Corrupt one index byte: detected, then repaired in place.
        base = _SNAP_HEADER.size + 2 * _CRC_PAIR.size
        raw = bytearray(state.read_bytes())
        raw[base + _index_section_offset(20, 1)] ^= 0xFF
        state.write_bytes(bytes(raw))
        assert main(["verify-snapshot", str(state)]) == 1
        captured = capsys.readouterr()
        assert "ISSUE" in captured.out
        assert "--repair" in captured.err
        assert main(["verify-snapshot", str(state), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert main(["verify-snapshot", str(state)]) == 0
        capsys.readouterr()

        # Rank-section damage is honestly unrecoverable.
        raw = bytearray(state.read_bytes())
        raw[base + _rank_section_offset(20, 0) + 3] ^= 0xFF
        state.write_bytes(bytes(raw))
        assert main(["verify-snapshot", str(state), "--repair"]) == 1
        assert "not repairable" in capsys.readouterr().err

    def test_verify_snapshot_missing_file(self, capsys, tmp_path):
        assert main(["verify-snapshot", str(tmp_path / "absent.bpsn")]) == 1
        assert "unrecoverable" in capsys.readouterr().err


class TestReverseCli:
    """``repro reverse`` (demo + --speedup) and serve-workload's
    ``--reverse-rate`` path, every answer oracle-checked."""

    DEMO = ["reverse", "--n", "150", "--m", "3", "--users", "8",
            "--k", "5", "--seed", "3"]

    def test_demo_verifies_against_the_oracle(self, capsys):
        assert main([*self.DEMO, "--queries", "4"]) == 0
        out = capsys.readouterr().out
        assert "reverse top-5" in out
        assert "8 registered users" in out
        assert "MISMATCH" not in out

    def test_single_item_mode_lists_matching_weights(self, capsys):
        assert main([*self.DEMO, "--item", "0"]) == 0
        out = capsys.readouterr().out
        assert "item 0:" in out

    def test_unknown_item_is_a_usage_error(self, capsys):
        assert main([*self.DEMO, "--item", "999999"]) == 2
        assert "not in the database" in capsys.readouterr().err

    def test_speedup_writes_a_verified_report(self, capsys, tmp_path):
        out_file = tmp_path / "reverse_speedup.json"
        assert main(["reverse", "--speedup", "--n", "300", "--m", "3",
                     "--users", "10", "--queries", "5", "--mutations", "8",
                     "--k", "5", "--out", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        assert report["verified"] is True
        assert report["mismatches"] == 0
        assert report["speedup"]["overall"] > 0
        decisions = report["pruned"]["decisions"]
        total = sum(decisions.values())
        assert total == report["config"]["users"] * (
            report["config"]["queries"] + report["config"]["mutations"]
        )
        out = capsys.readouterr().out
        assert "all answers identical" in out

    def test_serve_workload_reverse_rate_verifies(self, capsys, tmp_path):
        out_file = tmp_path / "replay.json"
        assert main(["serve-workload", "--smoke", "--queries", "30",
                     "--mutation-rate", "0.5", "--reverse-rate", "0.5",
                     "--reverse-users", "6", "--reverse-k", "5",
                     "--verify", "--out", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        reverse = report["service"]["reverse"]
        assert reverse["queries"] > 0
        assert reverse["users"] == 6
        assert reverse["verified_identical"] is True
        out = capsys.readouterr().out
        assert "reverse top-k:" in out
        assert "boundary maintenance:" in out

    def test_reverse_rate_without_mutations_is_legal(self, capsys, tmp_path):
        out_file = tmp_path / "static.json"
        assert main(["serve-workload", "--smoke", "--queries", "20",
                     "--reverse-rate", "1.0", "--reverse-users", "4",
                     "--verify", "--out", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        assert report["service"]["reverse"]["queries"] > 0
