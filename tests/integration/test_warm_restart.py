"""Service-level snapshot patching and warm restarts.

Two surfaces of the live storage engine:

* **in-process** — a mutating :class:`QueryService` refreshes its
  columnar snapshot by *patching* it with the mutation-log window
  (``counters.snapshot_patches``), cold-rebuilding only when the window
  is unprovable (truncated or poisoned log) or wider than the policy's
  ``snapshot_patch_budget``;
* **across processes** — ``save_snapshot``/``from_snapshot`` round-trip
  the served snapshot through an epoch-stamped ``.bpsn`` file so a
  restarted service answers identically and keeps mutating from the
  restored epoch, with the log floored so pre-restart windows can never
  be claimed.
"""

from __future__ import annotations

import pytest

from repro.bench.batch import QuerySpec
from repro.datagen.base import make_generator
from repro.scoring import SUM
from repro.service import QueryService, ServicePolicy
from repro.service.workload import answers_match, dynamic_from
from repro.storage import load_snapshot, verify_snapshot


def make_source(n=40, m=3, seed=21):
    return dynamic_from(make_generator("uniform").generate(n, m, seed=seed))


SPEC = QuerySpec(algorithm="bpa2", k=8)


def assert_correct(service, source, served):
    assert answers_match(
        served.item_ids, served.scores, source, SPEC.k, SUM
    )


class TestSnapshotPatching:
    def test_small_delta_patches_instead_of_rebuilding(self):
        source = make_source()
        with QueryService(source, shards=1, pool="serial") as service:
            service.submit(SPEC)
            source.update_score(0, 5, 0.99)
            served = service.submit(SPEC)
            assert_correct(service, source, served)
            assert service.counters.snapshot_refreshes == 1
            assert service.counters.snapshot_patches == 1

    def test_budget_zero_disables_patching(self):
        source = make_source()
        policy = ServicePolicy(snapshot_patch_budget=0)
        with QueryService(
            source, shards=1, pool="serial", policy=policy
        ) as service:
            service.submit(SPEC)
            source.update_score(0, 5, 0.99)
            served = service.submit(SPEC)
            assert_correct(service, source, served)
            assert service.counters.snapshot_refreshes == 1
            assert service.counters.snapshot_patches == 0

    def test_wide_delta_falls_back_to_rebuild(self):
        source = make_source()
        policy = ServicePolicy(snapshot_patch_budget=2)
        with QueryService(
            source, shards=1, pool="serial", policy=policy
        ) as service:
            service.submit(SPEC)
            for item in range(5):  # 5 net-touched items > budget of 2
                source.update_score(0, item, 0.9 + item / 100)
            served = service.submit(SPEC)
            assert_correct(service, source, served)
            assert service.counters.snapshot_refreshes == 1
            assert service.counters.snapshot_patches == 0

    def test_truncated_log_falls_back_to_rebuild(self):
        source = make_source()
        policy = ServicePolicy(delta_log_depth=2)
        with QueryService(
            source, shards=1, pool="serial", policy=policy
        ) as service:
            service.submit(SPEC)
            for item in range(6):  # overflow the 2-deep log
                source.update_score(0, item, 0.5 + item / 100)
            served = service.submit(SPEC)
            assert_correct(service, source, served)
            assert service.counters.snapshot_patches == 0
            assert service.mutation_log.truncations > 0

    def test_poisoned_log_falls_back_to_rebuild(self):
        source = make_source()
        with QueryService(source, shards=1, pool="serial") as service:
            service.submit(SPEC)
            source.update_score(0, 5, 0.99)
            service.mutation_log.poison(service.mutation_log.top)
            served = service.submit(SPEC)
            assert_correct(service, source, served)
            assert service.counters.snapshot_patches == 0
            assert service.counters.snapshot_refreshes == 1

    def test_patching_keeps_oracle_exactness_over_many_epochs(self):
        source = make_source(n=24, m=2, seed=3)
        next_id = 5_000
        with QueryService(source, shards=1, pool="serial") as service:
            for step in range(30):
                kind = step % 3
                ids = sorted(source.item_ids)
                if kind == 0:
                    source.update_score(
                        step % source.m, ids[step % len(ids)], step / 31
                    )
                elif kind == 1:
                    source.insert_item(next_id, [0.3, step / 31])
                    next_id += 1
                elif len(ids) > 4:
                    source.remove_item(ids[-1])
                served = service.submit(SPEC)
                assert_correct(service, source, served)
            # Every refresh after the first snapshot was a patch: each
            # step touches one item, far under the default budget.
            assert (
                service.counters.snapshot_patches
                == service.counters.snapshot_refreshes
            )
            assert service.counters.snapshot_refreshes >= 29

    def test_in_flight_view_survives_patch(self):
        """Epoch-versioned views: the old snapshot object is untouched."""
        source = make_source()
        with QueryService(source, shards=1, pool="serial") as service:
            service.submit(SPEC)
            before = service._executor.database
            items_before = before.lists[0].items_array.tobytes()
            source.update_score(0, 5, 0.99)
            service.submit(SPEC)
            after = service._executor.database
            assert after is not before
            assert before.lists[0].items_array.tobytes() == items_before


class TestWarmRestart:
    def test_restart_serves_identical_answers(self, tmp_path):
        source = make_source()
        path = tmp_path / "state.bpsn"
        with QueryService(source, shards=1, pool="serial") as service:
            source.update_score(1, 3, 0.87)
            source.insert_item(9_000, [0.4, 0.9, 0.2])
            first = service.submit(SPEC)
            epoch = service.save_snapshot(path)
        assert epoch == 2
        assert verify_snapshot(path).ok

        with QueryService.from_snapshot(
            path, shards=1, pool="serial"
        ) as restarted:
            served = restarted.submit(SPEC)
            assert served.item_ids == first.item_ids
            assert served.scores == first.scores

    def test_restart_with_source_keeps_mutating(self, tmp_path):
        source = make_source()
        path = tmp_path / "state.bpsn"
        with QueryService(source, shards=1, pool="serial") as service:
            source.update_score(0, 7, 0.91)
            service.submit(SPEC)
            epoch = service.save_snapshot(path)

        # "New process": a live source rebuilt from the snapshot file.
        database, _ = load_snapshot(path)
        revived = dynamic_from(database)
        with QueryService.from_snapshot(
            path, source=revived, shards=1, pool="serial"
        ) as restarted:
            # The log floor is pinned at the restored epoch: windows
            # reaching before the restart are unprovable by fiat.
            assert restarted.mutation_log.floor == epoch
            served = restarted.submit(SPEC)
            assert_correct(restarted, revived, served)
            # post-restart mutations patch as usual
            revived.update_score(1, 2, 0.93)
            served = restarted.submit(SPEC)
            assert_correct(restarted, revived, served)
            assert restarted.counters.snapshot_patches == 1

    def test_epoch_clock_resumes(self, tmp_path):
        source = make_source()
        first = tmp_path / "a.bpsn"
        second = tmp_path / "b.bpsn"
        with QueryService(source, shards=1, pool="serial") as service:
            source.update_score(0, 1, 0.5)
            source.update_score(0, 2, 0.6)
            saved = service.save_snapshot(first)
        assert saved == 2

        database, _ = load_snapshot(first)
        revived = dynamic_from(database)
        with QueryService.from_snapshot(
            first, source=revived, shards=1, pool="serial"
        ) as restarted:
            revived.update_score(0, 3, 0.7)
            assert restarted.save_snapshot(second) == 3
        assert load_snapshot(second)[1] == 3

    def test_save_snapshot_flushes_pending_mutations(self, tmp_path):
        source = make_source()
        path = tmp_path / "state.bpsn"
        with QueryService(source, shards=1, pool="serial") as service:
            service.submit(SPEC)
            source.update_score(0, 4, 0.98)  # pending: no query since
            epoch = service.save_snapshot(path)
            assert epoch == 1
        database, _ = load_snapshot(path)
        assert database.local_scores(4)[0] == 0.98

    def test_save_on_closed_service_raises(self, tmp_path):
        service = QueryService(make_source(), shards=1, pool="serial")
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.save_snapshot(tmp_path / "x.bpsn")

    def test_snapshot_kwarg_requires_dynamic_source(self):
        database = make_generator("uniform").generate(10, 2, seed=1)
        from repro.columnar import ColumnarDatabase

        columnar = ColumnarDatabase.from_database(database)
        with pytest.raises(ValueError):
            QueryService(
                columnar, snapshot=columnar, shards=1, pool="serial"
            )
