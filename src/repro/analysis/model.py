"""Closed-form performance models for uniform databases, sum scoring.

Where TA stops
--------------
On a uniform database the score at position ``p`` of any list is
approximately ``1 - p/n``, so TA's threshold after round ``p`` is
``delta(p) ~ m * (1 - p/n)``.  TA stops at the first ``p`` where at
least ``k`` items have overall score >= ``delta(p)``; with i.i.d.
U(0,1) scores the number of such items is ``n * P(S_m >= delta(p))``
where ``S_m`` is an Irwin-Hall sum of ``m`` uniforms.  Solving
``n * P(S_m >= m(1 - p/n)) = k`` for ``p`` predicts the stop position.

How far best positions run ahead
--------------------------------
After ``p`` rounds, an item is *seen* iff it ranks <= p in some list,
so a position ``q > p`` of a given list is covered with probability
``r(p) = 1 - (1 - p/n)**(m-1)`` (its item must rank <= p in one of the
other ``m - 1`` lists).  Treating coverage as independent across
positions, the best position runs ahead of the sorted cursor by a
geometric run of covered positions:

    E[advance] = r / (1 - r) = (1 - p/n)**-(m-1) - 1.

At the paper's operating points this is a handful of positions (e.g.
m=8, p/n=0.16: ~2.4), which is why BPA's stopping position on truly
independent lists is within a whisker of TA's — and why the paper's
(m+6)/8 uniform-database factor cannot be reproduced without positional
correlation.  The model is validated against measurements in
``tests/integration/test_analysis.py``.
"""

from __future__ import annotations

import math

from repro.types import AccessTally, CostModel


def sum_of_uniforms_tail(m: int, threshold: float) -> float:
    """``P(U_1 + ... + U_m >= threshold)`` for i.i.d. U(0,1) (Irwin-Hall).

    Exact alternating-sum formula for moderate ``m``; a Gaussian
    approximation with the exact moments for large ``m`` where the
    alternating sum loses precision.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if threshold <= 0.0:
        return 1.0
    if threshold >= m:
        return 0.0
    if m > 25:
        mean = m / 2.0
        std = math.sqrt(m / 12.0)
        z = (threshold - mean) / std
        return 0.5 * math.erfc(z / math.sqrt(2.0))
    # P(S_m <= x) = (1/m!) * sum_j (-1)^j C(m, j) (x - j)^m
    x = threshold
    terms = [
        ((-1) ** j) * math.comb(m, j) * (x - j) ** m
        for j in range(int(math.floor(x)) + 1)
    ]
    cdf = math.fsum(terms) / math.factorial(m)
    return min(1.0, max(0.0, 1.0 - cdf))


def predicted_ta_stop_position_uniform(n: int, m: int, k: int) -> int:
    """Predicted TA stop position on a uniform database with sum scoring.

    Solves ``n * P(S_m >= m * (1 - p/n)) = k`` for ``p`` by bisection.
    """
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}, got {k}")

    def expected_items_above_threshold(p: float) -> float:
        threshold = m * (1.0 - p / n)
        return n * sum_of_uniforms_tail(m, threshold)

    low, high = 0.0, float(n)
    for _ in range(80):
        mid = (low + high) / 2.0
        if expected_items_above_threshold(mid) < k:
            low = mid
        else:
            high = mid
    return max(1, int(round(high)))


def expected_best_position_advance(n: int, m: int, p: int) -> float:
    """Expected run-ahead of the best position past sorted cursor ``p``.

    The coverage-gap model: ``(1 - p/n)**-(m-1) - 1`` (see module
    docstring).  Grows explosively only once ``p/n`` is large or ``m``
    is large — the phase transition visible in large-m sweeps.
    """
    if not 0 <= p <= n:
        raise ValueError(f"p must be in 0..{n}, got {p}")
    remaining = 1.0 - p / n
    if remaining <= 0.0:
        return float("inf")
    return remaining ** -(m - 1) - 1.0


def predicted_execution_cost(
    n: int, m: int, stop_position: int, model: CostModel | None = None
) -> float:
    """Execution cost implied by a TA/BPA stop position.

    Uses the paper's accounting: ``m`` sorted accesses per round and
    ``m - 1`` random accesses per sorted access.
    """
    model = model or CostModel.paper(n)
    tally = AccessTally(
        sorted=m * stop_position,
        random=m * stop_position * (m - 1),
    )
    return model.execution_cost(tally)
