"""Per-round execution traces for TA and BPA.

A :class:`RoundTrace` captures everything the two stopping mechanisms
look at after each parallel sorted-access round: TA's threshold
``delta``, BPA's best positions and ``lambda``, and the running top-k
scores.  Traces power the walkthrough example and make per-round
invariants testable — most importantly the inequality at the heart of
Lemma 1: ``lambda(p) <= delta(p)`` at every round.

Tracing re-implements the scan loop (rather than instrumenting the
production classes) so the production code stays lean; equivalence with
the production algorithms is asserted by
``tests/integration/test_analysis.py`` (same stop rounds, same answers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import TopKBuffer
from repro.core.best_position import make_tracker
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction
from repro.types import Score


@dataclass(frozen=True, slots=True)
class RoundTrace:
    """State visible to the stopping rules after one round."""

    position: int
    threshold: Score  # TA's delta (or BPA's lambda, in BPA traces)
    top_scores: tuple[Score, ...]  # the running Y, best first
    best_positions: tuple[int, ...] = ()  # BPA only
    stopped: bool = False


def trace_ta(
    database: Database, k: int, scoring: ScoringFunction = SUM
) -> list[RoundTrace]:
    """Round-by-round trace of TA on ``database``."""
    m, n = database.m, database.n
    buffer = TopKBuffer(k)
    seen: set[int] = set()
    rounds: list[RoundTrace] = []
    for position in range(1, n + 1):
        last_scores = []
        for lst in database.lists:
            entry = lst.entry_at(position)
            last_scores.append(entry.score)
            if entry.item not in seen:
                seen.add(entry.item)
                overall = scoring(
                    [other.lookup(entry.item)[0] for other in database.lists]
                )
                buffer.add(entry.item, overall)
        threshold = scoring(last_scores)
        stopped = buffer.all_at_least(threshold)
        rounds.append(
            RoundTrace(
                position=position,
                threshold=threshold,
                top_scores=tuple(e.score for e in buffer.ranked()),
                stopped=stopped,
            )
        )
        if stopped:
            break
    return rounds


def trace_bpa(
    database: Database, k: int, scoring: ScoringFunction = SUM
) -> list[RoundTrace]:
    """Round-by-round trace of BPA on ``database``."""
    m, n = database.m, database.n
    buffer = TopKBuffer(k)
    seen: set[int] = set()
    trackers = [make_tracker("bitarray", n) for _ in range(m)]
    rounds: list[RoundTrace] = []
    for position in range(1, n + 1):
        for index, lst in enumerate(database.lists):
            entry = lst.entry_at(position)
            trackers[index].mark(entry.position)
            if entry.item not in seen:
                seen.add(entry.item)
                local = []
                for other_index, other in enumerate(database.lists):
                    score, pos = other.lookup(entry.item)
                    local.append(score)
                    trackers[other_index].mark(pos)
                buffer.add(entry.item, scoring(local))
            else:
                # Re-probes reveal (already-marked) positions; mirror the
                # production algorithm's marking behaviour.
                for other_index, other in enumerate(database.lists):
                    if other_index != index:
                        _score, pos = other.lookup(entry.item)
                        trackers[other_index].mark(pos)
        best_positions = tuple(t.best_position for t in trackers)
        lam = scoring(
            [
                database.lists[i].score_at(bp)
                for i, bp in enumerate(best_positions)
            ]
        )
        stopped = buffer.all_at_least(lam)
        rounds.append(
            RoundTrace(
                position=position,
                threshold=lam,
                top_scores=tuple(e.score for e in buffer.ranked()),
                best_positions=best_positions,
                stopped=stopped,
            )
        )
        if stopped:
            break
    return rounds
