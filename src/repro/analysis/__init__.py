"""Analytical models and execution tracing.

Two tools that complement the measurements:

* :mod:`repro.analysis.model` — closed-form predictions for uniform
  databases: where TA stops (via the Irwin-Hall distribution of sums of
  uniforms), how far BPA's best position can run ahead of the sorted
  cursor (the coverage-gap model), and the execution cost implied by a
  stop position.  These are used in EXPERIMENTS.md to explain *why* the
  paper's uniform-database speedup for BPA does not emerge from a
  faithful reimplementation.
* :mod:`repro.analysis.trace` — instrumented per-round traces of TA and
  BPA runs (thresholds, best positions, lambda, the running top-k), used
  by the walkthrough example and by invariant tests (e.g. lambda <= delta
  at every round, the heart of Lemma 1).
"""

from repro.analysis.model import (
    expected_best_position_advance,
    predicted_execution_cost,
    predicted_ta_stop_position_uniform,
    sum_of_uniforms_tail,
)
from repro.analysis.trace import RoundTrace, trace_bpa, trace_ta

__all__ = [
    "sum_of_uniforms_tail",
    "predicted_ta_stop_position_uniform",
    "expected_best_position_advance",
    "predicted_execution_cost",
    "RoundTrace",
    "trace_ta",
    "trace_bpa",
]
