"""Sweep runner and result tables.

An :class:`Experiment` is a declarative description of one paper figure:
which parameter sweeps over which values, how the database is generated,
which algorithms run, and which metrics matter.  Running it produces a
:class:`ResultTable` that can be printed as an aligned text table (one
series per algorithm, like the paper's plots) or exported to CSV.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.algorithms.base import get_algorithm
from repro.bench.config import Scale
from repro.datagen.base import GeneratorSpec
from repro.lists.database import Database
from repro.scoring import SUM
from repro.types import CostModel

#: Metric extractor signatures: (result, cost_model) -> float
METRICS = ("execution_cost", "accesses", "response_time_ms", "stop_position")

# Size-1 database cache: k-sweeps reuse one database across all k values,
# so remembering the last (generator, n, m, seed) avoids pointless regen
# without holding more than one database in memory.
_LAST_DB: tuple[tuple, Database] | None = None


def _generate_cached(spec: GeneratorSpec, n: int, m: int, seed: int) -> Database:
    global _LAST_DB
    key = (spec.describe(), n, m, seed)
    if _LAST_DB is not None and _LAST_DB[0] == key:
        return _LAST_DB[1]
    database = spec.build().generate(n, m, seed=seed)
    _LAST_DB = (key, database)
    return database


@dataclass(frozen=True, slots=True)
class ResultRow:
    """One (sweep value, algorithm) measurement, averaged over repeats."""

    sweep_value: float
    algorithm: str
    execution_cost: float
    accesses: float
    response_time_ms: float
    stop_position: float

    def metric(self, name: str) -> float:
        """Fetch a metric by name."""
        return getattr(self, name)


@dataclass
class ResultTable:
    """All measurements of one experiment run."""

    experiment: str
    title: str
    sweep_name: str
    metric: str
    rows: list[ResultRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def algorithms(self) -> list[str]:
        """Distinct algorithm names in first-seen order."""
        seen: list[str] = []
        for row in self.rows:
            if row.algorithm not in seen:
                seen.append(row.algorithm)
        return seen

    @property
    def sweep_values(self) -> list[float]:
        """Distinct sweep values in first-seen order."""
        seen: list[float] = []
        for row in self.rows:
            if row.sweep_value not in seen:
                seen.append(row.sweep_value)
        return seen

    def value(self, sweep_value: float, algorithm: str, metric: str | None = None) -> float:
        """Look up one cell of the table."""
        for row in self.rows:
            if row.sweep_value == sweep_value and row.algorithm == algorithm:
                return row.metric(metric or self.metric)
        raise KeyError(f"no row for {self.sweep_name}={sweep_value}, {algorithm}")

    def series(self, algorithm: str, metric: str | None = None) -> list[float]:
        """The metric values of one algorithm across the sweep."""
        return [
            self.value(sweep_value, algorithm, metric)
            for sweep_value in self.sweep_values
        ]

    def to_text(self, metric: str | None = None) -> str:
        """Aligned text table: one row per sweep value, one column per algorithm."""
        metric = metric or self.metric
        algorithms = self.algorithms
        header = [self.sweep_name] + algorithms
        body: list[list[str]] = []
        for sweep_value in self.sweep_values:
            cells = [self._format_number(sweep_value)]
            for algorithm in algorithms:
                cells.append(
                    self._format_number(self.value(sweep_value, algorithm, metric))
                )
            body.append(cells)
        widths = [
            max(len(header[col]), *(len(row[col]) for row in body)) + 2
            if body
            else len(header[col]) + 2
            for col in range(len(header))
        ]
        lines = [f"== {self.experiment}: {self.title} [{metric}] =="]
        lines.extend(f"   {note}" for note in self.notes)
        lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
        for cells in body:
            lines.append("".join(c.rjust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV export with every metric column."""
        lines = ["sweep_name,sweep_value,algorithm," + ",".join(METRICS)]
        for row in self.rows:
            lines.append(
                f"{self.sweep_name},{row.sweep_value},{row.algorithm},"
                f"{row.execution_cost},{row.accesses},"
                f"{row.response_time_ms},{row.stop_position}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON export (experiment metadata + all rows, all metrics)."""
        import json

        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "sweep_name": self.sweep_name,
                "metric": self.metric,
                "notes": self.notes,
                "rows": [
                    {
                        "sweep_value": row.sweep_value,
                        "algorithm": row.algorithm,
                        **{metric: row.metric(metric) for metric in METRICS},
                    }
                    for row in self.rows
                ],
            },
            indent=2,
        )

    @staticmethod
    def _format_number(value: float) -> str:
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.2f}"


@dataclass(frozen=True)
class Experiment:
    """Declarative description of one figure's experiment.

    Args:
        name: experiment id, e.g. ``"fig3"``.
        title: human-readable description for reports.
        sweep_name: which parameter varies (``m``, ``k``, ``n``).
        generator: how databases are generated.
        algorithms: algorithm names (resolved via the registry).
        metric: headline metric of the figure.
        sweep_values: explicit sweep override; defaults to the scale grid.
    """

    name: str
    title: str
    sweep_name: str
    generator: GeneratorSpec
    algorithms: tuple[str, ...] = ("ta", "bpa", "bpa2")
    metric: str = "execution_cost"
    sweep_values: tuple[float, ...] | None = None

    def grid(self, scale: Scale) -> Sequence[float]:
        """The sweep values for a given scale."""
        if self.sweep_values is not None:
            return self.sweep_values
        if self.sweep_name == "m":
            return scale.m_sweep
        if self.sweep_name == "k":
            return scale.k_sweep
        if self.sweep_name == "n":
            return scale.n_sweep
        raise KeyError(f"no default grid for sweep {self.sweep_name!r}")

    def run(
        self,
        scale: Scale,
        *,
        progress: Callable[[str], None] | None = None,
    ) -> ResultTable:
        """Execute the sweep and collect all metrics."""
        table = ResultTable(
            experiment=self.name,
            title=self.title,
            sweep_name=self.sweep_name,
            metric=self.metric,
            notes=[
                f"database={self.generator.describe()}",
                scale.scaled_note(),
            ],
        )
        for sweep_value in self.grid(scale):
            params = {"n": scale.n, "m": scale.m, "k": scale.k}
            params[self.sweep_name] = int(sweep_value)
            per_algo: dict[str, list[tuple[float, float, float, float]]] = {
                algo: [] for algo in self.algorithms
            }
            for repeat in range(scale.repeats):
                seed = scale.seed + repeat
                database = _generate_cached(
                    self.generator, params["n"], params["m"], seed
                )
                model = CostModel.for_database_size(params["n"])
                for algo_name in self.algorithms:
                    algorithm = get_algorithm(algo_name)
                    started = time.perf_counter()
                    result = algorithm.run(database, params["k"], SUM)
                    elapsed_ms = (time.perf_counter() - started) * 1e3
                    per_algo[algo_name].append(
                        (
                            model.execution_cost(result.tally),
                            float(result.tally.total),
                            elapsed_ms,
                            float(result.stop_position),
                        )
                    )
            for algo_name, samples in per_algo.items():
                table.rows.append(
                    ResultRow(
                        sweep_value=sweep_value,
                        algorithm=algo_name,
                        execution_cost=statistics.mean(s[0] for s in samples),
                        accesses=statistics.mean(s[1] for s in samples),
                        response_time_ms=statistics.mean(s[2] for s in samples),
                        stop_position=statistics.mean(s[3] for s in samples),
                    )
                )
            if progress is not None:
                progress(f"{self.name}: {self.sweep_name}={sweep_value} done")
        return table
