"""Batched query execution and backend comparison.

The monitoring framing (many standing top-k queries over one shared
database) makes *batch throughput* the metric that matters at scale: the
per-database work — canonical ordering, item→position matrices, per-item
overall scores — is paid once, and each query replays only its own
access sequence.  :class:`BatchRunner` implements that:

* backend ``"python"`` — the reference algorithms on the pure-Python
  :class:`repro.lists.database.Database`;
* backend ``"columnar"`` — a :class:`repro.columnar.ColumnarDatabase`;
  queries whose algorithm configuration has an exact vectorized kernel
  (``TopKAlgorithm.fast_kernel()``) run through
  :mod:`repro.columnar.engine` with a shared per-scoring
  :class:`QueryContext`; everything else runs the reference algorithm
  against columnar storage through the generic metered accessors.

Either way the results are identical — same ranked answers, same access
tallies — which :func:`compare_backends` re-checks on every run before
reporting a speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase, QueryContext, get_kernel
from repro.datagen.base import make_generator
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction
from repro.types import TopKResult


@dataclass(frozen=True)
class QuerySpec:
    """One query of a batch: algorithm (by registry name), k, scoring.

    ``options`` are keyword arguments for the algorithm's constructor
    (e.g. ``{"memoize": True}``); non-default options usually disable
    the vectorized kernel and fall back to the generic path.
    """

    algorithm: str = "bpa2"
    k: int = 10
    scoring: ScoringFunction = SUM
    options: Mapping[str, object] = field(default_factory=dict)


@dataclass
class BatchReport:
    """Outcome of one batch run."""

    backend: str
    results: list[TopKResult]
    seconds: float
    kernel_queries: int  # how many queries ran through a vectorized kernel

    @property
    def queries(self) -> int:
        """Number of executed queries."""
        return len(self.results)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 for an empty batch, not 0/0)."""
        if not self.results:
            return 0.0
        return self.queries / self.seconds if self.seconds > 0 else float("inf")


class BatchRunner:
    """Executes many queries over one database on a chosen backend.

    Args:
        database: either backend's database; converted as needed
            (conversion happens once, before timing starts).
        backend: ``"columnar"`` (default) or ``"python"``.
    """

    def __init__(
        self,
        database: Database | ColumnarDatabase,
        *,
        backend: str = "columnar",
    ) -> None:
        if backend not in ("python", "columnar"):
            raise ValueError(f"unknown backend {backend!r}")
        self._backend = backend
        if backend == "columnar":
            self._database = (
                database
                if isinstance(database, ColumnarDatabase)
                else ColumnarDatabase.from_database(database)
            )
        else:
            self._database = (
                database.to_database()
                if isinstance(database, ColumnarDatabase)
                else database
            )
        # One QueryContext per scoring function, shared across the batch.
        self._contexts: dict[ScoringFunction, QueryContext] = {}

    @property
    def backend(self) -> str:
        """Which backend this runner executes on."""
        return self._backend

    @property
    def database(self) -> Database | ColumnarDatabase:
        """The (possibly converted) database queries run against."""
        return self._database

    def _context(self, scoring: ScoringFunction) -> QueryContext:
        context = self._contexts.get(scoring)
        if context is None:
            context = QueryContext(self._database, scoring)
            self._contexts[scoring] = context
        return context

    def run_one(self, spec: QuerySpec) -> tuple[TopKResult, bool]:
        """Execute one query; returns (result, used_vectorized_kernel).

        A ``k`` larger than the database is clamped to ``n`` — a batch
        driver serves whatever specs the workload hands it, and "all
        items, ranked" is the only sensible answer to an over-ask.
        ``k < 1`` still raises :class:`repro.errors.InvalidQueryError`.
        """
        k = min(spec.k, self._database.n)
        algorithm = get_algorithm(spec.algorithm, **dict(spec.options))
        if self._backend == "columnar":
            kernel_name = algorithm.fast_kernel()
            if kernel_name is not None:
                kernel = get_kernel(kernel_name)
                return kernel(self._context(spec.scoring), k, spec.scoring), True
        return algorithm.run(self._database, k, spec.scoring), False

    def run(self, queries: Sequence[QuerySpec]) -> BatchReport:
        """Execute the batch and time it end to end.

        The timer covers everything a fresh batch pays, including the
        shared per-scoring precomputation — the amortization is the
        point, not an accounting trick.
        """
        results: list[TopKResult] = []
        kernel_queries = 0
        started = time.perf_counter()
        for spec in queries:
            result, used_kernel = self.run_one(spec)
            results.append(result)
            kernel_queries += used_kernel
        seconds = time.perf_counter() - started
        return BatchReport(
            backend=self._backend,
            results=results,
            seconds=seconds,
            kernel_queries=kernel_queries,
        )


def default_query_batch(
    count: int,
    *,
    algorithm: str = "bpa2",
    k_max: int = 20,
    scoring: ScoringFunction = SUM,
) -> list[QuerySpec]:
    """A deterministic mixed-k batch: k cycles over ``1..k_max``."""
    return [
        QuerySpec(algorithm=algorithm, k=(i % k_max) + 1, scoring=scoring)
        for i in range(count)
    ]


def compare_backends(
    *,
    n: int = 10_000,
    m: int = 3,
    queries: int = 100,
    k: int = 20,
    algorithm: str = "bpa2",
    generator: str = "uniform",
    seed: int = 42,
    repeats: int = 1,
) -> dict:
    """Run one batch on both backends and report the speedup as a dict.

    The batch is identical on both sides (same specs, same database
    content); results are cross-checked for equality — a mismatch is a
    bug, reported loudly rather than averaged away.  With ``repeats``
    > 1 each backend is timed that many times and the best run kept
    (standard practice to suppress scheduler noise).
    """
    database = make_generator(generator).generate(n, m, seed=seed)
    batch = default_query_batch(queries, algorithm=algorithm, k_max=k)

    timings: dict[str, BatchReport] = {}
    for backend in ("python", "columnar"):
        best: BatchReport | None = None
        for _ in range(max(1, repeats)):
            # A fresh runner per repeat so every timed run pays the full
            # cost of a cold batch, including the columnar per-scoring
            # precomputation — repeats suppress scheduler noise, they
            # must not warm the context cache.
            report = BatchRunner(database, backend=backend).run(batch)
            if best is None or report.seconds < best.seconds:
                best = report
        timings[backend] = best

    python_report = timings["python"]
    columnar_report = timings["columnar"]
    identical = all(
        a == b and a.extras == b.extras
        for a, b in zip(python_report.results, columnar_report.results)
    )
    speedup = (
        python_report.seconds / columnar_report.seconds
        if columnar_report.seconds > 0
        else float("inf")
    )
    return {
        "config": {
            "n": n,
            "m": m,
            "k_max": k,
            "queries": queries,
            "algorithm": algorithm,
            "generator": generator,
            "seed": seed,
            "repeats": repeats,
        },
        "python_backend": {
            "seconds": python_report.seconds,
            "queries_per_second": python_report.queries_per_second,
        },
        "columnar_backend": {
            "seconds": columnar_report.seconds,
            "queries_per_second": columnar_report.queries_per_second,
            "vectorized_kernel_queries": columnar_report.kernel_queries,
        },
        "speedup": speedup,
        "results_identical": identical,
    }
