"""Experimental defaults (paper Table 1) and scale presets.

The paper runs every experiment at ``n = 100,000`` items per list.  A
pure-Python per-access simulation makes the full grid slow, so the bench
suite supports three scales selected by the ``REPRO_SCALE`` environment
variable (or explicitly through the API):

========  ==========================  ======================================
scale     lists size                  intended use
``smoke``  n = 2,000, short sweeps    CI / pytest-benchmark runs (seconds)
``default`` n = 10,000, full sweeps   interactive runs (minutes)
``paper``  n = 100,000, full sweeps   faithful paper grid (hours)
========  ==========================  ======================================

All *shape* conclusions (who wins, how gaps scale with m/k/n/alpha) are
asserted at every scale; EXPERIMENTS.md records default-scale tables plus
paper-scale spot checks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PaperDefaults:
    """Table 1 of the paper."""

    n: int = 100_000
    k: int = 20
    m: int = 8
    zipf_theta: float = 0.7


PAPER_DEFAULTS = PaperDefaults()


@dataclass(frozen=True, slots=True)
class Scale:
    """One bench scale: base parameters and sweep grids."""

    name: str
    n: int
    k: int
    m: int
    m_sweep: tuple[int, ...]
    k_sweep: tuple[int, ...]
    n_sweep: tuple[int, ...]
    repeats: int = 1  # databases (seeds) per point; metrics are averaged
    seed: int = 42

    def scaled_note(self) -> str:
        """One-line provenance string for report headers."""
        return f"scale={self.name} (n={self.n}, k={self.k}, m={self.m})"


SMOKE = Scale(
    name="smoke",
    n=2_000,
    k=10,
    m=5,
    m_sweep=(2, 4, 6, 8),
    k_sweep=(5, 10, 20, 40),
    n_sweep=(500, 1_000, 2_000, 4_000),
)

DEFAULT = Scale(
    name="default",
    n=10_000,
    k=20,
    m=8,
    m_sweep=(2, 4, 6, 8, 10, 12, 14, 16, 18),
    k_sweep=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    n_sweep=(2_500, 5_000, 7_500, 10_000, 12_500, 15_000, 17_500, 20_000),
)

PAPER = Scale(
    name="paper",
    n=100_000,
    k=20,
    m=8,
    m_sweep=(2, 4, 6, 8, 10, 12, 14, 16, 18),
    k_sweep=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    n_sweep=(25_000, 50_000, 75_000, 100_000, 125_000, 150_000, 175_000, 200_000),
)

_SCALES = {scale.name: scale for scale in (SMOKE, DEFAULT, PAPER)}


def resolve_scale(name: str | None = None) -> Scale:
    """Pick a scale: explicit name > ``REPRO_SCALE`` env > ``default``."""
    chosen = name or os.environ.get("REPRO_SCALE", "default")
    if chosen not in _SCALES:
        raise KeyError(f"unknown scale {chosen!r}; known: {sorted(_SCALES)}")
    return _SCALES[chosen]
