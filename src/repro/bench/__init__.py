"""The paper's experimental suite (Section 6), runnable end to end.

* :mod:`repro.bench.config` — Table 1 defaults and scale presets;
* :mod:`repro.bench.harness` — sweep runner and result tables;
* :mod:`repro.bench.experiments` — one entry per paper figure (3-17)
  plus the headline-claim and adversarial-bound experiments.

Run from the command line::

    python -m repro figure fig3          # one figure
    python -m repro figure all           # everything
    REPRO_SCALE=paper python -m repro figure fig3   # full paper scale
"""

from repro.bench.batch import (
    BatchReport,
    BatchRunner,
    QuerySpec,
    compare_backends,
    default_query_batch,
)
from repro.bench.config import PAPER_DEFAULTS, Scale, resolve_scale
from repro.bench.harness import Experiment, ResultRow, ResultTable
from repro.bench.experiments import get_figure, list_figures

__all__ = [
    "PAPER_DEFAULTS",
    "Scale",
    "resolve_scale",
    "Experiment",
    "ResultRow",
    "ResultTable",
    "get_figure",
    "list_figures",
    "BatchRunner",
    "BatchReport",
    "QuerySpec",
    "default_query_batch",
    "compare_backends",
]
