"""The paper's figures as runnable experiments.

Every figure of the evaluation section (Figures 3-17) is represented by
one :class:`Experiment`.  The mapping (see DESIGN.md section 4):

* Figures 3-5:   cost / accesses / time vs m, uniform database;
* Figures 6-8:   cost / accesses / time vs m, Gaussian database;
* Figures 9-11:  cost vs m, correlated (alpha = 0.001 / 0.01 / 0.1);
* Figures 12-14: cost vs k (uniform, correlated 0.01, correlated 0.001);
* Figures 15-17: cost vs n (uniform, correlated 0.01, correlated 0.0001).

``get_figure("fig3")`` returns the experiment; ``run()`` produces the
table.  The ``claims`` experiment computes the paper's headline speedup
factors ((m+6)/8 for BPA, (m+1)/2 for BPA2).
"""

from __future__ import annotations

from repro.bench.harness import Experiment
from repro.datagen.base import GeneratorSpec

_UNIFORM = GeneratorSpec("uniform")
_GAUSSIAN = GeneratorSpec("gaussian")


def _correlated(alpha: float) -> GeneratorSpec:
    return GeneratorSpec("correlated", {"alpha": alpha})


_FIGURES: dict[str, Experiment] = {}


def _define(experiment: Experiment) -> None:
    _FIGURES[experiment.name] = experiment


# --- Effect of the number of lists (Figures 3-11) --------------------------

_define(Experiment(
    name="fig3",
    title="Execution cost vs number of lists (uniform database)",
    sweep_name="m",
    generator=_UNIFORM,
    metric="execution_cost",
))
_define(Experiment(
    name="fig4",
    title="Number of accesses vs number of lists (uniform database)",
    sweep_name="m",
    generator=_UNIFORM,
    metric="accesses",
))
_define(Experiment(
    name="fig5",
    title="Response time vs number of lists (uniform database)",
    sweep_name="m",
    generator=_UNIFORM,
    metric="response_time_ms",
))
_define(Experiment(
    name="fig6",
    title="Execution cost vs number of lists (Gaussian database)",
    sweep_name="m",
    generator=_GAUSSIAN,
    metric="execution_cost",
))
_define(Experiment(
    name="fig7",
    title="Number of accesses vs number of lists (Gaussian database)",
    sweep_name="m",
    generator=_GAUSSIAN,
    metric="accesses",
))
_define(Experiment(
    name="fig8",
    title="Response time vs number of lists (Gaussian database)",
    sweep_name="m",
    generator=_GAUSSIAN,
    metric="response_time_ms",
))
_define(Experiment(
    name="fig9",
    title="Execution cost vs number of lists (correlated, alpha=0.001)",
    sweep_name="m",
    generator=_correlated(0.001),
    metric="execution_cost",
))
_define(Experiment(
    name="fig10",
    title="Execution cost vs number of lists (correlated, alpha=0.01)",
    sweep_name="m",
    generator=_correlated(0.01),
    metric="execution_cost",
))
_define(Experiment(
    name="fig11",
    title="Execution cost vs number of lists (correlated, alpha=0.1)",
    sweep_name="m",
    generator=_correlated(0.1),
    metric="execution_cost",
))

# --- Effect of k (Figures 12-14) --------------------------------------------

_define(Experiment(
    name="fig12",
    title="Execution cost vs k (uniform database, m=8)",
    sweep_name="k",
    generator=_UNIFORM,
    metric="execution_cost",
))
_define(Experiment(
    name="fig13",
    title="Execution cost vs k (correlated, alpha=0.01, m=8)",
    sweep_name="k",
    generator=_correlated(0.01),
    metric="execution_cost",
))
_define(Experiment(
    name="fig14",
    title="Execution cost vs k (correlated, alpha=0.001, m=8)",
    sweep_name="k",
    generator=_correlated(0.001),
    metric="execution_cost",
))

# --- Effect of n (Figures 15-17) --------------------------------------------

_define(Experiment(
    name="fig15",
    title="Execution cost vs n (uniform database, m=8)",
    sweep_name="n",
    generator=_UNIFORM,
    metric="execution_cost",
))
_define(Experiment(
    name="fig16",
    title="Execution cost vs n (correlated, alpha=0.01, m=8)",
    sweep_name="n",
    generator=_correlated(0.01),
    metric="execution_cost",
))
_define(Experiment(
    name="fig17",
    title="Execution cost vs n (correlated, alpha=0.0001, m=8)",
    sweep_name="n",
    generator=_correlated(0.0001),
    metric="execution_cost",
))


def list_figures() -> list[str]:
    """All experiment ids in definition order."""
    return list(_FIGURES)


def get_figure(name: str) -> Experiment:
    """Fetch one figure experiment by id (e.g. ``"fig3"``)."""
    if name not in _FIGURES:
        raise KeyError(f"unknown figure {name!r}; known: {list(_FIGURES)}")
    return _FIGURES[name]


def speedup_factors(table) -> dict[str, dict[float, float]]:
    """Headline-claim ratios from an m-sweep cost table.

    Returns, per sweep value: measured TA/BPA and TA/BPA2 cost ratios plus
    the paper's predicted factors (m+6)/8 and (m+1)/2.
    """
    out: dict[str, dict[float, float]] = {
        "bpa_measured": {}, "bpa_paper": {},
        "bpa2_measured": {}, "bpa2_paper": {},
    }
    for m in table.sweep_values:
        ta_cost = table.value(m, "ta", "execution_cost")
        out["bpa_measured"][m] = ta_cost / table.value(m, "bpa", "execution_cost")
        out["bpa2_measured"][m] = ta_cost / table.value(m, "bpa2", "execution_cost")
        out["bpa_paper"][m] = (m + 6) / 8
        out["bpa2_paper"][m] = (m + 1) / 2
    return out
