"""Monotonic scoring functions.

The paper requires the aggregation function ``f`` to be *monotonic*:
``f(x1..xm) <= f(x'1..x'm)`` whenever ``xi <= x'i`` for every ``i``
(Section 2).  All stock functions here are monotonic over non-negative
scores; :func:`check_monotonic` probes arbitrary callables.
"""

from repro.scoring.base import ScoringFunction, check_monotonic, ensure_monotonic
from repro.scoring.functions import (
    AverageScoring,
    MaxScoring,
    MinScoring,
    ProductScoring,
    SumScoring,
    WeightedSumScoring,
)

SUM = SumScoring()
MIN = MinScoring()
MAX = MaxScoring()
AVERAGE = AverageScoring()

__all__ = [
    "ScoringFunction",
    "check_monotonic",
    "ensure_monotonic",
    "SumScoring",
    "WeightedSumScoring",
    "MinScoring",
    "MaxScoring",
    "AverageScoring",
    "ProductScoring",
    "SUM",
    "MIN",
    "MAX",
    "AVERAGE",
]
