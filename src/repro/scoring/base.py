"""Scoring-function protocol and monotonicity verification."""

from __future__ import annotations

import itertools
import random
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import NonMonotonicScoringError
from repro.types import Score


@runtime_checkable
class ScoringFunction(Protocol):
    """Anything that aggregates ``m`` local scores into one overall score.

    Implementations must be monotonic for TA/BPA/BPA2 to be correct.  The
    ``name`` attribute is used in reports.
    """

    name: str

    def __call__(self, scores: Sequence[Score]) -> Score:
        """Aggregate local scores (one per list, in list order)."""
        ...


def check_monotonic(
    function: ScoringFunction,
    arity: int,
    *,
    samples: int = 200,
    seed: int = 0,
    low: float = 0.0,
    high: float = 1.0,
) -> bool:
    """Probe ``function`` for monotonicity violations.

    Draws random score vectors and dominating perturbations; returns
    ``False`` on the first violation found.  A ``True`` result is evidence,
    not proof — monotonicity over the reals is undecidable by sampling —
    but catches the common mistakes (e.g. weighted sums with negative
    weights).
    """
    rng = random.Random(seed)
    for _ in range(samples):
        base = [rng.uniform(low, high) for _ in range(arity)]
        bumped = list(base)
        # Bump a random non-empty subset of coordinates upward.
        k = rng.randint(1, arity)
        for index in rng.sample(range(arity), k):
            bumped[index] += rng.uniform(0.0, high - low) + 1e-12
        if function(base) > function(bumped) + 1e-12:
            return False
    # Also probe the lattice corners for small arities.
    if arity <= 6:
        corners = list(itertools.product((low, high), repeat=arity))
        for a in corners:
            for b in corners:
                if all(x <= y for x, y in zip(a, b)):
                    if function(list(a)) > function(list(b)) + 1e-12:
                        return False
    return True


def ensure_monotonic(function: ScoringFunction, arity: int, **kwargs) -> None:
    """Raise :class:`NonMonotonicScoringError` if probing finds a violation."""
    if not check_monotonic(function, arity, **kwargs):
        name = getattr(function, "name", repr(function))
        raise NonMonotonicScoringError(
            f"scoring function {name} is not monotonic; "
            "TA/BPA/BPA2 require monotonic aggregation (paper, Section 2)"
        )
