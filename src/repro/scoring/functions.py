"""Stock monotonic scoring functions.

All are monotonic over non-negative local scores (``ProductScoring``
additionally requires non-negative inputs, which the paper's problem
definition guarantees: local scores are non-negative reals).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ScoringError
from repro.types import Score


class SumScoring:
    """``f(s1..sm) = s1 + ... + sm`` — the paper's evaluation default."""

    name = "sum"

    def __call__(self, scores: Sequence[Score]) -> Score:
        return math.fsum(scores)

    def __repr__(self) -> str:
        return "SumScoring()"


class WeightedSumScoring:
    """``f(s1..sm) = w1*s1 + ... + wm*sm`` with non-negative weights.

    Negative weights would break monotonicity, so they are rejected at
    construction time.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ScoringError("weighted sum needs at least one weight")
        if any(w < 0 for w in weights):
            raise ScoringError(
                "weighted sum weights must be non-negative to stay monotonic"
            )
        self._weights = tuple(float(w) for w in weights)
        if not any(w > 0 for w in self._weights):
            # All-zero vectors score every item 0.0, collapsing the
            # total order to id-only ties — a degenerate "top-k" that no
            # caller ever means.  (This also rejects all-NaN vectors,
            # which would poison every aggregate.)
            raise ScoringError(
                "weighted sum needs at least one strictly positive weight"
            )
        # The name is an identity: it feeds the normalized query cache
        # key (repro.exec.keys.scoring_key), so it must distinguish any
        # two weight vectors that rank differently.  Python float reprs
        # are shortest-exact (repr round-trips, so distinct floats never
        # share one) — a lossy format such as ``{w:g}`` (6 significant
        # digits) would collide e.g. 0.3 with 0.30000004.
        self.name = f"wsum[{','.join(repr(w) for w in self._weights)}]"

    @property
    def weights(self) -> tuple[float, ...]:
        """The weight vector."""
        return self._weights

    def __call__(self, scores: Sequence[Score]) -> Score:
        if len(scores) != len(self._weights):
            raise ScoringError(
                f"expected {len(self._weights)} scores, got {len(scores)}"
            )
        return math.fsum(w * s for w, s in zip(self._weights, scores))

    def __repr__(self) -> str:
        return f"WeightedSumScoring({list(self._weights)!r})"


class MinScoring:
    """``f = min`` — the classic fuzzy-conjunction aggregation."""

    name = "min"

    def __call__(self, scores: Sequence[Score]) -> Score:
        return min(scores)

    def __repr__(self) -> str:
        return "MinScoring()"


class MaxScoring:
    """``f = max`` — fuzzy disjunction."""

    name = "max"

    def __call__(self, scores: Sequence[Score]) -> Score:
        return max(scores)

    def __repr__(self) -> str:
        return "MaxScoring()"


class AverageScoring:
    """``f = mean`` — same ranking as sum, different scale."""

    name = "avg"

    def __call__(self, scores: Sequence[Score]) -> Score:
        return math.fsum(scores) / len(scores)

    def __repr__(self) -> str:
        return "AverageScoring()"


class ProductScoring:
    """``f = s1 * ... * sm`` — monotonic for non-negative scores."""

    name = "product"

    def __call__(self, scores: Sequence[Score]) -> Score:
        result = 1.0
        for score in scores:
            if score < 0:
                raise ScoringError(
                    "product scoring requires non-negative local scores"
                )
            result *= score
        return result

    def __repr__(self) -> str:
        return "ProductScoring()"
