"""Fagin's Algorithm (FA).

Phase 1: sorted access in parallel until at least ``k`` items have been
seen under sorted access *in every list*.  Phase 2: random-access the
missing local scores of every seen item, compute overall scores, return
the k best.  (Fagin 1999; paper Section 3.1.)
"""

from __future__ import annotations

from repro.algorithms.base import TopKAlgorithm, TopKBuffer, register
from repro.lists.accessor import DatabaseAccessor
from repro.types import ItemId


@register
class FaginsAlgorithm(TopKAlgorithm):
    """FA: stop sorted access after k items are fully seen."""

    name = "fa"

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m = accessor.m
        n = accessor.n
        # seen_in[item] = set of list indices where the item surfaced
        # under *sorted* access (FA's phase-1 bookkeeping).
        seen_in: dict[ItemId, set[int]] = {}
        local: dict[ItemId, dict[int, float]] = {}
        fully_seen = 0
        position = 0

        while fully_seen < k and position < n:
            position += 1
            for index, list_accessor in enumerate(accessor.accessors):
                entry = list_accessor.sorted_next()
                lists_with_item = seen_in.setdefault(entry.item, set())
                if index not in lists_with_item:
                    lists_with_item.add(index)
                    local.setdefault(entry.item, {})[index] = entry.score
                    if len(lists_with_item) == m:
                        fully_seen += 1

        # Phase 2: complete the picture with random accesses "as needed".
        buffer = TopKBuffer(k)
        for item, scores_by_list in local.items():
            for index, list_accessor in enumerate(accessor.accessors):
                if index not in scores_by_list:
                    score, _position = list_accessor.random_lookup(item)
                    scores_by_list[index] = score
            ordered = [scores_by_list[index] for index in range(m)]
            buffer.add(item, scoring(ordered))
        return buffer.ranked(), position, position, {}
