"""The Threshold Algorithm (TA) — the paper's main baseline.

One round = one parallel sorted access per list; every item surfacing
under sorted access is immediately completed via random accesses to the
other ``m - 1`` lists; the round's threshold is the scoring function
applied to the last scores seen under sorted access; stop as soon as the
running top-k set ``Y`` holds k items scoring at least the threshold.
(Fagin/Lotem/Naor 2001; paper Section 3.2.)

Access accounting follows the paper's Lemma 2 exactly: TA performs
``(m - 1)`` random accesses for *every* sorted access, even when the item
was already seen in an earlier round through another list (the paper's
Example 2 counts 36 = 18*2 random accesses this way).  Pass
``memoize=True`` for the common engineering optimization that skips
random accesses for already-seen items — an ablation, not the paper's TA.
"""

from __future__ import annotations

from repro.algorithms.base import (
    TopKAlgorithm,
    TopKBuffer,
    compute_overall,
    register,
)
from repro.errors import InvalidQueryError
from repro.lists.accessor import DatabaseAccessor
from repro.types import ItemId, Score


@register
class ThresholdAlgorithm(TopKAlgorithm):
    """TA with the paper's stopping rule and access accounting.

    Args:
        memoize: skip repeat random accesses for already-seen items
            (ablation; the paper's accounting keeps them).
        approximation: Fagin's theta-approximation (theta >= 1).  With
            ``approximation = theta > 1`` the algorithm stops as soon as
            k items reach ``threshold / theta``; every missed item is
            then guaranteed to score at most ``theta`` times the k-th
            returned score.  Requires non-negative local scores.
            ``1.0`` (default) is the exact algorithm.
    """

    name = "ta"

    def __init__(self, *, memoize: bool = False, approximation: float = 1.0) -> None:
        if approximation < 1.0:
            raise InvalidQueryError(
                f"approximation factor must be >= 1, got {approximation}"
            )
        self._memoize = memoize
        self._theta = approximation

    @property
    def memoize(self) -> bool:
        """Whether random accesses are skipped for already-seen items."""
        return self._memoize

    @property
    def approximation(self) -> float:
        """The theta-approximation factor (1.0 = exact)."""
        return self._theta

    def fast_kernel(self) -> str | None:
        """``"ta"`` for the exact paper configuration, else ``None``."""
        if not self._memoize and self._theta == 1.0:
            return "ta"
        return None

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m = accessor.m
        n = accessor.n
        buffer = TopKBuffer(k)
        overall: dict[ItemId, Score] = {}
        last_scores: list[Score] = [0.0] * m
        position = 0

        while True:
            position += 1
            for index, list_accessor in enumerate(accessor.accessors):
                entry = list_accessor.sorted_next()
                last_scores[index] = entry.score
                if entry.item in overall:
                    if not self._memoize:
                        # Paper accounting: the random probes happen again
                        # even though the overall score is already known.
                        for other_index, other in enumerate(accessor.accessors):
                            if other_index != index:
                                other.random_lookup(entry.item)
                    continue
                score = compute_overall(
                    accessor, entry.item, index, entry.score, scoring
                )
                overall[entry.item] = score
                buffer.add(entry.item, score)

            threshold = scoring(last_scores)
            if buffer.all_at_least(threshold / self._theta):
                break
            if position >= n:  # exhausted; Y is exact by construction
                break

        return buffer.ranked(), position, position, {"threshold": scoring(last_scores)}
