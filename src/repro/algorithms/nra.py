"""NRA — No Random Access (extension baseline, not in the paper's eval).

For settings where random access is unavailable (e.g. web sources that
only stream ranked results), NRA scans under sorted access only and keeps
*score bounds* per seen item:

* worst(d): scoring with unknown local scores floored at 0;
* best(d):  scoring with unknown local scores replaced by the last score
  seen under sorted access in that list (an upper bound by sortedness).

It stops when the k-th best lower bound is at least the best upper bound
of every other item, including the virtual not-yet-seen item whose upper
bound is the TA threshold.  The returned *set* of items is exact; reported
scores are the lower bounds (exact once an item has been seen in every
list).  Requires non-negative local scores (the paper's problem setting).
"""

from __future__ import annotations

from repro.algorithms.base import TopKAlgorithm, register
from repro.lists.accessor import DatabaseAccessor
from repro.types import ItemId, Score, ScoredItem


@register
class NoRandomAccess(TopKAlgorithm):
    """NRA: sorted access only, bound-based stopping."""

    name = "nra"

    def fast_kernel(self) -> str | None:
        """``"nra"`` — the algorithm has no options, so the columnar
        kernel (:func:`repro.columnar.engine.fast_nra`) always applies."""
        return "nra"

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m = accessor.m
        n = accessor.n
        known: dict[ItemId, dict[int, Score]] = {}
        last_scores: list[Score] = [0.0] * m
        position = 0

        while True:
            position += 1
            for index, list_accessor in enumerate(accessor.accessors):
                entry = list_accessor.sorted_next()
                last_scores[index] = entry.score
                known.setdefault(entry.item, {})[index] = entry.score

            stop, ranked = self._check_stop(known, last_scores, k, scoring, m)
            if stop:
                return ranked, position, position, {}
            if position >= n:
                # Everything seen; bounds are exact.
                _stop, ranked = self._check_stop(
                    known, last_scores, k, scoring, m, force=True
                )
                return ranked, position, position, {}

    @staticmethod
    def _check_stop(
        known: dict[ItemId, dict[int, Score]],
        last_scores: list[Score],
        k: int,
        scoring,
        m: int,
        *,
        force: bool = False,
    ) -> tuple[bool, tuple[ScoredItem, ...]]:
        """Evaluate the NRA stop condition; returns (stop?, ranked top-k)."""
        if len(known) < k and not force:
            return False, ()
        bounds: list[tuple[Score, Score, ItemId]] = []  # (worst, best, item)
        for item, scores_by_list in known.items():
            worst_vector = [scores_by_list.get(i, 0.0) for i in range(m)]
            best_vector = [
                scores_by_list.get(i, last_scores[i]) for i in range(m)
            ]
            bounds.append((scoring(worst_vector), scoring(best_vector), item))
        # k best by (worst desc, item asc) — deterministic like TopKBuffer.
        bounds.sort(key=lambda entry: (-entry[0], entry[2]))
        top = bounds[:k]
        rest = bounds[k:]
        ranked = tuple(
            ScoredItem(item=item, score=worst) for worst, _best, item in top
        )
        if force:
            return True, ranked
        kth_worst = top[-1][0]
        best_unseen = scoring(list(last_scores))
        best_rest = max((best for _worst, best, _item in rest), default=float("-inf"))
        if kth_worst >= max(best_rest, best_unseen):
            return True, ranked
        return False, ranked
