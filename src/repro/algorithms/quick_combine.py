"""Quick-Combine: TA with adaptive sorted-access scheduling.

Güntzer, Kießling and Balke (paper reference [16]) observed that the
threshold ``f(s_1, ..., s_m)`` shrinks fastest if sorted access is spent
on the list whose scores are currently *dropping* fastest.  Instead of
TA's strict parallel rounds, Quick-Combine performs one sorted access at
a time on the list with the largest recent score decrease

    delta_i = (s_i(p_i - d) - s_i(p_i)) / d

over a lookahead window of ``d`` accesses, completes every newly seen
item via random accesses, and applies the standard threshold stop test
(which is valid for any access order: an unseen item is bounded by the
last seen score of *every* list).

This is an extension baseline, not part of the paper's evaluation; it is
benchmarked against TA/BPA in ``benchmarks/test_quick_combine.py``.
Random accesses are performed once per seen item (there is no
round-structure forcing re-probes, so memoization is the natural
accounting here).
"""

from __future__ import annotations

from repro.algorithms.base import (
    TopKAlgorithm,
    TopKBuffer,
    compute_overall,
    register,
)
from repro.errors import InvalidQueryError
from repro.types import ItemId, Score


@register
class QuickCombine(TopKAlgorithm):
    """Adaptive-scheduling TA variant (Güntzer et al., ITCC 2001).

    Args:
        lookahead: window size ``d`` for the score-drop estimate (>= 1).
            Each list is primed with ``lookahead + 1`` sorted accesses
            before adaptive scheduling starts.
    """

    name = "qc"

    def __init__(self, *, lookahead: int = 3) -> None:
        if lookahead < 1:
            raise InvalidQueryError(f"lookahead must be >= 1, got {lookahead}")
        self._lookahead = lookahead

    @property
    def lookahead(self) -> int:
        """The score-drop estimation window."""
        return self._lookahead

    def fast_kernel(self) -> str | None:
        """``"qc"`` for the default lookahead, else ``None``."""
        if self._lookahead == 3:
            return "qc"
        return None

    def _execute(self, accessor, k, scoring):
        m = accessor.m
        n = accessor.n
        buffer = TopKBuffer(k)
        overall: dict[ItemId, Score] = {}
        # history[i] = scores seen under sorted access in list i, in order.
        history: list[list[Score]] = [[] for _ in range(m)]

        def consume(index: int) -> None:
            entry = accessor[index].sorted_next()
            history[index].append(entry.score)
            if entry.item not in overall:
                score = compute_overall(
                    accessor, entry.item, index, entry.score, scoring
                )
                overall[entry.item] = score
                buffer.add(entry.item, score)

        def threshold() -> Score:
            return scoring([h[-1] for h in history])

        def drop(index: int) -> float:
            h = history[index]
            window = min(self._lookahead, len(h) - 1)
            if window == 0:
                return 0.0
            return (h[-1 - window] - h[-1]) / window

        # Prime every list so drops are defined and the threshold exists.
        priming = min(self._lookahead + 1, n)
        for _ in range(priming):
            for index in range(m):
                consume(index)
            if buffer.all_at_least(threshold()):
                depth = max(len(h) for h in history)
                return buffer.ranked(), depth, depth, {"depths": self._depths(history)}

        # Adaptive phase: one sorted access at a time.
        while True:
            if buffer.all_at_least(threshold()):
                break
            candidates = [
                index for index in range(m) if not accessor[index].exhausted
            ]
            if not candidates:
                break  # everything seen; Y is exact
            best = max(candidates, key=lambda index: (drop(index), -index))
            consume(best)

        depth = max(len(h) for h in history)
        extras = {"depths": self._depths(history), "threshold": threshold()}
        return buffer.ranked(), depth, depth, extras

    @staticmethod
    def _depths(history: list[list[Score]]) -> tuple[int, ...]:
        return tuple(len(h) for h in history)
