"""Top-k algorithms over sorted lists.

Baselines from the literature (all implemented from scratch):

* :class:`NaiveScan` — full scan of every list, O(m*n);
* :class:`FaginsAlgorithm` (FA) — stop once k items were seen under sorted
  access in *all* lists (Fagin 1999);
* :class:`ThresholdAlgorithm` (TA) — stop once k seen items reach the
  threshold built from the last scores seen under sorted access
  (Fagin/Lotem/Naor 2001, Güntzer et al. 2001, Nepal/Ramakrishna 1999);
* :class:`NoRandomAccess` (NRA) — sorted-access-only baseline with
  lower/upper score bounds (extension; not part of the paper's
  evaluation).

The paper's own algorithms, BPA and BPA2, live in :mod:`repro.core`.
"""

from repro.algorithms.base import TopKAlgorithm, TopKBuffer, get_algorithm
from repro.algorithms.fa import FaginsAlgorithm
from repro.algorithms.naive import NaiveScan
from repro.algorithms.nra import NoRandomAccess
from repro.algorithms.quick_combine import QuickCombine
from repro.algorithms.ta import ThresholdAlgorithm

__all__ = [
    "TopKAlgorithm",
    "TopKBuffer",
    "get_algorithm",
    "NaiveScan",
    "FaginsAlgorithm",
    "ThresholdAlgorithm",
    "NoRandomAccess",
    "QuickCombine",
]
