"""Shared machinery for top-k algorithms.

:class:`TopKAlgorithm` is the abstract interface every algorithm
implements; :class:`TopKBuffer` maintains the running set ``Y`` of the k
best seen items that TA, BPA and BPA2 all use in their stopping rules.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import InvalidQueryError
from repro.lists.accessor import DatabaseAccessor
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction, ensure_monotonic
from repro.types import ItemId, Score, ScoredItem, TopKResult


class TopKBuffer:
    """The running set ``Y``: the k highest-scored items seen so far.

    Overall scores are final once computed (TA-family algorithms compute
    an item's full overall score the first time they see it), so a bounded
    min-heap suffices.  Ties are broken toward smaller item ids, matching
    the library-wide deterministic ordering.
    """

    __slots__ = ("_k", "_heap", "_members")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {k}")
        self._k = k
        # Heap entries are (score, -item): the root is the *worst* kept
        # item, and among equal scores the larger item id is evicted first.
        self._heap: list[tuple[Score, int]] = []
        self._members: set[ItemId] = set()

    @property
    def k(self) -> int:
        """Requested result size."""
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: ItemId) -> bool:
        return item in self._members

    def add(self, item: ItemId, score: Score) -> None:
        """Offer a scored item; keeps only the k best."""
        if item in self._members:
            return
        entry = (score, -item)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            self._members.add(item)
            return
        root = self._heap[0]
        if entry > root:
            evicted = heapq.heapreplace(self._heap, entry)
            self._members.discard(-evicted[1])
            self._members.add(item)

    @property
    def kth_score(self) -> Score:
        """Score of the worst kept item (``-inf`` until k items are held)."""
        if len(self._heap) < self._k:
            return float("-inf")
        return self._heap[0][0]

    def is_full(self) -> bool:
        """Whether k items have been collected."""
        return len(self._heap) >= self._k

    def all_at_least(self, threshold: Score) -> bool:
        """Stop test: k items held and every one scores >= ``threshold``."""
        return self.is_full() and self.kth_score >= threshold

    def ranked(self) -> tuple[ScoredItem, ...]:
        """The kept items, best first (score desc, item id asc)."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], -entry[1]))
        return tuple(ScoredItem(item=-neg, score=score) for score, neg in ordered)


class TopKAlgorithm(ABC):
    """Common driver for every top-k algorithm.

    Subclasses implement :meth:`_execute` against a metered
    :class:`DatabaseAccessor`; the base class validates the query,
    optionally probes the scoring function for monotonicity, and packages
    the result.
    """

    #: Short machine name, e.g. ``"ta"``; subclasses override.
    name: str = "abstract"
    #: Whether correctness requires a monotonic scoring function.
    requires_monotonic: bool = True

    def run(
        self,
        database: Database,
        k: int,
        scoring: ScoringFunction = SUM,
        *,
        verify_scoring: bool = False,
    ) -> TopKResult:
        """Answer a top-k query.

        Args:
            database: the sorted lists to query.
            k: number of answers (``1 <= k <= n``).
            scoring: monotonic aggregation function (default: sum, as in
                the paper's evaluation).
            verify_scoring: probe ``scoring`` for monotonicity first and
                raise :class:`repro.errors.NonMonotonicScoringError` on
                violation.  Off by default (it costs ~200 evaluations).
        """
        if not 1 <= k <= database.n:
            raise InvalidQueryError(
                f"k must be in 1..{database.n}, got {k}"
            )
        if verify_scoring and self.requires_monotonic:
            ensure_monotonic(scoring, database.m)
        accessor = DatabaseAccessor(database)
        items, rounds, stop_position, extras = self._execute(accessor, k, scoring)
        return TopKResult(
            items=items,
            tally=accessor.total_tally(),
            rounds=rounds,
            stop_position=stop_position,
            algorithm=self.name,
            extras=extras,
        )

    @abstractmethod
    def _execute(
        self,
        accessor: DatabaseAccessor,
        k: int,
        scoring: ScoringFunction,
    ) -> tuple[tuple[ScoredItem, ...], int, int, dict]:
        """Algorithm body: returns (items, rounds, stop_position, extras)."""

    def fast_kernel(self) -> str | None:
        """Name of the vectorized columnar kernel equivalent to this
        instance's configuration, or ``None`` when no exact kernel exists
        (non-default options, or no kernel written yet).

        When non-None, :func:`repro.columnar.engine.get_kernel` returns a
        callable producing results *identical* to :meth:`run` — same
        ranked top-k, same access tallies, same extras — on a
        :class:`repro.columnar.ColumnarDatabase`.  The batch runner
        (:class:`repro.bench.batch.BatchRunner`) dispatches through this
        hook; the equivalence is enforced by ``tests/differential/``.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def compute_overall(
    accessor: DatabaseAccessor,
    item: ItemId,
    source_list: int,
    source_score: Score,
    scoring: ScoringFunction,
    *,
    positions_out: list[tuple[int, int, Score]] | None = None,
) -> Score:
    """Random-access every other list for ``item`` and aggregate.

    ``source_list``/``source_score`` identify the (metered elsewhere)
    access that surfaced the item, so that list is not re-queried.  When
    ``positions_out`` is given, each random access appends
    ``(list_index, position, score)`` — BPA uses this to learn seen
    positions.
    """
    local_scores: list[Score] = [0.0] * accessor.m
    local_scores[source_list] = source_score
    for index, list_accessor in enumerate(accessor.accessors):
        if index == source_list:
            continue
        score, position = list_accessor.random_lookup(item)
        local_scores[index] = score
        if positions_out is not None:
            positions_out.append((index, position, score))
    return scoring(local_scores)


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator: register an algorithm under its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def get_algorithm(name: str, **kwargs) -> TopKAlgorithm:
    """Instantiate a registered algorithm by name (``ta``, ``bpa`` ...).

    The core algorithms (BPA/BPA2) register themselves when
    :mod:`repro.core` is imported; importing :mod:`repro` loads everything.
    """
    # Ensure all registrations ran.
    import repro.algorithms.block  # noqa: F401
    import repro.algorithms.fa  # noqa: F401
    import repro.algorithms.naive  # noqa: F401
    import repro.algorithms.nra  # noqa: F401
    import repro.algorithms.quick_combine  # noqa: F401
    import repro.algorithms.ta  # noqa: F401
    import repro.core.bpa  # noqa: F401
    import repro.core.bpa2  # noqa: F401

    if name not in _REGISTRY:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name](**kwargs)


def known_algorithms() -> list[str]:
    """Names of all registered algorithms."""
    try:
        get_algorithm("__none__")  # forces every registration module to load
    except KeyError:
        pass
    return sorted(_REGISTRY)
