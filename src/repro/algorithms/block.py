"""Block-based TA / BPA / BPA2 — the reference single-node variants.

The paper's middleware cost model charges per *access*, but every real
source (disk page, columnar slice, network round trip) serves a block of
entries for nearly the price of one.  These variants process ``width``
positions per round:

* one **sorted block** per list (``ta-block`` / ``bpa-block``) or one
  **direct block** per non-exhausted list — up to ``width`` direct
  accesses, each at the best position + 1, marks advancing the best
  position between them (``bpa2-block``);
* then **deduplicated** random probes: each distinct newly-surfaced item
  is completed exactly once, in every list that did not surface it this
  round (unlike classic TA's Lemma 2 accounting, which re-probes seen
  items).

Stop tests run once per block round with the round-end threshold, which
is never larger than any intermediate one, so the returned top-k is the
exact global top-k — bit-identical (items *and* scores) to the classic
algorithms' answers; ``tests/differential/test_block_variants.py``
proves it, and proves these reference implementations bit-identical
(tallies and rounds included) to the unified round-plan engine over
every transport.

``width=1`` degenerates to a memoized per-entry algorithm — still exact,
but with fewer random accesses than the paper's accounting, which is why
these register under their own names instead of replacing TA/BPA/BPA2.
"""

from __future__ import annotations

from repro.algorithms.base import TopKAlgorithm, TopKBuffer, register
from repro.core.best_position import make_tracker
from repro.errors import InvalidQueryError
from repro.exec.plan import BlockRound
from repro.lists.accessor import DatabaseAccessor
from repro.scoring import ScoringFunction
from repro.types import ItemId, Position, Score

_INF = float("inf")


class _BlockAlgorithm(TopKAlgorithm):
    """Shared validation and probe plumbing for the block variants."""

    def __init__(self, *, width: int = 8, tracker: str = "bitarray") -> None:
        if width < 1:
            raise InvalidQueryError(f"block width must be >= 1, got {width}")
        self._width = width
        self._tracker_kind = tracker

    @property
    def width(self) -> int:
        """Positions processed per block round."""
        return self._width

    @staticmethod
    def _probe(
        accessor: DatabaseAccessor, needs: list[list[ItemId]]
    ) -> tuple[dict[int, dict[ItemId, Score]], list[list[Position]]]:
        """Batched probes per list; returns scores by item and positions."""
        probes: dict[int, dict[ItemId, Score]] = {}
        positions: list[list[Position]] = []
        for j, items in enumerate(needs):
            if items:
                scores, pos = accessor[j].lookup_many(items)
                probes[j] = {
                    item: float(score) for item, score in zip(items, scores)
                }
                positions.append([int(p) for p in pos])
            else:
                probes[j] = {}
                positions.append([])
        return probes, positions


@register
class BlockTA(_BlockAlgorithm):
    """TA with block sorted access and deduplicated completion."""

    name = "ta-block"

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m, n = accessor.m, accessor.n
        buffer = TopKBuffer(k)
        seen: set[ItemId] = set()
        last: list[Score] = [0.0] * m
        position = 0
        rounds = 0
        while True:
            rounds += 1
            count = min(self._width, n - position)
            block = BlockRound(m)
            for i in range(m):
                entries = accessor[i].sorted_block(count)
                last[i] = entries[-1].score
                for entry in entries:
                    block.add(i, entry.item, entry.score)
            position += count
            new_items = block.new_items(seen)
            seen.update(new_items)
            needs = block.probe_needs(new_items)
            probes, _positions = self._probe(accessor, needs)
            for item in new_items:
                buffer.add(item, scoring(block.local_scores(item, probes)))
            threshold = scoring(last)
            if buffer.all_at_least(threshold) or position >= n:
                return buffer.ranked(), rounds, position, {
                    "threshold": threshold,
                    "block_width": self._width,
                }


@register
class BlockBPA(_BlockAlgorithm):
    """BPA with block sorted access; best positions at the originator."""

    name = "bpa-block"

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m, n = accessor.m, accessor.n
        buffer = TopKBuffer(k)
        seen: set[ItemId] = set()
        trackers = [make_tracker(self._tracker_kind, n) for _ in range(m)]
        seen_scores: list[dict[Position, Score]] = [{} for _ in range(m)]
        position = 0
        rounds = 0

        def note(i: int, pos: Position, score: Score) -> None:
            trackers[i].mark(pos)
            seen_scores[i][pos] = score

        while True:
            rounds += 1
            count = min(self._width, n - position)
            block = BlockRound(m)
            for i in range(m):
                for entry in accessor[i].sorted_block(count):
                    note(i, entry.position, entry.score)
                    block.add(i, entry.item, entry.score)
            position += count
            new_items = block.new_items(seen)
            seen.update(new_items)
            needs = block.probe_needs(new_items)
            probes, probe_positions = self._probe(accessor, needs)
            for j in range(m):
                for item, pos in zip(needs[j], probe_positions[j]):
                    note(j, pos, probes[j][item])
            for item in new_items:
                buffer.add(item, scoring(block.local_scores(item, probes)))
            lam = scoring(
                [seen_scores[i][trackers[i].best_position] for i in range(m)]
            )
            if buffer.all_at_least(lam) or position >= n:
                return buffer.ranked(), rounds, position, {
                    "lambda": lam,
                    "block_width": self._width,
                }


@register
class BlockBPA2(_BlockAlgorithm):
    """BPA2 with block direct access; best positions at the sources.

    Every list's direct block is independent of the others (probes land
    only at the end of the round), so a distributed transport can
    overlap all of them — the property the pipelined wire protocol
    exploits.
    """

    name = "bpa2-block"

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m, n = accessor.m, accessor.n
        buffer = TopKBuffer(k)
        seen: set[ItemId] = set()
        trackers = [make_tracker(self._tracker_kind, n) for _ in range(m)]
        exhausted = [False] * m
        rounds = 0

        while True:
            rounds += 1
            progressed = False
            block = BlockRound(m)
            for i in range(m):
                if exhausted[i]:
                    continue
                for _ in range(self._width):
                    pos = trackers[i].best_position + 1
                    if pos > n:
                        break
                    entry = accessor[i].direct_at(pos)
                    trackers[i].mark(pos)
                    block.add(i, entry.item, entry.score)
                    progressed = True
                if trackers[i].best_position >= n:
                    exhausted[i] = True
            new_items = block.new_items(seen)
            seen.update(new_items)
            needs = block.probe_needs(new_items)
            probes, probe_positions = self._probe(accessor, needs)
            for j in range(m):
                for pos in probe_positions[j]:
                    trackers[j].mark(pos)
            for item in new_items:
                buffer.add(item, scoring(block.local_scores(item, probes)))
            lam = scoring(
                [
                    _INF
                    if trackers[i].best_position == 0
                    else accessor[i].source.score_at(trackers[i].best_position)
                    for i in range(m)
                ]
            )
            if buffer.all_at_least(lam):
                break
            if not progressed:
                break
        stop_position = max(
            (tracker.best_position for tracker in trackers), default=0
        )
        return buffer.ranked(), rounds, stop_position, {
            "block_width": self._width,
        }
