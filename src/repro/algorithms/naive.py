"""The naive full-scan baseline.

"A naive algorithm is to scan all lists from beginning to end and,
maintain the local scores of each data item, compute the overall scores,
and return the k highest scored data items.  However, this algorithm is
executed in O(m*n)" — paper, Section 1.

It is the correctness oracle for every other algorithm in the test suite.
"""

from __future__ import annotations

from repro.algorithms.base import TopKAlgorithm, TopKBuffer, register
from repro.lists.accessor import DatabaseAccessor
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction
from repro.types import ScoredItem


@register
class NaiveScan(TopKAlgorithm):
    """Scan every list fully; exact but O(m*n)."""

    name = "naive"
    requires_monotonic = False  # correct for any scoring function

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m = accessor.m
        n = accessor.n
        local: dict[int, list[float]] = {}
        for index, list_accessor in enumerate(accessor.accessors):
            for _ in range(n):
                entry = list_accessor.sorted_next()
                local.setdefault(entry.item, [0.0] * m)[index] = entry.score
        buffer = TopKBuffer(k)
        for item, scores in local.items():
            buffer.add(item, scoring(scores))
        return buffer.ranked(), n, n, {}


def brute_force_topk(
    database: Database, k: int, scoring: ScoringFunction = SUM
) -> tuple[ScoredItem, ...]:
    """Unmetered exact top-k, for tests and oracles.

    Unlike :class:`NaiveScan` this touches the lists directly (no access
    accounting), so it is cheap to call in property-based tests.
    """
    totals: dict[int, list[float]] = {
        item: [0.0] * database.m for item in database.item_ids
    }
    for index, sorted_list in enumerate(database.lists):
        for entry in sorted_list.entries():
            totals[entry.item][index] = entry.score
    buffer = TopKBuffer(k)
    for item, scores in totals.items():
        buffer.add(item, scoring(scores))
    return buffer.ranked()
