"""Progressive top-k: stream answers without fixing k in advance.

Many of the paper's motivating applications (interactive search, result
pages, "give me more" UIs) do not know ``k`` up front.  This module
turns the threshold machinery into a generator: items are emitted in
non-increasing overall-score order the moment they *provably* cannot be
beaten by anything unseen — i.e. as soon as their score reaches the
current stopping value (TA's ``delta`` or BPA's ``lambda``).

Because BPA's ``lambda`` is never above TA's ``delta`` (Lemma 1), the
``mechanism="bpa"`` variant emits every answer at least as early — a
direct, practical payoff of the paper's contribution beyond fixed-k
queries.

Usage::

    for scored in progressive_topk(database):   # lazy; stop anytime
        print(scored.item, scored.score)
        if enough:
            break

The generator drives a metered accessor; pass ``tally_out`` to observe
the access counts consumed so far.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.core.best_position import make_tracker
from repro.errors import InvalidQueryError
from repro.lists.accessor import DatabaseAccessor
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction
from repro.types import AccessTally, ItemId, Score, ScoredItem


def progressive_topk(
    database: Database,
    scoring: ScoringFunction = SUM,
    *,
    mechanism: str = "bpa",
    tally_out: AccessTally | None = None,
) -> Iterator[ScoredItem]:
    """Yield all items in descending overall-score order, lazily.

    Args:
        database: the sorted lists to query.
        scoring: monotonic scoring function (default sum).
        mechanism: ``"bpa"`` (default; emits earliest) or ``"ta"``.
        tally_out: optional tally that is updated in place as accesses
            happen, so callers can account the cost of the prefix they
            actually consumed.
    """
    if mechanism not in ("ta", "bpa"):
        raise InvalidQueryError(
            f"mechanism must be 'ta' or 'bpa', got {mechanism!r}"
        )
    accessor = DatabaseAccessor(database)
    m = accessor.m
    n = accessor.n
    overall: dict[ItemId, Score] = {}
    # Max-heap of (negated score, item) for deterministic tie-breaking.
    ready: list[tuple[float, ItemId]] = []
    emitted: set[ItemId] = set()
    use_bpa = mechanism == "bpa"
    trackers = [make_tracker("bitarray", n) for _ in range(m)] if use_bpa else []
    seen_scores: list[dict[int, Score]] = [{} for _ in range(m)]
    last_scores: list[Score] = [0.0] * m

    def note(list_index: int, position: int, score: Score) -> None:
        if use_bpa:
            trackers[list_index].mark(position)
            seen_scores[list_index][position] = score

    def sync_tally() -> None:
        if tally_out is not None:
            total = accessor.total_tally()
            tally_out.sorted = total.sorted
            tally_out.random = total.random
            tally_out.direct = total.direct

    for position in range(1, n + 1):
        for index, list_accessor in enumerate(accessor.accessors):
            entry = list_accessor.sorted_next()
            last_scores[index] = entry.score
            note(index, entry.position, entry.score)
            if entry.item in overall:
                continue
            local: list[Score] = [0.0] * m
            local[index] = entry.score
            for other_index, other in enumerate(accessor.accessors):
                if other_index == index:
                    continue
                score, pos = other.random_lookup(entry.item)
                local[other_index] = score
                note(other_index, pos, score)
            total = scoring(local)
            overall[entry.item] = total
            heapq.heappush(ready, (-total, entry.item))

        if use_bpa:
            stop_value = scoring(
                [seen_scores[i][trackers[i].best_position] for i in range(m)]
            )
        else:
            stop_value = scoring(last_scores)

        sync_tally()
        while ready and -ready[0][0] >= stop_value:
            neg_score, item = heapq.heappop(ready)
            if item in emitted:
                continue
            emitted.add(item)
            yield ScoredItem(item=item, score=-neg_score)

    # Lists exhausted: everything is known; drain the rest in order.
    sync_tally()
    while ready:
        neg_score, item = heapq.heappop(ready)
        if item not in emitted:
            emitted.add(item)
            yield ScoredItem(item=item, score=-neg_score)
