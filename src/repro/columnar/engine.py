"""Vectorized query kernels over :class:`ColumnarDatabase`.

The reference algorithms (``repro.algorithms.ta``, ``repro.core.bpa*``)
pay ~1µs of interpreter overhead per metered access: every sorted or
random access walks accessor → list → dataclass construction.  The
kernels here execute the *same* access sequence — access for access,
float for float — against flat columns:

* all per-database work (canonical ordering, the item→position matrix,
  per-item overall scores under the scoring function) is hoisted into a
  :class:`QueryContext`, built once with NumPy and shared by every query
  of a batch (see :class:`repro.bench.batch.BatchRunner`);
* the per-query replay loop then touches nothing but flat lists,
  bytearrays and the shared :class:`TopKBuffer`.

Because the stop rules have no side effects and every access of
TA/BPA/BPA2 is determined by the data, replaying the access sequence on
precomputed columns yields *identical* results: the same ranked top-k,
the same per-mode access tallies, the same rounds/stop positions and
the same ``extras``.  This is not assumed — ``tests/differential/``
proves it against the reference implementations on Hypothesis-generated
databases, including tie-heavy ones.

Overall scores are precomputed with the *actual* scoring callable over
the score-matrix columns (argument order = list order, same floats), so
even non-associative aggregations like ``math.fsum`` match bit-for-bit.
"""

from __future__ import annotations

import heapq

from repro.algorithms.base import TopKBuffer
from repro.columnar.database import ColumnarDatabase
from repro.errors import InvalidQueryError
from repro.scoring import SUM, ScoringFunction
from repro.types import AccessTally, Score, ScoredItem, TopKResult

_INF = float("inf")


class QueryContext:
    """Per-(database, scoring) precomputation shared across a batch.

    Everything a kernel replay needs, as plain Python lists (scalar
    indexing on lists is ~3x faster than NumPy element access, and the
    replay loop is scalar by nature — NumPy does the heavy lifting once,
    here, at build time).
    """

    __slots__ = (
        "database",
        "scoring",
        "m",
        "n",
        "ids",
        "rows_at",
        "pos_of",
        "pos1_by_row",
        "score_at",
        "totals",
        "heap_entries",
    )

    def __init__(self, database: ColumnarDatabase, scoring: ScoringFunction) -> None:
        self.database = database
        self.scoring = scoring
        self.m = database.m
        self.n = database.n
        # The scoring-independent layout is shared (and cached) on the
        # database — see :class:`repro.columnar.database.DatabaseLayout`.
        layout = database.layout()
        #: row -> item id (ascending id order; "row" is the dense index).
        self.ids: list[int] = layout.ids
        #: per list: 0-based position -> row of the item ranked there.
        self.rows_at: list[list[int]] = layout.rows_at
        #: per list: row -> 0-based position of that item.
        self.pos_of: list[list[int]] = layout.pos_of
        #: per list: 0-based position -> local score (descending).
        self.score_at: list[list[float]] = layout.score_at
        #: row -> its 1-based position in every list (list order).
        self.pos1_by_row: list[list[int]] = layout.pos1_by_row
        #: row -> overall score under ``scoring`` (the exact callable).
        self.totals: list[float] = database.overall_scores(scoring)
        #: row -> the exact ``(score, -item)`` heap entry TopKBuffer would
        #: build for it, preallocated so the replay loop only indexes.
        self.heap_entries: list[tuple[float, int]] = list(
            zip(self.totals, (-item for item in self.ids))
        )


def _require_valid_k(k: int, n: int) -> None:
    # Mirrors TopKAlgorithm.run's validation so kernels fail identically.
    if not 1 <= k <= n:
        raise InvalidQueryError(f"k must be in 1..{n}, got {k}")


def _as_context(
    database: ColumnarDatabase | QueryContext, scoring: ScoringFunction
) -> QueryContext:
    if isinstance(database, QueryContext):
        if database.scoring is not scoring:
            raise InvalidQueryError(
                "QueryContext was precomputed for a different scoring function"
            )
        return database
    return QueryContext(database, scoring)


def fast_ta(
    database: ColumnarDatabase | QueryContext,
    k: int,
    scoring: ScoringFunction = SUM,
) -> TopKResult:
    """Exact replay of :class:`ThresholdAlgorithm` (defaults: no memoize,
    theta = 1) on columnar storage."""
    ctx = _as_context(database, scoring)
    m, n = ctx.m, ctx.n
    _require_valid_k(k, n)
    rows_at, score_at, totals, ids = ctx.rows_at, ctx.score_at, ctx.totals, ctx.ids

    buffer = TopKBuffer(k)
    evaluated = bytearray(n)
    sorted_count = 0
    last: list[Score] = [0.0] * m
    position = 0

    while True:
        position += 1
        p = position - 1
        for i in range(m):
            row = rows_at[i][p]
            last[i] = score_at[i][p]
            sorted_count += 1
            # TA's paper accounting: m-1 random accesses per sorted
            # access, repeated even for already-seen items (Lemma 2).
            if not evaluated[row]:
                evaluated[row] = 1
                buffer.add(ids[row], totals[row])
        threshold = scoring(last)
        if buffer.all_at_least(threshold):
            break
        if position >= n:
            break

    tally = AccessTally(sorted=sorted_count, random=sorted_count * (m - 1))
    return TopKResult(
        items=buffer.ranked(),
        tally=tally,
        rounds=position,
        stop_position=position,
        algorithm="ta",
        extras={"threshold": scoring(last)},
    )


def fast_bpa(
    database: ColumnarDatabase | QueryContext,
    k: int,
    scoring: ScoringFunction = SUM,
) -> TopKResult:
    """Exact replay of :class:`BestPositionAlgorithm` (defaults: no
    memoize, theta = 1; tracker choice does not affect results)."""
    ctx = _as_context(database, scoring)
    m, n = ctx.m, ctx.n
    _require_valid_k(k, n)
    rows_at, pos_of, score_at = ctx.rows_at, ctx.pos_of, ctx.score_at
    totals, ids = ctx.totals, ctx.ids

    buffer = TopKBuffer(k)
    evaluated = bytearray(n)
    # seen[i] is 1-based with a zero sentinel at n+1 so the best-position
    # advance below can never run off the end.
    seen = [bytearray(n + 2) for _ in range(m)]
    bp = [0] * m
    others = [[j for j in range(m) if j != i] for i in range(m)]
    sorted_count = 0
    position = 0

    while True:
        position += 1
        for i in range(m):
            row = rows_at[i][position - 1]
            sorted_count += 1
            seen_i = seen[i]
            seen_i[position] = 1
            b = bp[i]
            while seen_i[b + 1]:
                b += 1
            bp[i] = b
            # m-1 random accesses whether or not the item is new (the
            # paper's accounting); each reveals/marks a position.
            for j in others[i]:
                seen_j = seen[j]
                seen_j[pos_of[j][row] + 1] = 1
                b = bp[j]
                while seen_j[b + 1]:
                    b += 1
                bp[j] = b
            if not evaluated[row]:
                evaluated[row] = 1
                buffer.add(ids[row], totals[row])
        lam = scoring([score_at[i][bp[i] - 1] for i in range(m)])
        if buffer.all_at_least(lam) or position >= n:
            tally = AccessTally(
                sorted=sorted_count, random=sorted_count * (m - 1)
            )
            return TopKResult(
                items=buffer.ranked(),
                tally=tally,
                rounds=position,
                stop_position=position,
                algorithm="bpa",
                extras={"lambda": lam, "best_positions": tuple(bp)},
            )


def fast_bpa2(
    database: ColumnarDatabase | QueryContext,
    k: int,
    scoring: ScoringFunction = SUM,
) -> TopKResult:
    """Exact replay of :class:`BestPositionAlgorithm2` (defaults: stop
    rule checked per round, theta = 1).

    This is the batch throughput workhorse, so the running top-k heap
    and the per-round stop rule are inlined: the heap performs the exact
    operation sequence of :class:`TopKBuffer` (same ``(score, -item)``
    entries, same eviction and tie-breaks), and the best-position local
    scores feeding ``lambda`` are maintained in place as best positions
    advance, instead of being re-gathered every round.
    """
    ctx = _as_context(database, scoring)
    m, n = ctx.m, ctx.n
    _require_valid_k(k, n)
    rows_at, score_at = ctx.rows_at, ctx.score_at
    pos1_by_row, heap_entries = ctx.pos1_by_row, ctx.heap_entries
    heappush, heapreplace = heapq.heappush, heapq.heapreplace

    heap: list[tuple[Score, int]] = []  # TopKBuffer's exact entries
    heap_size = 0
    root: tuple[Score, int] | None = None  # heap[0] once k items are held
    evaluated = bytearray(n)
    seen = [bytearray(n + 2) for _ in range(m)]
    bp = [0] * m
    bp_scores: list[Score] = [_INF] * m  # score at bp; inf while bp == 0
    # Per-list loop state zipped once; mutable counters stay indexable.
    per_list = tuple(
        (i, rows_at[i], seen[i], score_at[i], [j for j in range(m) if j != i])
        for i in range(m)
    )
    direct_counts = [0] * m
    new_from = [0] * m  # new items surfaced by each list's direct accesses
    marks = [0] * m  # distinct positions seen per list (Theorem 5 evidence)
    rounds = 0
    deepest_direct = 0

    while True:
        rounds += 1
        progressed = False
        for i, rows_i, seen_i, score_i, others_i in per_list:
            p = bp[i]  # 0-based position of the smallest unseen entry
            if p >= n:
                continue  # this list is fully seen
            # Direct access to position bp + 1.
            direct_counts[i] += 1
            progressed = True
            if p + 1 > deepest_direct:
                deepest_direct = p + 1
            row = rows_i[p]
            seen_i[p + 1] = 1
            marks[i] += 1
            b = p + 1
            while seen_i[b + 1]:
                b += 1
            bp[i] = b
            bp_scores[i] = score_i[b - 1]
            if evaluated[row]:
                # Unreachable for a well-formed database (an item at an
                # unseen position is necessarily new — see
                # repro.core.bpa2); kept for exact parity with the
                # reference's defensive guard.
                continue
            evaluated[row] = 1
            new_from[i] += 1
            pos_row = pos1_by_row[row]
            for j in others_i:
                # One random access to list j (counted via new_from at
                # the end: every new item costs exactly m - 1 randoms).
                seen_j = seen[j]
                pj = pos_row[j]
                if not seen_j[pj]:
                    seen_j[pj] = 1
                    marks[j] += 1
                    b = bp[j]
                    if pj == b + 1:
                        b += 1
                        while seen_j[b + 1]:
                            b += 1
                        bp[j] = b
                        bp_scores[j] = score_at[j][b - 1]
            entry = heap_entries[row]
            if heap_size < k:
                heappush(heap, entry)
                heap_size += 1
                if heap_size == k:
                    root = heap[0]
            elif entry > root:
                heapreplace(heap, entry)
                root = heap[0]

        if (root is not None and root[0] >= scoring(bp_scores)) or not progressed:
            total_new = sum(new_from)
            random_counts = [total_new - new_from[j] for j in range(m)]
            tally = AccessTally(
                random=sum(random_counts), direct=sum(direct_counts)
            )
            extras = {
                "lambda": scoring(bp_scores),
                "best_positions": tuple(bp),
                "per_list_accesses": tuple(
                    direct_counts[i] + random_counts[i] for i in range(m)
                ),
                "per_list_distinct_positions": tuple(marks),
            }
            ordered = sorted(heap, key=lambda e: (-e[0], -e[1]))
            return TopKResult(
                items=tuple(
                    ScoredItem(item=-neg, score=score) for score, neg in ordered
                ),
                tally=tally,
                rounds=rounds,
                stop_position=deepest_direct,
                algorithm="bpa2",
                extras=extras,
            )


def fast_nra(
    database: ColumnarDatabase | QueryContext,
    k: int,
    scoring: ScoringFunction = SUM,
) -> TopKResult:
    """Exact replay of :class:`NoRandomAccess` on columnar storage.

    The reference recomputes every seen item's worst/best bounds from
    scratch each round through dict-of-dict lookups.  The replay keeps
    flat per-row score vectors instead and re-aggregates a bound only
    when its inputs can have changed: the worst bound is refreshed when
    the row gains a local score, and rows seen in every list reuse their
    worst bound as their best bound (the two vectors are element-wise
    identical, so the pure scoring function returns the same float).
    Every scoring call that *is* made receives the exact vector the
    reference would build, so bounds, stop round and the ranked answer
    are bit-identical.
    """
    ctx = _as_context(database, scoring)
    m, n = ctx.m, ctx.n
    _require_valid_k(k, n)
    rows_at, score_at, ids = ctx.rows_at, ctx.score_at, ctx.ids

    #: row -> local scores seen so far, 0.0 where unknown (the reference's
    #: ``worst_vector`` layout, kept in place between rounds).
    local: list[list[float] | None] = [None] * n
    have: list[int] = [0] * n  # row -> bitmask of lists already seen
    missing: list[int] = [0] * n  # row -> lists still unknown
    worst: list[float] = [0.0] * n  # row -> scoring(local[row]), kept fresh
    known_rows: list[int] = []
    last: list[Score] = [0.0] * m
    position = 0

    def check(force: bool) -> tuple[bool, tuple[ScoredItem, ...]]:
        # Mirrors NoRandomAccess._check_stop on the flat columns.
        if len(known_rows) < k and not force:
            return False, ()
        bounds: list[tuple[Score, Score, int]] = []  # (worst, best, item)
        for row in known_rows:
            w = worst[row]
            if missing[row]:
                vector = local[row]
                bits = have[row]
                best = scoring(
                    [
                        vector[i] if bits >> i & 1 else last[i]
                        for i in range(m)
                    ]
                )
            else:
                best = w
            bounds.append((w, best, ids[row]))
        bounds.sort(key=lambda entry: (-entry[0], entry[2]))
        top = bounds[:k]
        rest = bounds[k:]
        ranked = tuple(
            ScoredItem(item=item, score=w) for w, _best, item in top
        )
        if force:
            return True, ranked
        kth_worst = top[-1][0]
        best_unseen = scoring(list(last))
        best_rest = max(
            (best for _worst, best, _item in rest), default=float("-inf")
        )
        return kth_worst >= max(best_rest, best_unseen), ranked

    while True:
        position += 1
        p = position - 1
        for i in range(m):
            row = rows_at[i][p]
            score = score_at[i][p]
            last[i] = score
            vector = local[row]
            if vector is None:
                vector = [0.0] * m
                local[row] = vector
                missing[row] = m
                known_rows.append(row)
            vector[i] = score
            have[row] |= 1 << i
            missing[row] -= 1
            worst[row] = scoring(vector)

        stop, ranked = check(False)
        if not stop and position >= n:
            stop, ranked = check(True)
        if stop:
            return TopKResult(
                items=ranked,
                tally=AccessTally(sorted=position * m),
                rounds=position,
                stop_position=position,
                algorithm="nra",
                extras={},
            )


def fast_quick_combine(
    database: ColumnarDatabase | QueryContext,
    k: int,
    scoring: ScoringFunction = SUM,
) -> TopKResult:
    """Exact replay of :class:`QuickCombine` (default lookahead d = 3).

    The reference's adaptive scheduling is a pure function of the scores
    seen so far: the next sorted access goes to the list with the
    largest recent score drop over the lookahead window, ties to the
    lower list index.  Replaying that policy on the precomputed columns
    — same priming rounds, same drop arithmetic on the same floats,
    same per-new-item random-access completion — reproduces the
    reference's access sequence, and therefore its ranked answer,
    tallies and extras, bit for bit.
    """
    ctx = _as_context(database, scoring)
    m, n = ctx.m, ctx.n
    _require_valid_k(k, n)
    rows_at, score_at, totals, ids = ctx.rows_at, ctx.score_at, ctx.totals, ctx.ids
    lookahead = 3  # QuickCombine's default; other values gate the kernel off

    buffer = TopKBuffer(k)
    evaluated = bytearray(n)
    cursor = [0] * m
    history: list[list[float]] = [[] for _ in range(m)]
    sorted_count = 0
    new_items = 0

    def consume(i: int) -> None:
        nonlocal sorted_count, new_items
        p = cursor[i]
        cursor[i] = p + 1
        sorted_count += 1
        history[i].append(score_at[i][p])
        row = rows_at[i][p]
        if not evaluated[row]:
            evaluated[row] = 1
            new_items += 1  # costs m - 1 random accesses (once per item)
            buffer.add(ids[row], totals[row])

    def threshold() -> Score:
        return scoring([h[-1] for h in history])

    def drop(i: int) -> float:
        h = history[i]
        window = min(lookahead, len(h) - 1)
        if window == 0:
            return 0.0
        return (h[-1 - window] - h[-1]) / window

    def package(extras: dict) -> TopKResult:
        depth = max(len(h) for h in history)
        tally = AccessTally(sorted=sorted_count, random=new_items * (m - 1))
        return TopKResult(
            items=buffer.ranked(),
            tally=tally,
            rounds=depth,
            stop_position=depth,
            algorithm="qc",
            extras=extras,
        )

    def depths() -> tuple[int, ...]:
        return tuple(len(h) for h in history)

    # Prime every list so drops are defined and the threshold exists.
    for _ in range(min(lookahead + 1, n)):
        for i in range(m):
            consume(i)
        if buffer.all_at_least(threshold()):
            return package({"depths": depths()})

    # Adaptive phase: one sorted access at a time.
    while True:
        if buffer.all_at_least(threshold()):
            break
        candidates = [i for i in range(m) if cursor[i] < n]
        if not candidates:
            break  # everything seen; Y is exact
        consume(max(candidates, key=lambda i: (drop(i), -i)))

    return package({"depths": depths(), "threshold": threshold()})


#: Kernel registry, keyed by the reference algorithm's registry name.
KERNELS = {
    "ta": fast_ta,
    "bpa": fast_bpa,
    "bpa2": fast_bpa2,
    "nra": fast_nra,
    "qc": fast_quick_combine,
}


def get_kernel(name: str):
    """The vectorized kernel replaying the named reference algorithm."""
    if name not in KERNELS:
        raise KeyError(f"no vectorized kernel for {name!r}; known: {sorted(KERNELS)}")
    return KERNELS[name]
