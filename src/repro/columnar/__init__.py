"""NumPy-backed columnar storage backend.

Stores each sorted list as contiguous ``scores``/``items`` arrays plus
an item→position index, behind the exact same access protocol as the
pure-Python backend — every registered algorithm runs on either,
unchanged, with identical results and identical metered access tallies
(proven by ``tests/differential/``).  On top of the shared protocol:

* :class:`ColumnarList` / :class:`ColumnarDatabase` — the storage, with
  vectorized batched lookups, block prefetch and whole-database
  score/position matrices;
* :mod:`repro.columnar.engine` — kernels (:func:`fast_ta`,
  :func:`fast_bpa`, :func:`fast_bpa2`) that replay the reference
  algorithms' access sequences over precomputed columns, sharing one
  :class:`QueryContext` across a batch of queries.
"""

from repro.columnar.columnar_list import ColumnarList
from repro.columnar.database import ColumnarDatabase, DatabaseLayout
from repro.columnar.patch import patch_database
from repro.columnar.engine import (
    KERNELS,
    QueryContext,
    fast_bpa,
    fast_bpa2,
    fast_nra,
    fast_quick_combine,
    fast_ta,
    get_kernel,
)

__all__ = [
    "ColumnarList",
    "ColumnarDatabase",
    "DatabaseLayout",
    "patch_database",
    "QueryContext",
    "fast_ta",
    "fast_bpa",
    "fast_bpa2",
    "fast_nra",
    "fast_quick_combine",
    "get_kernel",
    "KERNELS",
]
