"""One sorted list stored as contiguous NumPy columns.

:class:`ColumnarList` is the columnar twin of
:class:`repro.lists.sorted_list.SortedList`: the same canonical layout
(score descending, ties broken by ascending item id), the same scalar
access primitives (``entry_at`` / ``lookup`` / ``position_of``), and the
same typed errors — so :class:`repro.lists.accessor.ListAccessor` and
every algorithm built on it run unchanged.  On top of the scalar
protocol it exposes vectorized fast paths over the raw arrays:

* :meth:`lookup_many` — batched random access, one NumPy gather;
* :meth:`block` — block sorted-access prefetch of a position range;
* :attr:`scores_array` / :attr:`items_array` — zero-copy column views.

Scalar accesses read from plain-list mirrors of the columns: algorithms
doing per-entry Python loops pay list-indexing cost (same as the
pure-Python backend) instead of NumPy scalar-boxing cost, keeping the
generic path competitive while the array views feed the vectorized one.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import (
    DuplicateItemError,
    InvalidPositionError,
    UnknownItemError,
)
from repro.types import ItemId, ListEntry, Position, Score


class ColumnarList:
    """An immutable sorted list backed by ``items``/``scores`` arrays.

    Args:
        entries: `(item, score)` pairs in any order; sorted by
            (score desc, item asc), exactly like ``SortedList``.
        name: optional label used in reports (e.g. ``"L1"``).
    """

    __slots__ = (
        "_items",
        "_scores",
        "_uids",
        "_rank_by_row",
        "_dense",
        "_name",
        "_items_list",
        "_scores_list",
    )

    def __init__(
        self,
        entries: Iterable[tuple[ItemId, Score]],
        *,
        name: str = "",
    ) -> None:
        pairs = list(entries)
        items = np.asarray([pair[0] for pair in pairs], dtype=np.int64)
        scores = np.asarray([pair[1] for pair in pairs], dtype=np.float64)
        self._init_from_arrays(items, scores, name)

    def _init_from_arrays(
        self, items: np.ndarray, scores: np.ndarray, name: str
    ) -> None:
        # Canonical layout: lexsort's last key is primary, so this sorts
        # by score descending, then item id ascending — byte-identical to
        # SortedList's ``sorted(..., key=lambda p: (-p[1], p[0]))``.
        order = np.lexsort((items, -scores))
        self._items = np.ascontiguousarray(items[order])
        self._scores = np.ascontiguousarray(scores[order])
        self._name = name
        n = self._items.shape[0]
        self._uids = np.sort(items)
        if n and not (np.diff(self._uids) > 0).all():
            duplicated = self._uids[:-1][np.diff(self._uids) == 0]
            raise DuplicateItemError(
                f"item {int(duplicated[0])} appears more than once "
                f"in list {name or '?'}"
            )
        self._dense = bool(
            n == 0 or (int(self._uids[0]) == 0 and int(self._uids[-1]) == n - 1)
        )
        # rank_by_row[row] = 0-based rank of the item with id uids[row].
        rank_by_row = np.empty(n, dtype=np.int64)
        rows_in_rank_order = (
            self._items if self._dense
            else np.searchsorted(self._uids, self._items)
        )
        rank_by_row[rows_in_rank_order] = np.arange(n, dtype=np.int64)
        self._rank_by_row = rank_by_row
        # Plain-list mirrors for the scalar access primitives.
        self._items_list: list[int] = self._items.tolist()
        self._scores_list: list[float] = self._scores.tolist()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_scores(cls, scores: Sequence[Score], *, name: str = "") -> "ColumnarList":
        """Build a list from a dense score vector indexed by item id."""
        vector = np.asarray(scores, dtype=np.float64)
        instance = cls.__new__(cls)
        instance._init_from_arrays(
            np.arange(vector.shape[0], dtype=np.int64), vector, name
        )
        return instance

    @classmethod
    def from_arrays(
        cls,
        items: np.ndarray,
        scores: np.ndarray,
        *,
        name: str = "",
    ) -> "ColumnarList":
        """Build a list from parallel id/score arrays (any order).

        The arrays are copied into the canonical layout; this is the
        allocation-free twin of the pair-iterable constructor, used by
        the shard builder to slice one database into many.
        """
        instance = cls.__new__(cls)
        instance._init_from_arrays(
            np.asarray(items, dtype=np.int64),
            np.asarray(scores, dtype=np.float64),
            name,
        )
        return instance

    @classmethod
    def _from_canonical(
        cls,
        items: np.ndarray,
        scores: np.ndarray,
        uids: np.ndarray,
        rank_by_row: np.ndarray,
        dense: bool,
        name: str,
    ) -> "ColumnarList":
        """Adopt arrays already in the canonical layout, unverified.

        The snapshot patcher and loader hand over columns they have
        *proven* canonical (rank order is (score desc, item asc), ``uids``
        is the sorted id set, ``rank_by_row`` inverts the rank
        permutation) — re-running ``_init_from_arrays``'s lexsort would
        throw that work away.  Callers certify the invariants; nothing is
        validated here.
        """
        instance = cls.__new__(cls)
        instance._items = np.ascontiguousarray(items, dtype=np.int64)
        instance._scores = np.ascontiguousarray(scores, dtype=np.float64)
        instance._uids = np.ascontiguousarray(uids, dtype=np.int64)
        instance._rank_by_row = np.ascontiguousarray(
            rank_by_row, dtype=np.int64
        )
        instance._dense = bool(dense)
        instance._name = name
        instance._items_list = instance._items.tolist()
        instance._scores_list = instance._scores.tolist()
        return instance

    @classmethod
    def from_sorted_list(cls, sorted_list) -> "ColumnarList":
        """Convert a :class:`repro.lists.sorted_list.SortedList`."""
        instance = cls.__new__(cls)
        instance._init_from_arrays(
            np.asarray(sorted_list.items(), dtype=np.int64),
            np.asarray(sorted_list.scores(), dtype=np.float64),
            sorted_list.name,
        )
        return instance

    # ------------------------------------------------------------------
    # Introspection (SortedList-compatible)
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable list label."""
        return self._name

    def __len__(self) -> int:
        return len(self._items_list)

    def __contains__(self, item: ItemId) -> bool:
        return self._row_of(item) is not None

    def items(self) -> tuple[ItemId, ...]:
        """All item ids in rank order (best first)."""
        return tuple(self._items_list)

    def scores(self) -> tuple[Score, ...]:
        """All local scores in rank order (descending)."""
        return tuple(self._scores_list)

    def entries(self) -> Iterator[ListEntry]:
        """Iterate the whole list as :class:`ListEntry` records."""
        for idx, (item, score) in enumerate(zip(self._items_list, self._scores_list)):
            yield ListEntry(position=idx + 1, item=item, score=score)

    # ------------------------------------------------------------------
    # Scalar access primitives (SortedList-compatible)
    # ------------------------------------------------------------------

    def entry_at(self, position: Position) -> ListEntry:
        """The entry at a 1-based position (direct access primitive)."""
        if not 1 <= position <= len(self._items_list):
            raise InvalidPositionError(
                f"position {position} out of range 1..{len(self._items_list)}"
            )
        idx = position - 1
        return ListEntry(
            position=position,
            item=self._items_list[idx],
            score=self._scores_list[idx],
        )

    def score_at(self, position: Position) -> Score:
        """Local score at a 1-based position."""
        return self.entry_at(position).score

    def item_at(self, position: Position) -> ItemId:
        """Item id at a 1-based position."""
        return self.entry_at(position).item

    def position_of(self, item: ItemId) -> Position:
        """1-based position of ``item`` (random access primitive)."""
        row = self._row_of(item)
        if row is None:
            raise UnknownItemError(f"item {item} not in list {self._name or '?'}")
        return int(self._rank_by_row[row]) + 1

    def lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Local score and position of ``item`` (random access primitive)."""
        position = self.position_of(item)
        return self._scores_list[position - 1], position

    def _row_of(self, item: ItemId) -> int | None:
        n = len(self._items_list)
        if self._dense:
            # NumPy integers must work too (e.g. ids read back from
            # uids_array), exactly as they do on the searchsorted path
            # and on the dict-indexed python backend.
            if isinstance(item, (int, np.integer)) and 0 <= item < n:
                return int(item)
            return None
        row = int(np.searchsorted(self._uids, item))
        if row < n and int(self._uids[row]) == item:
            return row
        return None

    # ------------------------------------------------------------------
    # Vectorized fast paths
    # ------------------------------------------------------------------

    @property
    def scores_array(self) -> np.ndarray:
        """Read-only float64 view of the scores in rank order."""
        view = self._scores.view()
        view.flags.writeable = False
        return view

    @property
    def items_array(self) -> np.ndarray:
        """Read-only int64 view of the item ids in rank order."""
        view = self._items.view()
        view.flags.writeable = False
        return view

    @property
    def uids_array(self) -> np.ndarray:
        """Read-only int64 view of the item ids in ascending id order."""
        view = self._uids.view()
        view.flags.writeable = False
        return view

    @property
    def rank_by_row(self) -> np.ndarray:
        """0-based rank of each item, indexed by its row in ``uids_array``."""
        view = self._rank_by_row.view()
        view.flags.writeable = False
        return view

    @property
    def dense_ids(self) -> bool:
        """Whether the item ids are exactly ``0..n-1``."""
        return self._dense

    def rows_of(self, items: np.ndarray) -> np.ndarray:
        """Dense row index (into ``uids_array``) of each item id."""
        items = np.asarray(items, dtype=np.int64)
        n = len(self._items_list)
        if self._dense:
            if items.size and (int(items.min()) < 0 or int(items.max()) >= n):
                bad = items[(items < 0) | (items >= n)]
                raise UnknownItemError(
                    f"item {int(bad[0])} not in list {self._name or '?'}"
                )
            return items
        rows = np.searchsorted(self._uids, items)
        ok = (rows < n) & (self._uids[np.minimum(rows, n - 1)] == items)
        if not bool(ok.all()):
            bad = items[~ok]
            raise UnknownItemError(
                f"item {int(bad[0])} not in list {self._name or '?'}"
            )
        return rows

    def lookup_many(self, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched random access: (scores, 1-based positions) per item."""
        ranks = self._rank_by_row[self.rows_of(items)]
        return self._scores[ranks], ranks + 1

    def block(
        self, start: Position, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Block sorted-access prefetch of positions ``start..start+count-1``.

        Returns ``(positions, items, scores)`` arrays, clipped at the end
        of the list.  ``start`` is 1-based like every position.
        """
        if start < 1:
            raise InvalidPositionError(f"block start must be >= 1, got {start}")
        if count < 0:
            raise InvalidPositionError(f"block count must be >= 0, got {count}")
        stop = min(start - 1 + count, len(self._items_list))
        # Contiguous read-only views, no index gather: the round-plan
        # engine's sorted waves read straight out of the canonical layout.
        positions = np.arange(start, stop + 1, dtype=np.int64)
        items = self._items[start - 1 : stop]
        items.flags.writeable = False
        scores = self._scores[start - 1 : stop]
        scores.flags.writeable = False
        return positions, items, scores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self._name or "ColumnarList"
        return f"<{label} (columnar): {len(self._items_list)} items>"
