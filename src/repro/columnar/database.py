"""A columnar database: ``m`` :class:`ColumnarList` columns, one item set.

Drop-in twin of :class:`repro.lists.database.Database` — the same
validation, the same introspection API — so
:class:`repro.lists.accessor.DatabaseAccessor` and every registered
algorithm accept either backend interchangeably.  The columnar extras
feed the vectorized engine:

* :meth:`score_matrix` — the ``(m, n)`` local-score matrix, one column
  per item (in ascending item-id order);
* :meth:`position_matrix` — the ``(m, n)`` matrix of 0-based ranks;
* :meth:`overall_scores` — per-item overall scores under a scoring
  function, evaluated column-wise.

Conversions: :meth:`from_database` / :meth:`to_database` move between
the backends; both directions preserve the canonical (score desc, item
asc) layout bit-for-bit, which the differential suite under
``tests/differential/`` asserts.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.columnar.columnar_list import ColumnarList
from repro.errors import InconsistentListsError
from repro.scoring import ScoringFunction
from repro.types import ItemId, Score


#: Guards lazy layout derivation (see :meth:`ColumnarDatabase.layout`).
_LAYOUT_LOCK = threading.Lock()


class DatabaseLayout:
    """Scalar-indexable views of one database's canonical layout.

    The plain-list translation of :meth:`ColumnarDatabase.position_matrix`
    and the score columns (scalar indexing on lists is ~3x faster than
    NumPy element access), derived once per database and shared — the
    kernels' :class:`repro.columnar.QueryContext` and the unified
    drivers' :class:`repro.exec.backend.LocalColumnarBackend` both read
    it, so the layout cannot silently diverge between them.  Treat every
    field as read-only: the lists are aliased across all consumers.
    """

    __slots__ = ("ids", "rows_at", "pos_of", "pos1_by_row", "score_at", "row_of")

    def __init__(self, database: "ColumnarDatabase") -> None:
        position_matrix = database.position_matrix()
        #: row -> item id (ascending id order; "row" is the dense index).
        self.ids: list[int] = database.uids_array.tolist()
        #: per list: 0-based position -> row of the item ranked there.
        self.rows_at: list[list[int]] = []
        #: per list: row -> 0-based position of that item.
        self.pos_of: list[list[int]] = []
        #: per list: 0-based position -> local score (descending).
        self.score_at: list[list[float]] = []
        for i, columnar_list in enumerate(database.lists):
            ranks = position_matrix[i]
            self.rows_at.append(ranks.argsort().tolist())
            self.pos_of.append(ranks.tolist())
            self.score_at.append(columnar_list.scores_array.tolist())
        #: row -> its 1-based position in every list (list order).
        self.pos1_by_row: list[list[int]] = (position_matrix.T + 1).tolist()
        #: item id -> row.
        self.row_of: dict[int, int] = {
            item: row for row, item in enumerate(self.ids)
        }

    @classmethod
    def patched(
        cls,
        previous: "DatabaseLayout",
        database: "ColumnarDatabase",
        touched: Sequence[int],
    ) -> "DatabaseLayout":
        """Carry a predecessor's layout forward across a snapshot patch.

        Valid only when the patch changed no membership (``database`` has
        exactly ``previous``'s item rows): the id-indexed structures
        (``ids``, ``row_of``) are shared outright, untouched lists keep
        their per-list structures by reference, and only the lists in
        ``touched`` re-derive theirs.  ``pos1_by_row`` is cross-list and
        rebuilt from the (cheap, array-reusing) position matrix.
        """
        layout = cls.__new__(cls)
        layout.ids = previous.ids
        layout.row_of = previous.row_of
        layout.rows_at = list(previous.rows_at)
        layout.pos_of = list(previous.pos_of)
        layout.score_at = list(previous.score_at)
        position_matrix = database.position_matrix()
        for i in touched:
            ranks = position_matrix[i]
            layout.rows_at[i] = ranks.argsort().tolist()
            layout.pos_of[i] = ranks.tolist()
            layout.score_at[i] = database.lists[i].scores_array.tolist()
        layout.pos1_by_row = (position_matrix.T + 1).tolist()
        return layout


class ColumnarDatabase:
    """An immutable collection of ``m`` columnar lists over ``n`` items.

    Args:
        lists: the columnar lists; all must contain exactly the same items.
        labels: optional mapping from item id to a display label.
    """

    __slots__ = (
        "_lists",
        "_labels",
        "_item_ids",
        "_score_matrix",
        "_position_matrix",
        "_layout",
    )

    def __init__(
        self,
        lists: Sequence[ColumnarList],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> None:
        if not lists:
            raise InconsistentListsError("a database needs at least one list")
        reference = lists[0].uids_array
        for columnar_list in lists[1:]:
            if not np.array_equal(columnar_list.uids_array, reference):
                raise InconsistentListsError(
                    "all lists of a database must contain the same items "
                    f"(list {columnar_list.name or '?'} differs)"
                )
        self._lists: tuple[ColumnarList, ...] = tuple(lists)
        self._labels = dict(labels) if labels else {}
        self._item_ids: frozenset[ItemId] = frozenset(reference.tolist())
        self._score_matrix: np.ndarray | None = None
        self._position_matrix: np.ndarray | None = None
        self._layout: DatabaseLayout | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_score_rows(
        cls,
        score_rows: Sequence[Sequence[Score]],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> "ColumnarDatabase":
        """Build a database from ``m`` dense score vectors.

        ``score_rows[i][d]`` is the local score of item ``d`` in list ``i``
        — the same entry point as ``Database.from_score_rows``.
        """
        lists = [
            ColumnarList.from_scores(row, name=f"L{i + 1}")
            for i, row in enumerate(score_rows)
        ]
        return cls(lists, labels=labels)

    @classmethod
    def from_ranked_lists(
        cls,
        ranked: Sequence[Sequence[tuple[ItemId, Score]]],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> "ColumnarDatabase":
        """Build a database from explicit per-list rankings."""
        lists = [
            ColumnarList(entries, name=f"L{i + 1}")
            for i, entries in enumerate(ranked)
        ]
        return cls(lists, labels=labels)

    @classmethod
    def from_database(cls, database) -> "ColumnarDatabase":
        """Convert a row-oriented :class:`repro.lists.database.Database`."""
        lists = [
            ColumnarList.from_sorted_list(sorted_list)
            for sorted_list in database.lists
        ]
        labels = {item: database.label(item) for item in database.item_ids}
        defaults = {item: f"item {item}" for item in database.item_ids}
        return cls(lists, labels=None if labels == defaults else labels)

    def to_database(self):
        """Convert back to the pure-Python backend."""
        from repro.lists.database import Database
        from repro.lists.sorted_list import SortedList

        lists = [
            SortedList(
                zip(columnar_list.items(), columnar_list.scores()),
                name=columnar_list.name,
            )
            for columnar_list in self._lists
        ]
        return Database(lists, labels=self._labels or None)

    # ------------------------------------------------------------------
    # Introspection (Database-compatible)
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of lists."""
        return len(self._lists)

    @property
    def n(self) -> int:
        """Number of items per list."""
        return len(self._lists[0])

    @property
    def lists(self) -> tuple[ColumnarList, ...]:
        """The underlying columnar lists."""
        return self._lists

    @property
    def item_ids(self) -> frozenset[ItemId]:
        """The shared item id set."""
        return self._item_ids

    def label(self, item: ItemId) -> str:
        """Display label of ``item`` (falls back to ``"item <id>"``)."""
        return self._labels.get(item, f"item {item}")

    def __len__(self) -> int:
        return len(self._lists)

    def __iter__(self) -> Iterator[ColumnarList]:
        return iter(self._lists)

    def __getitem__(self, index: int) -> ColumnarList:
        return self._lists[index]

    def local_scores(self, item: ItemId) -> tuple[Score, ...]:
        """The item's local score in every list, in list order."""
        return tuple(
            columnar_list.lookup(item)[0] for columnar_list in self._lists
        )

    def positions(self, item: ItemId) -> tuple[int, ...]:
        """The item's 1-based position in every list, in list order."""
        return tuple(
            columnar_list.lookup(item)[1] for columnar_list in self._lists
        )

    def iter_items(self) -> Iterable[ItemId]:
        """All item ids in ascending order."""
        return sorted(self._item_ids)

    # ------------------------------------------------------------------
    # Columnar extras: whole-database matrices for the vectorized engine
    # ------------------------------------------------------------------

    @property
    def uids_array(self) -> np.ndarray:
        """Item ids in ascending order; the matrices' column order."""
        return self._lists[0].uids_array

    def score_matrix(self) -> np.ndarray:
        """``(m, n)`` float64 matrix: ``[i, row]`` = local score in list
        ``i`` of the item with id ``uids_array[row]``.  Cached.
        """
        if self._score_matrix is None:
            matrix = np.empty((self.m, self.n), dtype=np.float64)
            for i, columnar_list in enumerate(self._lists):
                matrix[i] = columnar_list.scores_array[columnar_list.rank_by_row]
            matrix.flags.writeable = False
            self._score_matrix = matrix
        return self._score_matrix

    def position_matrix(self) -> np.ndarray:
        """``(m, n)`` int64 matrix of 0-based ranks per item row.  Cached."""
        if self._position_matrix is None:
            matrix = np.empty((self.m, self.n), dtype=np.int64)
            for i, columnar_list in enumerate(self._lists):
                matrix[i] = columnar_list.rank_by_row
            matrix.flags.writeable = False
            self._position_matrix = matrix
        return self._position_matrix

    def layout(self) -> DatabaseLayout:
        """The scalar-indexable :class:`DatabaseLayout`.  Cached.

        Thread-safe: concurrent first queries (``submit_async`` worker
        threads) derive the layout once and share one object.  The lock
        is module-level, not an attribute, so databases stay picklable
        for the process-pool shard workers.
        """
        if self._layout is None:
            with _LAYOUT_LOCK:
                if self._layout is None:
                    self._layout = DatabaseLayout(self)
        return self._layout

    def overall_scores(self, scoring: ScoringFunction) -> list[Score]:
        """Overall score of every item (by ``uids_array`` row order).

        Evaluated by applying ``scoring`` to each column of
        :meth:`score_matrix` — the exact same callable, argument order
        and float values the reference algorithms use, so the results
        are bit-identical to per-item aggregation.
        """
        return [scoring(column) for column in self.score_matrix().T.tolist()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ColumnarDatabase m={self.m} n={self.n}>"
