"""Delta-patching a columnar snapshot from a mutation window.

:func:`patch_database` turns an immutable :class:`ColumnarDatabase`
snapshot plus the :class:`repro.dynamic.MutationEvent` window that
separates it from the source's current state into the *successor*
snapshot — without re-reading the source and without re-sorting columns
from scratch.  The events carry bit-exact per-list score vectors (the
``MutationLog`` contract established for delta-aware cache reuse), so
the patched snapshot is byte-identical to a cold rebuild; the
differential suite under ``tests/unit/test_patch.py`` proves it across
every datagen family.

The snapshot stays immutable: patching builds a *new*
:class:`ColumnarDatabase` and new :class:`ColumnarList` objects only for
the touched columns, sharing the untouched lists (and, when membership
is unchanged, the predecessor's derived
:class:`~repro.columnar.database.DatabaseLayout`) by reference.  That
structural sharing is what makes snapshots epoch-versioned views:
in-flight queries keep reading the object they captured while the
service publishes the patched successor.

The work per patch is:

* fold the window to its *net* outcome per item (an insert+remove
  cancels; an update back to the original value is a no-op), bounded by
  the caller's patch budget;
* per touched list, mask-delete the vacated ranks and merge the
  re-scored entries into the canonical (score desc, item asc) order via
  ``searchsorted`` — only the touched span of ``rank_by_row`` is
  recomputed when membership is unchanged;
* give back ``None`` whenever the window cannot prove the net delta
  (score vectors missing) or exceeds the budget — the caller falls back
  to a cold rebuild, trading time for certainty, never correctness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.columnar.columnar_list import ColumnarList
from repro.columnar.database import ColumnarDatabase, DatabaseLayout
from repro.dynamic.database import MutationEvent


def _fold_events(
    database: ColumnarDatabase, events: Iterable[MutationEvent]
) -> tuple[dict, dict] | None:
    """Net outcome per item: final score vector (or ``None`` = absent).

    Returns ``(final, existed)`` where ``existed[item]`` says whether the
    item was in the base snapshot, or ``None`` when any event lacks the
    score vectors needed to patch (a subscriber captured without scores
    cannot prove the post-state).
    """
    known = database.item_ids
    final: dict[int, tuple[float, ...] | None] = {}
    existed: dict[int, bool] = {}
    for event in events:
        item = event.item
        if item not in existed:
            existed[item] = item in known
        if event.kind == "remove_item":
            final[item] = None
        else:
            if event.new_scores is None or len(event.new_scores) != database.m:
                return None
            final[item] = event.new_scores
    return final, existed


def _merged_positions(
    kept_items: np.ndarray,
    kept_scores: np.ndarray,
    ins_items: np.ndarray,
    ins_scores: np.ndarray,
) -> np.ndarray:
    """Pre-insert indices placing each entry at its canonical rank.

    ``kept_*`` are canonical (score desc, item asc); ``ins_*`` must be
    lexsorted the same way.  The composite (-score, item) key is searched
    in two steps: the equal-score run by score, then the tie position by
    item — equal resulting indices are resolved by ``np.insert`` in
    argument order, which the caller's lexsort already made canonical.
    """
    negated = -kept_scores
    run_start = np.searchsorted(negated, -ins_scores, side="left")
    run_stop = np.searchsorted(negated, -ins_scores, side="right")
    positions = np.empty(len(ins_items), dtype=np.int64)
    for j in range(len(ins_items)):
        lo, hi = int(run_start[j]), int(run_stop[j])
        positions[j] = lo + int(
            np.searchsorted(kept_items[lo:hi], ins_items[j], side="left")
        )
    return positions


def patch_database(
    database: ColumnarDatabase,
    events: Iterable[MutationEvent],
    *,
    budget: int,
) -> ColumnarDatabase | None:
    """The successor snapshot after ``events``, or ``None`` to rebuild.

    Args:
        database: the base snapshot the events were applied on top of.
        events: the mutation window, oldest first (e.g. from
            :meth:`repro.dynamic.MutationLog.events_between`).
        budget: the largest number of net-touched items worth patching;
            wider deltas return ``None`` so the caller cold-rebuilds.

    Returns the base ``database`` itself when the window nets out to
    nothing (the snapshot is already current), a new structurally
    sharing :class:`ColumnarDatabase` otherwise, and ``None`` when the
    window is unpatchable (missing score vectors, inconsistent arity) or
    exceeds ``budget``.
    """
    folded = _fold_events(database, events)
    if folded is None:
        return None
    final, existed = folded
    m = database.m

    removals: list[int] = []
    inserts: list[tuple[int, tuple[float, ...]]] = []
    updates: list[list[tuple[int, float]]] = [[] for _ in range(m)]
    touched_items = 0
    for item, state in final.items():
        if state is None:
            if existed[item]:
                removals.append(item)
                touched_items += 1
        elif existed[item]:
            current = database.local_scores(item)
            changed = [
                i for i in range(m) if current[i] != float(state[i])
            ]
            if changed:
                touched_items += 1
                for i in changed:
                    updates[i].append((item, float(state[i])))
        else:
            inserts.append((item, tuple(float(s) for s in state)))
            touched_items += 1

    if not touched_items:
        return database
    if touched_items > budget:
        return None

    membership_changed = bool(removals or inserts)
    if membership_changed:
        old_uids = database.uids_array
        if removals:
            rows = database.lists[0].rows_of(
                np.asarray(sorted(removals), dtype=np.int64)
            )
            keep = np.ones(database.n, dtype=bool)
            keep[rows] = False
            kept_uids = old_uids[keep]
        else:
            kept_uids = np.asarray(old_uids)
        if inserts:
            added = np.asarray(
                sorted(item for item, _ in inserts), dtype=np.int64
            )
            slots = np.searchsorted(kept_uids, added)
            new_uids = np.insert(kept_uids, slots, added)
        else:
            new_uids = np.ascontiguousarray(kept_uids)
        n_new = int(new_uids.shape[0])
        dense = bool(
            n_new == 0
            or (int(new_uids[0]) == 0 and int(new_uids[-1]) == n_new - 1)
        )

    new_lists: list[ColumnarList] = []
    touched_lists: list[int] = []
    for i, old_list in enumerate(database.lists):
        to_delete = removals + [item for item, _ in updates[i]]
        to_insert = [(item, scores[i]) for item, scores in inserts]
        to_insert += updates[i]
        if not to_delete and not to_insert:
            new_lists.append(old_list)  # epoch-versioned structural share
            continue
        touched_lists.append(i)

        items = old_list.items_array
        scores = old_list.scores_array
        if to_delete:
            vacated = np.asarray(
                old_list.rank_by_row[
                    old_list.rows_of(np.asarray(to_delete, dtype=np.int64))
                ]
            )
            keep = np.ones(items.shape[0], dtype=bool)
            keep[vacated] = False
            kept_items = items[keep]
            kept_scores = scores[keep]
        else:
            vacated = np.empty(0, dtype=np.int64)
            kept_items = np.asarray(items)
            kept_scores = np.asarray(scores)

        if to_insert:
            ins_items = np.asarray([p[0] for p in to_insert], dtype=np.int64)
            ins_scores = np.asarray(
                [p[1] for p in to_insert], dtype=np.float64
            )
            order = np.lexsort((ins_items, -ins_scores))
            ins_items = ins_items[order]
            ins_scores = ins_scores[order]
            slots = _merged_positions(
                kept_items, kept_scores, ins_items, ins_scores
            )
            new_items = np.insert(kept_items, slots, ins_items)
            new_scores = np.insert(kept_scores, slots, ins_scores)
        else:
            slots = np.empty(0, dtype=np.int64)
            new_items = np.ascontiguousarray(kept_items)
            new_scores = np.ascontiguousarray(kept_scores)

        if membership_changed:
            rank_by_row = np.empty(n_new, dtype=np.int64)
            rows_in_rank_order = (
                new_items if dense else np.searchsorted(new_uids, new_items)
            )
            rank_by_row[rows_in_rank_order] = np.arange(n_new, dtype=np.int64)
            new_lists.append(
                ColumnarList._from_canonical(
                    new_items,
                    new_scores,
                    new_uids,
                    rank_by_row,
                    dense,
                    old_list.name,
                )
            )
        else:
            # Same membership, same per-list delete/insert count: ranks
            # outside [span_lo, span_hi] are provably unchanged, so only
            # the touched span of the rank permutation is recomputed —
            # the "incremental re-sort of the touched prefix".
            landed = slots + np.arange(slots.shape[0], dtype=np.int64)
            span_lo = min(int(vacated.min()), int(landed.min()))
            span_hi = max(int(vacated.max()), int(landed.max()))
            rank_by_row = np.array(old_list.rank_by_row)
            span_rows = old_list.rows_of(new_items[span_lo : span_hi + 1])
            rank_by_row[span_rows] = np.arange(
                span_lo, span_hi + 1, dtype=np.int64
            )
            new_lists.append(
                ColumnarList._from_canonical(
                    new_items,
                    new_scores,
                    np.asarray(old_list.uids_array),
                    rank_by_row,
                    old_list.dense_ids,
                    old_list.name,
                )
            )

    labels = dict(database._labels)
    for item in removals:
        labels.pop(item, None)
    patched = ColumnarDatabase(new_lists, labels=labels or None)
    if not membership_changed and database._layout is not None:
        # Layout memoization tracks the patched snapshot: consumers that
        # derived the predecessor's layout (kernels' QueryContext, the
        # unified drivers' LocalColumnarBackend) get the successor's
        # without a from-scratch derivation on first query.
        patched._layout = DatabaseLayout.patched(
            database._layout, patched, touched_lists
        )
    return patched
