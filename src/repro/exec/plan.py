"""Declarative round plans and the engine that executes them.

The paper's TA/BPA/BPA2 cost model is *round*-structured: each round is
a bundle of sorted (or direct) accesses across the ``m`` lists followed
by the random probes those accesses triggered.  This module makes the
round a first-class object:

* an :class:`Op` describes one list's work in a round —
  :class:`SortedFetch` (a sorted block of ``count`` entries),
  :class:`ProbeBatch` (batched random lookups) or :class:`DirectBlock`
  (BPA2's bundled lookups plus up to ``count`` direct accesses at the
  source-managed best position);
* a :class:`RoundPlan` is a set of ops with **no data dependencies
  between them** (at most one op per list), so any transport may execute
  them concurrently;
* :func:`drive` runs a *planner* — a generator yielding plans and
  receiving their results — against any
  :class:`repro.exec.backend.ExecutionBackend`.

Planners own the algorithm logic (stopping rules, bookkeeping); backends
own the access semantics and accounting.  The same planner therefore
runs vectorized over flat columnar arrays, as coalesced messages over
the simulated network, or as length-prefixed frames over real TCP
sockets — and the differential suites prove all of them bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence, Union

from repro.types import ItemId, Position, Score

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.backend import ExecutionBackend
    from repro.exec.drivers import DriverOutcome


# ----------------------------------------------------------------------
# Ops: one list's work inside a round
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SortedFetch:
    """Fetch the next ``count`` entries of one list under sorted access."""

    list_index: int
    count: int


@dataclass(frozen=True, slots=True)
class ProbeBatch:
    """Random-access ``items`` in one list, in order."""

    list_index: int
    items: tuple[ItemId, ...]


@dataclass(frozen=True, slots=True)
class DirectBlock:
    """BPA2's per-list step: pending lookups, then direct accesses.

    Performs the random lookups for ``items`` first (accesses that the
    round's sequential order places before this list's direct step),
    then up to ``count`` direct accesses, each at the source-managed
    best position + 1.
    """

    list_index: int
    items: tuple[ItemId, ...]
    count: int = 1


Op = Union[SortedFetch, ProbeBatch, DirectBlock]


# ----------------------------------------------------------------------
# Results: what the backend hands back per op
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SortedResult:
    """``(item, score, position)`` per fetched entry (may be clipped)."""

    entries: tuple[tuple[ItemId, Score, Position], ...]


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """``(score, position)`` per probed item, in request order.

    Positions are meaningful only on backends built with
    ``include_position=True`` (they are what BPA ships home).
    """

    pairs: tuple[tuple[Score, Position], ...]


@dataclass(frozen=True, slots=True)
class DirectResult:
    """Bundled lookup scores, then the served direct-access entries.

    ``exhausted`` reports whether the list's best position reached the
    end while (or before) serving — ``entries`` may be shorter than the
    requested count, or empty.
    """

    lookups: tuple[Score, ...]
    entries: tuple[tuple[ItemId, Score], ...]
    exhausted: bool


OpResult = Union[SortedResult, ProbeResult, DirectResult]


# ----------------------------------------------------------------------
# The plan itself
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RoundPlan:
    """One dependency-free bundle of ops.

    Invariant (validated): at most one op per list, so a transport may
    execute the ops concurrently without reordering any single source's
    operation stream.  ``new_round`` announces a fresh coordinator round
    to the backend's accounting (an algorithm round may span several
    plans when later ops depend on earlier results, e.g. TA's probes
    follow its sorted wave).
    """

    ops: tuple[Op, ...]
    new_round: bool = True

    def __post_init__(self) -> None:
        lists = [op.list_index for op in self.ops]
        if len(set(lists)) != len(lists):
            raise ValueError(
                f"a RoundPlan may hold at most one op per list, got {lists}"
            )


Planner = Generator[RoundPlan, "list[OpResult]", "DriverOutcome"]


def drive(planner: Planner, backend: "ExecutionBackend") -> "DriverOutcome":
    """Execute a planner's round plans against a backend.

    The planner yields :class:`RoundPlan`s and receives the aligned
    :class:`OpResult` list for each; its ``return`` value is the
    driver outcome.  All transport knowledge lives in
    :meth:`ExecutionBackend.execute_plan` — entry/batch protocols run
    the ops sequentially, the pipelined protocol dispatches a plan's
    messages concurrently.
    """
    results: list[OpResult] | None = None
    while True:
        try:
            plan = planner.send(results) if results is not None else next(planner)
        except StopIteration as stop:
            return stop.value
        results = backend.execute_plan(plan)
        if results is None:  # a backend must always answer a plan
            results = []


# ----------------------------------------------------------------------
# Shared block-round bookkeeping
# ----------------------------------------------------------------------


@dataclass(slots=True)
class BlockRound:
    """Deduplicated bookkeeping for one block round.

    Collects the entries every list surfaced this round (sorted blocks
    or direct blocks), then derives, *in deterministic first-surfaced
    order*, which not-yet-seen items need probes in which lists.  Both
    the reference block algorithms and the engine planners build their
    probe batches through this class, so their owner-side operation
    sequences cannot drift apart.
    """

    m: int
    #: item -> {list_index: local score} for this round's surfaced entries.
    surfaced: dict[ItemId, dict[int, Score]] = field(default_factory=dict)
    #: items in first-surfaced order (dict preserves insertion order).

    def add(self, list_index: int, item: ItemId, score: Score) -> None:
        """Record one surfaced entry."""
        self.surfaced.setdefault(item, {})[list_index] = score

    def new_items(self, seen: set[ItemId]) -> list[ItemId]:
        """Surfaced items not seen in earlier rounds, first-surfaced order."""
        return [item for item in self.surfaced if item not in seen]

    def probe_needs(self, new_items: Sequence[ItemId]) -> list[list[ItemId]]:
        """Per list: the new items whose local score is still unknown."""
        return [
            [item for item in new_items if j not in self.surfaced[item]]
            for j in range(self.m)
        ]

    def local_scores(
        self,
        item: ItemId,
        probes: dict[int, dict[ItemId, Score]],
    ) -> list[Score]:
        """Assemble one item's full local-score vector.

        ``probes[j]`` maps probed items to their scores in list ``j``;
        scores for lists that surfaced the item come from the round's
        own entries.
        """
        known = self.surfaced[item]
        return [
            known[j] if j in known else probes[j][item] for j in range(self.m)
        ]


def group_ops_by_owner(
    ops: Sequence[Op], owner_of: Sequence[int]
) -> dict[int, list[Op]]:
    """Group one round plan's ops by the owner hosting each list.

    ``owner_of[i]`` names the owner process hosting list ``i`` (see
    :class:`repro.distributed.placement.ClusterPlacement`).  Returns
    ``{owner: ops}`` with owners in ascending order and each owner's
    ops in plan order — a round plan never carries two ops for the
    same list, so a transport may ship each group as **one frame** and
    the owner may execute its ops in any order without reordering any
    per-list access stream.
    """
    groups: dict[int, list[Op]] = {}
    for op in ops:
        groups.setdefault(owner_of[op.list_index], []).append(op)
    return {owner: groups[owner] for owner in sorted(groups)}
