"""Kernel-or-reference execution of one query on one database.

:func:`execute_query` is the single-database step every higher layer
shares: the shard executor runs it per shard (locally or inside a
pinned worker process), and the service's async front-end runs it on
worker threads.  It dispatches to the exact vectorized columnar kernel
when the algorithm configuration has one, falling back to the reference
implementation through the metered accessors — either way the results
are identical (``tests/differential/`` proves it).
"""

from __future__ import annotations

from typing import Mapping

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase, QueryContext, get_kernel
from repro.exec.keys import scoring_key
from repro.scoring import ScoringFunction
from repro.types import TopKResult


def execute_query(
    database: ColumnarDatabase,
    contexts: dict,
    algorithm: str,
    options: Mapping[str, object],
    k: int,
    scoring: ScoringFunction,
) -> TopKResult:
    """Run one query on one database, through the kernel when one exists.

    ``contexts`` caches one :class:`QueryContext` per scoring *semantics*
    (see :func:`repro.exec.keys.scoring_key`); the stored scoring object
    is reused so the context's identity check holds even when the
    caller's instance crossed a process boundary.
    """
    instance = get_algorithm(algorithm, **dict(options))
    kernel_name = instance.fast_kernel()
    if kernel_name is None:
        return instance.run(database, k, scoring)
    key = scoring_key(scoring)
    cached = contexts.get(key)
    if cached is None:
        # Concurrent submits can race to first-touch a scoring's context
        # (``contexts`` is shared across worker threads); setdefault
        # lets exactly one constructed pair win for everyone.
        cached = contexts.setdefault(
            key, (scoring, QueryContext(database, scoring))
        )
    stored_scoring, context = cached
    return get_kernel(kernel_name)(context, k, stored_scoring)
