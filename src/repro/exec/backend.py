"""The execution-backend protocol and its local columnar implementation.

A backend owns the *sources* of one query — the ``m`` sorted lists —
and serves the three access primitives of the TA/BPA family plus BPA2's
best-position bookkeeping.  The drivers in :mod:`repro.exec.drivers`
are written purely against this protocol, so the same driver code runs

* single-node over flat columnar arrays (:class:`LocalColumnarBackend`),
* over the simulated network
  (:class:`repro.distributed.transport.NetworkBackend`), where each
  primitive becomes one or more request/response messages.

The protocol is round-structured to match the paper's algorithms: a
driver announces each parallel round (:meth:`ExecutionBackend.begin_round`)
and batches random accesses per source
(:meth:`ExecutionBackend.random_lookup_many`), which lets a networked
backend coalesce messages while a per-entry transport simply loops.
Access *accounting* is the backend's job — one tally increment per
semantic access, exactly as the metered accessors count — so driver
results carry the same tallies as the reference algorithms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.columnar import ColumnarDatabase
from repro.exec.plan import (
    DirectBlock,
    DirectResult,
    Op,
    OpResult,
    ProbeBatch,
    ProbeResult,
    RoundPlan,
    SortedFetch,
    SortedResult,
)
from repro.types import AccessTally, ItemId, Position, Score

_INF = float("inf")

#: ``direct_step`` result: lookup scores for the bundled items, then the
#: direct-access entry — ``None`` when the source is exhausted.
DirectStep = tuple[list[Score], "tuple[ItemId, Score] | None"]


class ExecutionBackend(ABC):
    """Query-time access to ``m`` sorted sources with best positions."""

    #: Number of lists and items (set by implementations).
    m: int
    n: int
    #: Whether random lookups report positions.  BPA needs them at the
    #: originator — :func:`repro.exec.drivers.run_bpa` rejects a backend
    #: without them, since lookups would otherwise report position 0 and
    #: silently corrupt the best-position state.  BPA2 pointedly does
    #: not ship them — its communication saving.
    include_position: bool

    def begin_round(self) -> None:
        """Announce one parallel access round (accounting hook)."""

    @abstractmethod
    def sorted_next(self, list_index: int) -> tuple[ItemId, Score, Position]:
        """Sorted access: the next entry of one list."""

    @abstractmethod
    def random_lookup_many(
        self, list_index: int, items: Sequence[ItemId]
    ) -> list[tuple[Score, Position]]:
        """Random-access ``items`` in one list, in order.

        Counts one random access per item; positions are meaningful only
        when :attr:`include_position` is set (they are what BPA ships).
        """

    @abstractmethod
    def direct_step(
        self, list_index: int, items: Sequence[ItemId]
    ) -> DirectStep:
        """BPA2's per-list round step.

        Performs the pending random lookups for ``items`` (accesses that
        precede this list's direct access in the round's sequential
        order), then one direct access at ``best_position + 1``.  The
        best position is managed source-side, as the paper prescribes
        for BPA2.
        """

    def sorted_block(
        self, list_index: int, count: int
    ) -> list[tuple[ItemId, Score, Position]]:
        """Block sorted access: the next ``count`` entries of one list.

        Counts one sorted access per entry actually read — block fetches
        are an engineering fast path, not an accounting discount.  The
        caller clips ``count`` at the list end; the default simply loops
        :meth:`sorted_next`.
        """
        return [self.sorted_next(list_index) for _ in range(count)]

    def direct_block(
        self, list_index: int, items: Sequence[ItemId], count: int
    ) -> DirectResult:
        """Block direct access: pending lookups, then up to ``count``
        direct accesses, each at the source-managed best position + 1.

        Marks from each served entry may advance the best position over
        already-seen holes before the next one, exactly as ``count``
        consecutive :meth:`direct_step` calls would.  Returns the
        bundled lookup scores, the served entries (possibly fewer than
        ``count``) and whether the list exhausted.
        """
        lookups: list[Score] = []
        if items:
            lookups = [
                score for score, _pos in self.random_lookup_many(list_index, items)
            ]
        entries: list[tuple[ItemId, Score]] = []
        exhausted = False
        for _ in range(count):
            _no_lookups, entry = self.direct_step(list_index, ())
            if entry is None:
                exhausted = True
                break
            entries.append(entry)
        return DirectResult(tuple(lookups), tuple(entries), exhausted)

    # ------------------------------------------------------------------
    # Round-plan execution
    # ------------------------------------------------------------------

    def execute_plan(self, plan: RoundPlan) -> list[OpResult]:
        """Execute one round plan, op by op.

        The base implementation runs ops sequentially through the
        primitives above; transports override this to coalesce or
        pipeline a plan's messages (the ops of one plan are
        dependency-free by construction).
        """
        if plan.new_round:
            self.begin_round()
        return [self.execute_op(op) for op in plan.ops]

    def execute_op(self, op: Op) -> OpResult:
        """Execute one op through the backend primitives."""
        if isinstance(op, SortedFetch):
            if op.count == 1:
                return SortedResult((self.sorted_next(op.list_index),))
            return SortedResult(tuple(self.sorted_block(op.list_index, op.count)))
        if isinstance(op, ProbeBatch):
            return ProbeResult(
                tuple(self.random_lookup_many(op.list_index, op.items))
            )
        if isinstance(op, DirectBlock):
            if op.count == 1:
                lookups, entry = self.direct_step(op.list_index, op.items)
                return DirectResult(
                    tuple(lookups),
                    () if entry is None else (entry,),
                    entry is None,
                )
            return self.direct_block(op.list_index, op.items, op.count)
        raise TypeError(f"unknown op type: {type(op).__name__}")

    @abstractmethod
    def best_position_scores(self) -> list[Score]:
        """Local score at each list's best position (``inf`` while 0).

        These are the originator's inputs to BPA2's ``lambda``; a
        networked backend learns them from piggybacked updates.
        """

    @abstractmethod
    def best_positions(self) -> list[Position]:
        """Each list's current best position (0 before any access)."""

    @abstractmethod
    def total_tally(self) -> AccessTally:
        """Accesses performed so far, summed over the lists."""


class LocalColumnarBackend(ExecutionBackend):
    """Single-node backend over flat columnar arrays.

    The same precomputed layout the vectorized kernels use (rows by
    position, positions by row, plain-list score columns) serves the
    driver primitives directly — no accessor objects, no per-entry
    dataclasses — so the unified drivers run at kernel-path speed while
    producing reference-identical results and tallies
    (``tests/differential/test_distributed_unified.py``).

    Layout memoization tracks the snapshot, not the service: each
    ``ColumnarDatabase`` — including the epoch-versioned successors
    produced by :func:`repro.columnar.patch_database` — owns its own
    cached :class:`~repro.columnar.database.DatabaseLayout`, so a
    backend constructed over a freshly patched snapshot never reads a
    predecessor epoch's coordinates.  When a patch leaves membership
    unchanged, the successor arrives with its layout already derived
    (only the touched lists' sections re-computed); otherwise
    ``database.layout()`` derives it lazily here, exactly as for a
    cold-built snapshot.
    """

    def __init__(self, database, *, include_position: bool = False) -> None:
        if not isinstance(database, ColumnarDatabase):
            database = ColumnarDatabase.from_database(database)
        self.database = database
        self.m = database.m
        self.n = database.n
        self.include_position = include_position
        n = self.n
        # The same cached scalar layout the kernels' QueryContext reads
        # (one derivation per database; every field is read-only).
        layout = database.layout()
        self._rows_at = layout.rows_at
        self._pos_of = layout.pos_of
        self._score_at = layout.score_at
        self._ids = layout.ids
        self._row_of = layout.row_of
        # Per-list query state: sorted cursor, seen positions (1-based
        # with a sentinel so the best-position advance cannot overrun),
        # best position, and the per-mode access counts.
        self._cursor = [0] * self.m
        self._seen = [bytearray(n + 2) for _ in range(self.m)]
        self._bp = [0] * self.m
        self._sorted = [0] * self.m
        self._random = [0] * self.m
        self._direct = [0] * self.m

    def _mark(self, i: int, position: Position) -> None:
        seen = self._seen[i]
        if seen[position]:
            return
        seen[position] = 1
        b = self._bp[i]
        if position == b + 1:
            b += 1
            while seen[b + 1]:
                b += 1
            self._bp[i] = b

    def sorted_next(self, i: int) -> tuple[ItemId, Score, Position]:
        position = self._cursor[i] + 1
        self._cursor[i] = position
        self._sorted[i] += 1
        self._mark(i, position)
        row = self._rows_at[i][position - 1]
        return self._ids[row], self._score_at[i][position - 1], position

    def random_lookup_many(self, i, items):
        self._random[i] += len(items)
        pos_of, score_at = self._pos_of[i], self._score_at[i]
        results: list[tuple[Score, Position]] = []
        for item in items:
            position = pos_of[self._row_of[item]] + 1
            self._mark(i, position)
            results.append((score_at[position - 1], position))
        return results

    def direct_step(self, i, items) -> DirectStep:
        lookups = [score for score, _pos in self.random_lookup_many(i, items)]
        position = self._bp[i] + 1
        if position > self.n:
            return lookups, None
        self._direct[i] += 1
        self._mark(i, position)
        row = self._rows_at[i][position - 1]
        return lookups, (self._ids[row], self._score_at[i][position - 1])

    def sorted_block(self, i, count):
        # One slice per column instead of ``count`` scalar reads; the
        # seen-position marks stay per entry (they drive best positions).
        start = self._cursor[i]
        stop = min(start + count, self.n)
        rows = self._rows_at[i][start:stop]
        scores = self._score_at[i][start:stop]
        ids = self._ids
        self._cursor[i] = stop
        self._sorted[i] += stop - start
        entries = []
        for offset, (row, score) in enumerate(zip(rows, scores)):
            position = start + offset + 1
            self._mark(i, position)
            entries.append((ids[row], score, position))
        return entries

    def direct_block(self, i, items, count):
        lookups = tuple(
            score for score, _pos in self.random_lookup_many(i, items)
        )
        rows_at, score_at, ids = self._rows_at[i], self._score_at[i], self._ids
        entries: list[tuple[ItemId, Score]] = []
        for _ in range(count):
            position = self._bp[i] + 1
            if position > self.n:
                break
            self._direct[i] += 1
            self._mark(i, position)
            row = rows_at[position - 1]
            entries.append((ids[row], score_at[position - 1]))
        return DirectResult(lookups, tuple(entries), self._bp[i] >= self.n)

    def best_position_scores(self) -> list[Score]:
        return [
            _INF if self._bp[i] == 0 else self._score_at[i][self._bp[i] - 1]
            for i in range(self.m)
        ]

    def best_positions(self) -> list[Position]:
        return list(self._bp)

    def total_tally(self) -> AccessTally:
        return AccessTally(
            sorted=sum(self._sorted),
            random=sum(self._random),
            direct=sum(self._direct),
        )
