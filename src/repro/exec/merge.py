"""Exact, certificate-checked merge of per-shard top-k answers.

**Why the merge is exact.**  Each shard answers top-``k'`` with
``k' = min(k, n_s)``.  Suppose item ``x`` belongs to the true global
top-k (under the library's total order: score descending, id
ascending).  Fewer than ``k`` items in the whole database precede ``x``,
hence fewer than ``k' <= k`` items in ``x``'s own shard precede it, so
``x`` is in its shard's top-``k'``.  The union of the per-shard answers
therefore contains the entire global top-k, and re-sorting the union
under the same total order and keeping ``k`` reproduces it exactly —
ties included, because per-shard answers and the merge use the identical
ordering.  (Per-shard answers must carry exact overall scores, which is
why NRA — whose reported scores are lower *bounds* — is executed
unsharded; see :data:`repro.service.sharding.MERGE_EXACT_ALGORITHMS`.)

**The threshold-style certificate.**  The argument above also yields a
checkable bound, verified on every merge: any item a shard did *not*
return is dominated by that shard's ``k'``-th returned entry, so the
merged ``k``-th entry must dominate every truncated shard's ``k'``-th
entry.  A violation would mean a shard under-returned; the merge raises
instead of serving silently wrong answers.

The merged ``k``-th entry doubles as a *reusable* certificate: every
item outside the answer is dominated by it under :func:`entry_key`, so
any later data change whose touched items still fall beyond that
boundary provably cannot enter (or reorder into) the top-k.  The merge
exposes it as ``extras["certificate_threshold"]`` — the invariant the
delta-aware result cache (:mod:`repro.service.cache`) revalidates and
patches against.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ShardMergeError
from repro.types import AccessTally, ScoredItem, TopKResult


def entry_key(entry: ScoredItem) -> tuple[float, int]:
    """The library-wide total order: score descending, id ascending."""
    return (-entry.score, entry.item)


def merge_shard_results(
    partials: Sequence[TopKResult],
    shard_sizes: Sequence[int],
    k: int,
    algorithm: str,
) -> TopKResult:
    """Merge per-shard top-k' answers into the exact global top-k.

    Verifies the threshold-style certificate described in the module
    docstring and raises :class:`repro.errors.ShardMergeError` if any
    truncated shard's bound beats the merged k-th entry (impossible for
    exact per-shard answers; a failure means a shard under-returned).
    """
    pool: list[ScoredItem] = []
    for partial in partials:
        pool.extend(partial.items)
    pool.sort(key=entry_key)
    merged = tuple(pool[:k])

    bounds_checked = 0
    if merged and len(merged) == k:
        kth = entry_key(merged[-1])
        for partial, size in zip(partials, shard_sizes):
            if len(partial.items) < size and partial.items:
                # The shard was truncated: everything it held back is
                # dominated by its last returned entry, which in turn
                # must not beat the merged k-th entry.
                if kth > entry_key(partial.items[-1]):
                    raise ShardMergeError(
                        f"shard merge bound violated for {algorithm}: "
                        f"{partial.items[-1]} beats merged k-th {merged[-1]}"
                    )
                bounds_checked += 1

    tally = AccessTally()
    for partial in partials:
        tally = tally + partial.tally
    return TopKResult(
        items=merged,
        tally=tally,
        rounds=max(partial.rounds for partial in partials),
        stop_position=max(partial.stop_position for partial in partials),
        algorithm=algorithm,
        extras={
            "shards": len(partials),
            "merge_bounds_checked": bounds_checked,
            "shard_stop_positions": tuple(
                partial.stop_position for partial in partials
            ),
            # The k-th merged score: the boundary no returned-but-worse
            # or never-returned item crosses (None when fewer than k
            # items exist at all).  Delta-aware caching reuses it.
            "certificate_threshold": (
                merged[-1].score if merged and len(merged) == k else None
            ),
        },
    )
