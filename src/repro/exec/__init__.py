"""The unified execution core shared by every execution environment.

The paper motivates BPA/BPA2 for middleware and distributed settings;
this package is the repo's single implementation of their coordinator
logic, reused by every stack that executes queries:

* :class:`ExecutionBackend` — the source protocol (sorted / random /
  best-position primitives, round-structured so transports can batch);
* :class:`LocalColumnarBackend` — the protocol over flat columnar
  arrays (single-node, kernel-path speed);
* :mod:`repro.exec.plan` — declarative :class:`RoundPlan` ops and the
  engine (:func:`drive`) that executes planners against any backend;
* :mod:`repro.exec.drivers` — TA/BPA/BPA2 round planners, classic
  (:func:`run_ta`, :func:`run_bpa`, :func:`run_bpa2`) and block
  (:func:`run_ta_block`, :func:`run_bpa_block`, :func:`run_bpa2_block`);
* :func:`merge_shard_results` — the certificate-checked exact top-k
  merge the shard executor fans in through;
* :mod:`repro.exec.certify` — the reusable k-th-entry certificate:
  classify a mutation delta against a certified answer as unchanged /
  patchable / recompute (shared by the delta-aware result cache and
  standing :mod:`repro.watch` subscriptions);
* :func:`execute_query` — kernel-or-reference execution of one query on
  one database (the per-shard / per-thread work unit);
* :mod:`repro.exec.keys` — canonical query/scoring identities shared by
  the result cache, the planner and the context caches.

``repro.service`` runs the core over local shard pools;
``repro.distributed`` runs it over the simulated network.  The
differential suites prove both produce results bit-identical to the
reference single-node algorithms.
"""

from repro.exec.backend import DirectStep, ExecutionBackend, LocalColumnarBackend
from repro.exec.drivers import (
    DRIVERS,
    DriverOutcome,
    run_bpa,
    run_bpa2,
    run_bpa2_block,
    run_bpa_block,
    run_ta,
    run_ta_block,
)
from repro.exec.keys import freeze_value, normalized_query_key, scoring_key
from repro.exec.merge import entry_key, merge_shard_results
from repro.exec.plan import (
    BlockRound,
    DirectBlock,
    DirectResult,
    ProbeBatch,
    ProbeResult,
    RoundPlan,
    SortedFetch,
    SortedResult,
    drive,
)
from repro.exec.run import execute_query

__all__ = [
    "ExecutionBackend",
    "LocalColumnarBackend",
    "DirectStep",
    "DriverOutcome",
    "DRIVERS",
    "RoundPlan",
    "SortedFetch",
    "ProbeBatch",
    "DirectBlock",
    "SortedResult",
    "ProbeResult",
    "DirectResult",
    "BlockRound",
    "drive",
    "run_ta",
    "run_bpa",
    "run_bpa2",
    "run_ta_block",
    "run_bpa_block",
    "run_bpa2_block",
    "entry_key",
    "merge_shard_results",
    "execute_query",
    "scoring_key",
    "freeze_value",
    "normalized_query_key",
]
