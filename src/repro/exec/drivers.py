"""Transport-agnostic drivers for TA, BPA and BPA2 — classic and block.

Each algorithm is a *planner*: a generator that owns the coordinator
logic (bookkeeping, stopping rules) and emits declarative
:class:`repro.exec.plan.RoundPlan`s; the shared engine
(:func:`repro.exec.plan.drive`) executes those plans against any
:class:`repro.exec.backend.ExecutionBackend`.  The same planner runs
vectorized over columnar arrays, as coalesced messages over the
simulated network, and as length-prefixed frames over TCP sockets;
``tests/differential/`` proves every combination bit-identical —
ranked answers *and* per-mode access tallies — to the reference
single-node algorithms.

The **classic** planners mirror the reference implementations exactly:

* TA / BPA: ``m`` parallel sorted accesses per round, then ``m - 1``
  random accesses per surfaced entry (repeated for already-seen items —
  the paper's Lemma 2 accounting).  Random accesses are grouped per
  source list, one :class:`~repro.exec.plan.ProbeBatch` each.
* BPA2: per round, each non-exhausted list serves one direct access at
  its (source-managed) best position + 1; every new item is completed
  via ``m - 1`` random accesses.  The random accesses destined for a
  list are delivered in two slices that preserve the reference's
  per-source operation order: those from earlier lists of the round
  ride with the list's own direct step, the rest follow in one batch at
  the end of the round.

The **block** planners (paper-exact top-k, middleware-friendly cost
profile) process ``width`` positions per round: one sorted (or direct)
block per list, then *deduplicated* probes — each new item is completed
exactly once, in every list that did not surface it this round.  Their
reference twins live in :mod:`repro.algorithms.block`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Union

from repro.algorithms.base import TopKBuffer
from repro.core.best_position import make_tracker
from repro.exec.backend import ExecutionBackend
from repro.exec.plan import (
    BlockRound,
    DirectBlock,
    DirectResult,
    Planner,
    ProbeBatch,
    ProbeResult,
    RoundPlan,
    SortedFetch,
    SortedResult,
    drive,
)
from repro.scoring import ScoringFunction
from repro.types import ItemId, Position, Score, ScoredItem

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class DriverOutcome:
    """What a driver hands back to its transport wrapper."""

    items: tuple[ScoredItem, ...]
    rounds: int
    stop_position: int


# ----------------------------------------------------------------------
# Classic planners (bit-identical to the reference algorithms)
# ----------------------------------------------------------------------


def _probe_plan(lookups: list[list[ItemId]]) -> RoundPlan:
    """One round's probe batches (empty lists ship no message)."""
    return RoundPlan(
        ops=tuple(
            ProbeBatch(j, tuple(items))
            for j, items in enumerate(lookups)
            if items
        ),
        new_round=False,
    )


def _probe_results(
    lookups: list[list[ItemId]], results: list[ProbeResult]
) -> list[list[tuple[Score, Position]]]:
    """Re-align probe results with the per-list request layout."""
    aligned: list[list[tuple[Score, Position]]] = []
    iterator = iter(results)
    for items in lookups:
        aligned.append(list(next(iterator).pairs) if items else [])
    return aligned


def _round_lookups(m: int, round_items: list[ItemId]) -> list[list[ItemId]]:
    """Lemma 2's probe layout: list ``j`` looks up the round's entries
    from every other list, in list order — ``need[j][slot]`` is the
    entry surfaced by list ``i`` where ``slot = i - (1 if i > j else 0)``.
    """
    return [
        [round_items[i] for i in range(m) if i != j] for j in range(m)
    ]


def _plan_ta(m: int, n: int, k: int, scoring: ScoringFunction) -> Planner:
    """TA's coordinator loop as a round planner."""
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    last: list[Score] = [0.0] * m
    position = 0
    while True:
        position += 1
        sorted_results: list[SortedResult] = yield RoundPlan(
            ops=tuple(SortedFetch(i, 1) for i in range(m))
        )
        round_items: list[ItemId] = []
        for i in range(m):
            item, score, _pos = sorted_results[i].entries[0]
            last[i] = score
            round_items.append(item)
        # Lemma 2 accounting: every surfaced entry probes the other
        # m - 1 lists, already-seen items included.
        need = _round_lookups(m, round_items)
        lookups = _probe_results(need, (yield _probe_plan(need)))
        for i in range(m):
            item = round_items[i]
            if item in seen:
                continue
            seen.add(item)
            local = [0.0] * m
            local[i] = last[i]
            for j in range(m):
                if j != i:
                    local[j] = lookups[j][i - (1 if i > j else 0)][0]
            buffer.add(item, scoring(local))
        if buffer.all_at_least(scoring(last)) or position >= n:
            return DriverOutcome(buffer.ranked(), position, position)


def _plan_bpa(
    m: int, n: int, k: int, scoring: ScoringFunction, tracker: str
) -> Planner:
    """BPA's coordinator loop: seen positions travel to the originator."""
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    trackers = [make_tracker(tracker, n) for _ in range(m)]
    seen_scores: list[dict[Position, Score]] = [{} for _ in range(m)]
    position = 0

    def note(i: int, pos: Position, score: Score) -> None:
        trackers[i].mark(pos)
        seen_scores[i][pos] = score

    while True:
        position += 1
        sorted_results: list[SortedResult] = yield RoundPlan(
            ops=tuple(SortedFetch(i, 1) for i in range(m))
        )
        round_items: list[ItemId] = []
        round_scores: list[Score] = []
        for i in range(m):
            item, score, pos = sorted_results[i].entries[0]
            note(i, pos, score)
            round_items.append(item)
            round_scores.append(score)
        need = _round_lookups(m, round_items)
        lookups = _probe_results(need, (yield _probe_plan(need)))
        for j in range(m):
            for score, pos in lookups[j]:
                note(j, pos, score)
        for i in range(m):
            item = round_items[i]
            if item in seen:
                continue
            seen.add(item)
            local = [0.0] * m
            local[i] = round_scores[i]
            for j in range(m):
                if j != i:
                    local[j] = lookups[j][i - (1 if i > j else 0)][0]
            buffer.add(item, scoring(local))
        lam = scoring(
            [seen_scores[i][trackers[i].best_position] for i in range(m)]
        )
        if buffer.all_at_least(lam) or position >= n:
            return DriverOutcome(buffer.ranked(), position, position)


def _plan_bpa2(
    backend: ExecutionBackend, k: int, scoring: ScoringFunction
) -> Planner:
    """BPA2's coordinator loop: best positions stay at the sources.

    ``backend`` is read only for its best-position state (piggybacked
    by networked transports); every access flows through plans.
    """
    m = backend.m
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    exhausted = [False] * m
    rounds = 0

    while True:
        rounds += 1
        progressed = False
        opened = False
        # Random lookups bundled with each list's upcoming direct step
        # (from earlier lists of this round) ...
        pre: list[list[ItemId]] = [[] for _ in range(m)]
        # ... and those delivered after it (or to lists with no step).
        post: list[list[ItemId]] = [[] for _ in range(m)]
        surfaced: list[tuple[int, ItemId, list[Score]]] = []
        locals_of: dict[ItemId, list[Score]] = {}
        for i in range(m):
            if exhausted[i]:
                continue
            step: list[DirectResult] = yield RoundPlan(
                ops=(DirectBlock(i, tuple(pre[i]), 1),), new_round=not opened
            )
            opened = True
            result = step[0]
            for item, score in zip(pre[i], result.lookups):
                locals_of[item][i] = score
            if not result.entries:
                exhausted[i] = True
                continue
            progressed = True
            item, score = result.entries[0]
            if item in seen:
                continue  # cannot happen (Theorem 5); kept for safety
            seen.add(item)
            local = [0.0] * m
            local[i] = score
            locals_of[item] = local
            surfaced.append((i, item, local))
            for j in range(m):
                if j == i:
                    continue
                if j > i and not exhausted[j]:
                    pre[j].append(item)
                else:
                    post[j].append(item)
        if not opened:
            # Every list exhausted: the round still opens (and counts)
            # before the final stop test, as the reference loop does.
            yield RoundPlan(ops=())
        if any(post):
            results = _probe_results(post, (yield _probe_plan(post)))
            for j in range(m):
                for item, (score, _pos) in zip(post[j], results[j]):
                    locals_of[item][j] = score
        for _i, item, local in surfaced:
            buffer.add(item, scoring(local))
        if buffer.all_at_least(scoring(backend.best_position_scores())):
            break
        if not progressed:
            break
    stop_position = max(backend.best_positions(), default=0)
    return DriverOutcome(buffer.ranked(), rounds, stop_position)


# ----------------------------------------------------------------------
# Block planners (width positions per round, deduplicated probes)
# ----------------------------------------------------------------------


#: A block width: a constant, or a zero-argument provider re-read at
#: the top of every round (the adaptive controller's hook — a constant
#: provider is proven bit-identical to the plain constant).
WidthSpec = Union[int, Callable[[], int]]


def _require_width(width: WidthSpec) -> None:
    if not callable(width) and width < 1:
        raise ValueError(f"block width must be >= 1, got {width}")


def _resolve_width(width: WidthSpec) -> int:
    """The width to use for the round starting now.

    Providers are consulted exactly once per round, so a mid-round
    adjustment never tears a round's access pattern; each resolution is
    validated because a provider can misbehave at any time.
    """
    value = width() if callable(width) else width
    if value < 1:
        raise ValueError(f"block width must be >= 1, got {value}")
    return int(value)


def _plan_ta_block(
    m: int, n: int, k: int, scoring: ScoringFunction, width: WidthSpec
) -> Planner:
    """Block TA: sorted blocks, then one completion per distinct item."""
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    last: list[Score] = [0.0] * m
    position = 0
    rounds = 0
    while True:
        rounds += 1
        count = min(_resolve_width(width), n - position)
        sorted_results: list[SortedResult] = yield RoundPlan(
            ops=tuple(SortedFetch(i, count) for i in range(m))
        )
        position += count
        block = BlockRound(m)
        for i in range(m):
            entries = sorted_results[i].entries
            last[i] = entries[-1][1]
            for item, score, _pos in entries:
                block.add(i, item, score)
        new_items = block.new_items(seen)
        seen.update(new_items)
        needs = block.probe_needs(new_items)
        results = _probe_results(needs, (yield _probe_plan(needs)))
        probes = {
            j: {item: results[j][slot][0] for slot, item in enumerate(needs[j])}
            for j in range(m)
        }
        for item in new_items:
            buffer.add(item, scoring(block.local_scores(item, probes)))
        if buffer.all_at_least(scoring(last)) or position >= n:
            return DriverOutcome(buffer.ranked(), rounds, position)


def _plan_bpa_block(
    m: int,
    n: int,
    k: int,
    scoring: ScoringFunction,
    width: WidthSpec,
    tracker: str,
) -> Planner:
    """Block BPA: sorted blocks + originator-side best positions."""
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    trackers = [make_tracker(tracker, n) for _ in range(m)]
    seen_scores: list[dict[Position, Score]] = [{} for _ in range(m)]
    position = 0
    rounds = 0

    def note(i: int, pos: Position, score: Score) -> None:
        trackers[i].mark(pos)
        seen_scores[i][pos] = score

    while True:
        rounds += 1
        count = min(_resolve_width(width), n - position)
        sorted_results: list[SortedResult] = yield RoundPlan(
            ops=tuple(SortedFetch(i, count) for i in range(m))
        )
        position += count
        block = BlockRound(m)
        for i in range(m):
            for item, score, pos in sorted_results[i].entries:
                note(i, pos, score)
                block.add(i, item, score)
        new_items = block.new_items(seen)
        seen.update(new_items)
        needs = block.probe_needs(new_items)
        results = _probe_results(needs, (yield _probe_plan(needs)))
        probes: dict[int, dict[ItemId, Score]] = {}
        for j in range(m):
            probes[j] = {}
            for slot, item in enumerate(needs[j]):
                score, pos = results[j][slot]
                note(j, pos, score)
                probes[j][item] = score
        for item in new_items:
            buffer.add(item, scoring(block.local_scores(item, probes)))
        lam = scoring(
            [seen_scores[i][trackers[i].best_position] for i in range(m)]
        )
        if buffer.all_at_least(lam) or position >= n:
            return DriverOutcome(buffer.ranked(), rounds, position)


def _plan_bpa2_block(
    backend: ExecutionBackend, k: int, scoring: ScoringFunction, width: WidthSpec
) -> Planner:
    """Block BPA2: parallel direct blocks, then deduplicated probes.

    Unlike the classic round (a sequential per-list chain), every
    list's direct block is independent — probes land only at the end of
    the round — so a pipelined transport overlaps all of them.
    """
    m = backend.m
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    exhausted = [False] * m
    rounds = 0

    while True:
        rounds += 1
        count = _resolve_width(width)
        active = [i for i in range(m) if not exhausted[i]]
        results: list[DirectResult] = yield RoundPlan(
            ops=tuple(DirectBlock(i, (), count) for i in active)
        )
        progressed = False
        block = BlockRound(m)
        for i, result in zip(active, results):
            if result.exhausted:
                exhausted[i] = True
            for item, score in result.entries:
                progressed = True
                block.add(i, item, score)
        new_items = block.new_items(seen)
        seen.update(new_items)
        needs = block.probe_needs(new_items)
        probe_results = _probe_results(needs, (yield _probe_plan(needs)))
        probes = {
            j: {
                item: probe_results[j][slot][0]
                for slot, item in enumerate(needs[j])
            }
            for j in range(m)
        }
        for item in new_items:
            buffer.add(item, scoring(block.local_scores(item, probes)))
        if buffer.all_at_least(scoring(backend.best_position_scores())):
            break
        if not progressed:
            break
    stop_position = max(backend.best_positions(), default=0)
    return DriverOutcome(buffer.ranked(), rounds, stop_position)


# ----------------------------------------------------------------------
# Public drivers: planner + engine
# ----------------------------------------------------------------------


def run_ta(
    backend: ExecutionBackend, k: int, scoring: ScoringFunction
) -> DriverOutcome:
    """TA's coordinator loop over any backend."""
    return drive(_plan_ta(backend.m, backend.n, k, scoring), backend)


def run_bpa(
    backend: ExecutionBackend,
    k: int,
    scoring: ScoringFunction,
    *,
    tracker: str = "bitarray",
) -> DriverOutcome:
    """BPA over any backend; needs positions in lookup responses."""
    _require_positions(backend)
    return drive(_plan_bpa(backend.m, backend.n, k, scoring, tracker), backend)


def run_bpa2(
    backend: ExecutionBackend, k: int, scoring: ScoringFunction
) -> DriverOutcome:
    """BPA2's coordinator loop: best positions stay at the sources."""
    return drive(_plan_bpa2(backend, k, scoring), backend)


def run_ta_block(
    backend: ExecutionBackend,
    k: int,
    scoring: ScoringFunction,
    *,
    width: WidthSpec = 8,
) -> DriverOutcome:
    """Block TA over any backend (``width`` positions per round)."""
    _require_width(width)
    return drive(_plan_ta_block(backend.m, backend.n, k, scoring, width), backend)


def run_bpa_block(
    backend: ExecutionBackend,
    k: int,
    scoring: ScoringFunction,
    *,
    width: WidthSpec = 8,
    tracker: str = "bitarray",
) -> DriverOutcome:
    """Block BPA over any backend; needs positions in responses."""
    _require_width(width)
    _require_positions(backend)
    return drive(
        _plan_bpa_block(backend.m, backend.n, k, scoring, width, tracker),
        backend,
    )


def run_bpa2_block(
    backend: ExecutionBackend,
    k: int,
    scoring: ScoringFunction,
    *,
    width: WidthSpec = 8,
) -> DriverOutcome:
    """Block BPA2 over any backend (``width`` direct accesses per round)."""
    _require_width(width)
    return drive(_plan_bpa2_block(backend, k, scoring, width), backend)


def _require_positions(backend: ExecutionBackend) -> None:
    if not backend.include_position:
        raise ValueError(
            "BPA-family drivers need positions in random-lookup responses: "
            "construct the backend with include_position=True"
        )


#: Driver registry keyed by the reference algorithm's registry name.
DRIVERS = {
    "ta": run_ta,
    "bpa": run_bpa,
    "bpa2": run_bpa2,
    "ta-block": run_ta_block,
    "bpa-block": run_bpa_block,
    "bpa2-block": run_bpa2_block,
}


def block_driver(name: str, width: int):
    """A width-bound block driver for one of the block registry names."""
    return partial(DRIVERS[name], width=width)
