"""Transport-agnostic drivers for TA, BPA and BPA2.

One implementation of each algorithm's coordinator logic, written purely
against :class:`repro.exec.backend.ExecutionBackend`.  The same driver
runs single-node over columnar arrays and over the simulated network;
``tests/differential/test_distributed_unified.py`` proves the results —
ranked answers *and* per-mode access tallies — bit-identical to the
reference single-node algorithms.

The access sequences mirror the reference implementations exactly:

* TA / BPA: ``m`` parallel sorted accesses per round, then ``m - 1``
  random accesses per surfaced entry (repeated for already-seen items —
  the paper's Lemma 2 accounting).  Random accesses are grouped per
  source list, which lets a networked backend answer a round's lookups
  for one list in a single message.
* BPA2: per round, each non-exhausted list serves one direct access at
  its (source-managed) best position + 1; every new item is completed
  via ``m - 1`` random accesses.  The random accesses destined for a
  list are delivered in two slices that preserve the reference's
  per-source operation order: those from earlier lists of the round
  ride with the list's own direct step, the rest follow in one batch at
  the end of the round.  Source-side state (best positions, tallies,
  piggyback points) is therefore identical to the per-entry protocol's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import TopKBuffer
from repro.core.best_position import make_tracker
from repro.exec.backend import ExecutionBackend
from repro.scoring import ScoringFunction
from repro.types import ItemId, Position, Score, ScoredItem

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class DriverOutcome:
    """What a driver hands back to its transport wrapper."""

    items: tuple[ScoredItem, ...]
    rounds: int
    stop_position: int


def run_ta(
    backend: ExecutionBackend, k: int, scoring: ScoringFunction
) -> DriverOutcome:
    """TA's coordinator loop over any backend."""
    m, n = backend.m, backend.n
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    last: list[Score] = [0.0] * m
    position = 0
    while True:
        backend.begin_round()
        position += 1
        round_items: list[ItemId] = []
        for i in range(m):
            item, score, _pos = backend.sorted_next(i)
            last[i] = score
            round_items.append(item)
        # Lemma 2 accounting: every surfaced entry probes the other
        # m - 1 lists, already-seen items included.
        lookups = _round_lookups(backend, round_items)
        for i in range(m):
            item = round_items[i]
            if item in seen:
                continue
            seen.add(item)
            local = [0.0] * m
            local[i] = last[i]
            for j in range(m):
                if j != i:
                    local[j] = lookups[j][i - (1 if i > j else 0)][0]
            buffer.add(item, scoring(local))
        if buffer.all_at_least(scoring(last)) or position >= n:
            return DriverOutcome(buffer.ranked(), position, position)


def run_bpa(
    backend: ExecutionBackend,
    k: int,
    scoring: ScoringFunction,
    *,
    tracker: str = "bitarray",
) -> DriverOutcome:
    """BPA's coordinator loop: seen positions travel to the originator."""
    if not backend.include_position:
        raise ValueError(
            "run_bpa needs positions in random-lookup responses: "
            "construct the backend with include_position=True"
        )
    m, n = backend.m, backend.n
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    trackers = [make_tracker(tracker, n) for _ in range(m)]
    seen_scores: list[dict[Position, Score]] = [{} for _ in range(m)]
    position = 0

    def note(i: int, pos: Position, score: Score) -> None:
        trackers[i].mark(pos)
        seen_scores[i][pos] = score

    while True:
        backend.begin_round()
        position += 1
        round_items: list[ItemId] = []
        round_scores: list[Score] = []
        for i in range(m):
            item, score, pos = backend.sorted_next(i)
            note(i, pos, score)
            round_items.append(item)
            round_scores.append(score)
        lookups = _round_lookups(backend, round_items)
        for j in range(m):
            for score, pos in lookups[j]:
                note(j, pos, score)
        for i in range(m):
            item = round_items[i]
            if item in seen:
                continue
            seen.add(item)
            local = [0.0] * m
            local[i] = round_scores[i]
            for j in range(m):
                if j != i:
                    local[j] = lookups[j][i - (1 if i > j else 0)][0]
            buffer.add(item, scoring(local))
        lam = scoring(
            [seen_scores[i][trackers[i].best_position] for i in range(m)]
        )
        if buffer.all_at_least(lam) or position >= n:
            return DriverOutcome(buffer.ranked(), position, position)


def run_bpa2(
    backend: ExecutionBackend, k: int, scoring: ScoringFunction
) -> DriverOutcome:
    """BPA2's coordinator loop: best positions stay at the sources."""
    m = backend.m
    buffer = TopKBuffer(k)
    seen: set[ItemId] = set()
    exhausted = [False] * m
    rounds = 0

    while True:
        backend.begin_round()
        rounds += 1
        progressed = False
        # Random lookups bundled with each list's upcoming direct step
        # (from earlier lists of this round) ...
        pre: list[list[ItemId]] = [[] for _ in range(m)]
        # ... and those delivered after it (or to lists with no step).
        post: list[list[ItemId]] = [[] for _ in range(m)]
        surfaced: list[tuple[int, ItemId, list[Score]]] = []
        locals_of: dict[ItemId, list[Score]] = {}
        for i in range(m):
            if exhausted[i]:
                continue
            lookups, entry = backend.direct_step(i, pre[i])
            for item, score in zip(pre[i], lookups):
                locals_of[item][i] = score
            if entry is None:
                exhausted[i] = True
                continue
            progressed = True
            item, score = entry
            if item in seen:
                continue  # cannot happen (Theorem 5); kept for safety
            seen.add(item)
            local = [0.0] * m
            local[i] = score
            locals_of[item] = local
            surfaced.append((i, item, local))
            for j in range(m):
                if j == i:
                    continue
                if j > i and not exhausted[j]:
                    pre[j].append(item)
                else:
                    post[j].append(item)
        for j in range(m):
            if not post[j]:
                continue
            for item, (score, _pos) in zip(
                post[j], backend.random_lookup_many(j, post[j])
            ):
                locals_of[item][j] = score
        for _i, item, local in surfaced:
            buffer.add(item, scoring(local))
        if buffer.all_at_least(scoring(backend.best_position_scores())):
            break
        if not progressed:
            break
    stop_position = max(backend.best_positions(), default=0)
    return DriverOutcome(buffer.ranked(), rounds, stop_position)


def _round_lookups(
    backend: ExecutionBackend, round_items: list[ItemId]
) -> list[list[tuple[Score, Position]]]:
    """One round's random accesses, grouped per list.

    List ``j`` looks up the round's entries from every other list, in
    list order — ``need[j][slot]`` is the entry surfaced by list ``i``
    where ``slot = i - (1 if i > j else 0)``.
    """
    m = len(round_items)
    return [
        backend.random_lookup_many(
            j, [round_items[i] for i in range(m) if i != j]
        )
        for j in range(m)
    ]


#: Driver registry keyed by the reference algorithm's registry name.
DRIVERS = {
    "ta": run_ta,
    "bpa": run_bpa,
    "bpa2": run_bpa2,
}
