"""Canonical hashable identities for queries and scoring functions.

Both the service cache and the execution core need to answer "would the
engine do identical work for these two queries?" — same algorithm, same
(over)fetched ``k``, same scoring semantics, same algorithm options.
These helpers canonicalize those dimensions; they live in the execution
core (below :mod:`repro.service`) so shard workers, context caches and
the result cache all share one notion of query identity.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping, Set

from repro.scoring import ScoringFunction


def scoring_key(scoring: ScoringFunction) -> tuple:
    """A hashable identity for a scoring function's *semantics*.

    Stock scorings have faithful reprs (``SumScoring()``,
    ``WeightedSumScoring([2.0, 0.5])``) so equal-behaving instances map
    to the same key.  A callable whose repr is the *default* one (it
    embeds the object's address) gets the instance itself appended to
    the key: comparing by the repr string alone would let CPython's
    address reuse alias a dead scoring with a later, different one,
    while pinning the instance makes the key identity-true (and keeps
    the object alive exactly as long as anything caches under it).
    """
    rep = repr(scoring)
    base = (
        type(scoring).__qualname__,
        str(getattr(scoring, "name", "")),
        rep,
    )
    if f"at 0x{id(scoring):x}" in rep:
        return base + (scoring,)
    return base


def freeze_value(value: Any) -> Hashable:
    """Recursively convert an option value into something hashable."""
    if isinstance(value, Mapping):
        return tuple(
            sorted((str(key), freeze_value(val)) for key, val in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(entry) for entry in value)
    if isinstance(value, Set):
        return tuple(sorted((repr(entry) for entry in value)))
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def normalized_query_key(
    algorithm: str,
    k: int,
    scoring: ScoringFunction,
    options: Mapping[str, object] = (),
) -> tuple:
    """The canonical cache key for one planned query."""
    return (
        algorithm,
        k,
        scoring_key(scoring),
        freeze_value(dict(options)),
    )
