"""Shared k-th-entry certificate classification over mutation deltas.

An exact ranked top-k answer carries a reusable *certificate*: its k-th
entry under the library total order (:func:`repro.exec.merge.entry_key`
— score descending, id ascending).  Every item outside the answer is
dominated by that boundary, so a later mutation whose touched items
still fall beyond it provably cannot enter (or reorder into) the top-k.
This module is the one place that reasons about such deltas; two
consumers share it:

* the delta-aware result cache (:mod:`repro.service.cache`), which
  classifies a *stale cache entry* against the mutation-log window
  separating its epoch from the lookup epoch; and
* standing subscriptions (:mod:`repro.watch`), which maintain a live
  result incrementally from the mutation stream, one event at a time.

Both ask the same question — *given these events, is the answer
provably unchanged, exactly repairable by re-scoring a few touched
items, or does it need recomputation?* — and :func:`classify_delta`
answers it.  :func:`patch_entries` then performs the repair, verifying
that the patched boundary still dominates the old one (otherwise an
untouched, unlogged outsider between the two boundaries could deserve a
slot, and only a recomputation can find it).

**Exhaustive mode.**  An answer holding fewer than ``k`` items is
normally useless for delta reasoning (its last entry is no exclusion
boundary — the cache always misses on such entries).  But a maintained
subscription *knows more*: when the database itself holds fewer than
``k`` items, the answer contains **every** item, so each mutation is
fully decidable without any boundary — a member delete just vacates a
slot, an insert always enters.  ``exhaustive=True`` enables that
reasoning; it must only be passed when the entries provably cover the
whole database.

**Precondition.**  Entry scores must be *exact* overall aggregates
(lower-bound algorithms like NRA break the comparison between logged
aggregates and cached scores); callers gate on their own notion of
exact-score algorithms before classifying.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.exec.merge import entry_key
from repro.types import ItemId, Score, ScoredItem

#: Classification verdicts, in decreasing order of luck.
UNCHANGED = "unchanged"
PATCH = "patch"
RECOMPUTE = "recompute"

#: ``rescore(items) -> {item: per-list local scores, or None if absent}``
#: against the *current* state — the patch path's data source.  The
#: cache reads the live snapshot (``lookup_many``); subscriptions answer
#: from the folded event vectors (bit-equal to fresh lookups, and the
#: snapshot is stale mid-mutation).
RescoreFn = Callable[
    [Sequence[ItemId]], Mapping[ItemId, tuple[Score, ...] | None]
]


def fold_events(events) -> dict[ItemId, tuple[Score, ...] | None]:
    """Fold a window of events to each touched item's *final* state.

    Only the end state matters: the maintained answer must equal a
    fresh run against the current data, however many intermediate
    states a touched item passed through.  ``None`` means the item no
    longer exists.
    """
    final: dict[ItemId, tuple[Score, ...] | None] = {}
    for event in events:
        final[event.item] = event.new_scores
    return final


def classify_delta(
    members: Mapping[ItemId, Score],
    boundary: tuple[float, int] | None,
    events,
    scoring: Callable[[Sequence[Score]], Score],
    *,
    patch_limit: int,
    exhaustive: bool = False,
) -> tuple[str, tuple[ItemId, ...]]:
    """Classify a window of mutations against a certified answer.

    Args:
        members: the answer's items mapped to their (exact) overall
            scores.
        boundary: the k-th entry's :func:`entry_key`, or ``None`` when
            the answer carries no exclusion boundary (underfull).
        events: the mutation window, oldest first (each event carries
            the item's full post-mutation score vector, ``None`` once
            removed).
        patch_limit: largest number of touched items a patch may
            re-score; wider deltas recompute.
        exhaustive: the answer provably contains *every* item (see the
            module docstring) — member deletes and boundary-less entry
            become decidable.

    Returns:
        ``(verdict, touched)`` — verdict is :data:`UNCHANGED`,
        :data:`PATCH` or :data:`RECOMPUTE`; ``touched`` lists the items
        a patch must re-score (empty unless the verdict is PATCH).
    """
    touched: list[ItemId] = []
    for item, scores in fold_events(events).items():
        cached = members.get(item)
        if scores is None:  # the item no longer exists
            if cached is None:
                continue  # a deleted non-member can hardly enter
            if not exhaustive:
                # A deleted member leaves a hole the delta cannot
                # fill: the replacement is some unlogged outsider.
                return RECOMPUTE, ()
            touched.append(item)  # the pool covers everything: just drop
            continue
        # A score vector without the capture (no score watchers at
        # mutation time) cannot be reasoned about; the event kinds that
        # reach here always carry vectors when capture is on, so a
        # missing vector is handled by the caller gating on it.
        aggregate = scoring(list(scores))
        if cached is not None:
            if aggregate == cached:
                continue  # unchanged member cannot move
            touched.append(item)
        elif boundary is not None and (-aggregate, item) > boundary:
            continue  # beyond the certificate: cannot enter the top-k
        elif boundary is None and not exhaustive:
            # No boundary to exclude an outsider against.
            return RECOMPUTE, ()
        else:
            touched.append(item)

    if not touched:
        return UNCHANGED, ()
    if len(touched) > patch_limit:
        return RECOMPUTE, ()
    return PATCH, tuple(touched)


def patch_entries(
    entries: Sequence[ScoredItem],
    touched: Sequence[ItemId],
    boundary: tuple[float, int] | None,
    scoring: Callable[[Sequence[Score]], Score],
    rescore: RescoreFn,
    *,
    k: int,
    exhaustive: bool = False,
) -> tuple[ScoredItem, ...] | None:
    """Re-score the touched items and re-merge; ``None`` = unsafe.

    The repair is provably exact only if the patched pool's new k-th
    key still dominates the old ``boundary`` — every *untouched*
    outsider was beyond the old boundary, so it stays beyond the new
    one.  In ``exhaustive`` mode there are no outsiders and the merge
    is exact unconditionally.
    """
    fresh = rescore(tuple(touched))
    touched_set = set(touched)
    pool: list[ScoredItem] = [
        entry for entry in entries if entry.item not in touched_set
    ]
    for item in touched:
        scores = fresh.get(item)
        if scores is None:
            if exhaustive:
                continue  # the pool covers everything: deletion = drop
            # The current state disagrees with the folded delta (the
            # item vanished) — never serve a guess.
            return None
        pool.append(ScoredItem(item=item, score=scoring(list(scores))))
    pool.sort(key=entry_key)
    if exhaustive:
        return tuple(pool[:k])
    if len(pool) < k:
        return None
    merged = tuple(pool[:k])
    if boundary is not None and entry_key(merged[-1]) > boundary:
        # The pool weakened past the old certificate: an untouched,
        # unlogged outsider between the two boundaries could now
        # deserve a slot.  Recompute.
        return None
    return merged
