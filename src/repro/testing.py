"""Differential-testing helpers for downstream users.

Anyone extending the library — a new scoring function, a custom
algorithm, a new generator — needs the same checks this repository runs
internally.  This module packages them:

* :func:`assert_algorithm_correct` — run an algorithm against the naive
  oracle over a grid of generated databases;
* :func:`assert_scoring_usable` — monotonicity probing plus an
  end-to-end agreement check under the given scoring function;
* :func:`assert_backends_equivalent` — run algorithms on the pure-Python
  *and* the columnar backend (plus any exact vectorized kernel) and
  require identical ranked answers, access tallies and extras;
* :func:`standard_test_databases` — the grid itself (small uniform,
  Gaussian, correlated, Zipf and tie-heavy databases).

Example::

    from repro.testing import assert_algorithm_correct
    assert_algorithm_correct(MyAlgorithm())
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.algorithms.base import TopKAlgorithm, get_algorithm, known_algorithms
from repro.algorithms.naive import brute_force_topk
from repro.columnar import ColumnarDatabase, get_kernel
from repro.datagen import (
    CorrelatedGenerator,
    GaussianCopulaGenerator,
    GaussianGenerator,
    UniformGenerator,
    ZipfGenerator,
)
from repro.datagen.figures import figure1_database, figure2_database
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction, ensure_monotonic


def standard_test_databases(*, seed: int = 7) -> Iterable[tuple[str, Database]]:
    """A labelled grid of small databases covering the usual regimes."""
    yield "figure1", figure1_database()
    yield "figure2", figure2_database()
    yield "uniform-small", UniformGenerator().generate(40, 3, seed=seed)
    yield "uniform-wide", UniformGenerator().generate(25, 6, seed=seed)
    yield "gaussian", GaussianGenerator().generate(40, 3, seed=seed)
    yield "correlated", CorrelatedGenerator(alpha=0.05).generate(40, 4, seed=seed)
    yield "copula", GaussianCopulaGenerator(rho=0.8).generate(40, 3, seed=seed)
    yield "zipf", ZipfGenerator().generate(40, 3, seed=seed)
    # Heavy ties: integer scores from a tiny domain.
    tie_rows = [
        [float((item * (list_index + 3)) % 4) for item in range(30)]
        for list_index in range(3)
    ]
    yield "tie-heavy", Database.from_score_rows(tie_rows)
    yield "single-list", Database.from_score_rows([[float(i) for i in range(20)]])


def assert_algorithm_correct(
    algorithm: TopKAlgorithm,
    *,
    scoring: ScoringFunction = SUM,
    ks: Iterable[int] = (1, 3, 10),
    seed: int = 7,
    tolerance: float = 1e-9,
) -> None:
    """Check ``algorithm`` against the naive oracle on the standard grid.

    Raises ``AssertionError`` naming the first failing configuration.
    """
    for label, database in standard_test_databases(seed=seed):
        for k in ks:
            if k > database.n:
                continue
            expected = [e.score for e in brute_force_topk(database, k, scoring)]
            result = algorithm.run(database, k, scoring)
            actual = list(result.scores)
            ok = len(actual) == len(expected) and all(
                math.isclose(a, b, rel_tol=0.0, abs_tol=tolerance)
                for a, b in zip(actual, expected)
            )
            assert ok, (
                f"{algorithm.name} wrong on {label} (k={k}): "
                f"got {actual}, expected {expected}"
            )


def score_matrix_strategy(
    max_items: int = 24,
    max_lists: int = 5,
    *,
    min_items: int = 1,
    min_lists: int = 1,
    tie_heavy: bool = False,
):
    """Hypothesis strategy for ``(m, n)`` integer score matrices.

    ``tie_heavy`` draws scores from a tiny domain so equal local scores
    (and equal overall scores) are common — the regime where
    tie-breaking bugs live.  Hypothesis is imported lazily so the
    library stays usable without it; calling this without hypothesis
    installed raises ``ImportError``.
    """
    from hypothesis import strategies as st

    score = st.integers(0, 6) if tie_heavy else st.integers(0, 1000)

    def rows(n: int):
        return st.lists(
            st.lists(score, min_size=n, max_size=n),
            min_size=min_lists,
            max_size=max_lists,
        )

    return st.integers(min_items, max_items).flatmap(rows)


def assert_backends_equivalent(
    database: Database,
    k: int,
    *,
    scoring: ScoringFunction = SUM,
    algorithms: Sequence[str] | None = None,
) -> None:
    """Require exact backend equivalence on one database and query.

    For every algorithm named (default: all registered), runs the
    reference implementation on the pure-Python backend, the same
    implementation on the columnar backend through the generic metered
    accessors, and — where the configuration has one — the vectorized
    columnar kernel.  All runs must agree *exactly*: identical ranked
    items and scores, identical per-mode access tallies, identical
    rounds/stop positions and identical ``extras``.  Raises
    ``AssertionError`` naming the first divergence.
    """
    columnar = ColumnarDatabase.from_database(database)
    for name in algorithms or known_algorithms():
        algorithm = get_algorithm(name)
        reference = algorithm.run(database, k, scoring)
        generic = algorithm.run(columnar, k, scoring)
        assert reference == generic and reference.extras == generic.extras, (
            f"{name}: columnar generic path diverges from reference "
            f"(k={k}): {generic} vs {reference}"
        )
        kernel_name = algorithm.fast_kernel()
        if kernel_name is not None:
            vectorized = get_kernel(kernel_name)(columnar, k, scoring)
            assert (
                reference == vectorized and reference.extras == vectorized.extras
            ), (
                f"{name}: vectorized kernel diverges from reference "
                f"(k={k}): {vectorized} vs {reference}"
            )


def assert_scoring_usable(
    scoring: ScoringFunction,
    arity: int,
    *,
    seed: int = 7,
) -> None:
    """Probe a scoring function for monotonicity and end-to-end agreement.

    Runs TA and BPA under ``scoring`` on an ``arity``-list database and
    requires both to match the naive oracle.  Raises
    :class:`repro.errors.NonMonotonicScoringError` or ``AssertionError``.
    """
    from repro.algorithms.base import get_algorithm

    ensure_monotonic(scoring, arity)
    database = UniformGenerator().generate(60, arity, seed=seed)
    expected = [e.score for e in brute_force_topk(database, 5, scoring)]
    for name in ("ta", "bpa", "bpa2"):
        result = get_algorithm(name).run(database, 5, scoring)
        actual = list(result.scores)
        assert all(
            math.isclose(a, b, rel_tol=0.0, abs_tol=1e-9)
            for a, b in zip(actual, expected)
        ), f"{name} disagrees with the oracle under {getattr(scoring, 'name', scoring)}"
