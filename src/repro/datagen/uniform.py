"""Uniform database generator (the paper's default setting).

"the scores of the data items in each list are generated using a uniform
random generator, and then the list is sorted" — Section 6.1.  Positions
of an item in any two lists are independent.
"""

from __future__ import annotations

from repro.datagen.base import rng_from_seed, validate_shape
from repro.lists.database import Database


class UniformGenerator:
    """Independent U[low, high) scores per item per list."""

    name = "uniform"

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        self._low = low
        self._high = high

    def generate(self, n: int, m: int, *, seed: int = 0) -> Database:
        """An ``m``-list database with i.i.d. uniform scores."""
        validate_shape(n, m)
        rng = rng_from_seed(seed)
        rows = rng.uniform(self._low, self._high, size=(m, n))
        return Database.from_score_rows(rows.tolist())

    def __repr__(self) -> str:
        return f"UniformGenerator(low={self._low}, high={self._high})"
