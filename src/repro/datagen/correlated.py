"""Correlated database generator (paper Section 6.1, after [23] / KLEE).

Recipe reproduced from the paper:

1. For the first list, the positions of the items are a random
   permutation.
2. For every other list, each item is displaced from its list-1 position
   ``p1`` by a random distance ``r ~ U[1, n*alpha]`` (direction chosen at
   random, clamped to the list bounds).  If the target position is taken,
   the item lands on the *closest free position*.
3. Scores in each list follow the Zipf law with ``theta = 0.7``: the score
   at rank ``p`` is ``1 / p**theta``.

Small ``alpha`` means strong correlation (items sit at nearly the same
rank in every list), which is what makes all three algorithms stop early
on these databases.

The closest-free-position step is implemented with two path-compressed
"next free slot" forests (one scanning right, one left), giving near-O(1)
amortized allocation, so generating ``n = 200,000`` lists is fast.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.base import rng_from_seed, validate_shape
from repro.datagen.zipf import PAPER_THETA, zipf_scores
from repro.errors import GenerationError
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList


class _FreeSlots:
    """Nearest-free-slot allocator over positions ``0..n-1``.

    Two union-find style forests: ``_right[p]`` points at the smallest
    free slot >= p, ``_left[p]`` at the largest free slot <= p (sentinels
    ``n`` and ``-1`` mean "none").  Path compression keeps amortized cost
    near constant.
    """

    __slots__ = ("_n", "_right", "_left")

    def __init__(self, n: int) -> None:
        self._n = n
        self._right = list(range(n + 1))  # sentinel at n
        self._left = list(range(-1, n))  # _left[p] = p initially; index offset
        # _left is indexed by p+1 so that p = -1 is representable.

    def _find_right(self, p: int) -> int:
        right = self._right
        root = p
        while right[root] != root:
            root = right[root]
        while right[p] != root:
            right[p], p = root, right[p]
        return root

    def _find_left(self, p: int) -> int:
        left = self._left
        idx = p + 1
        root = idx
        while left[root] != root - 1:
            root = left[root] + 1
        while left[idx] != root - 1:
            left[idx], idx = root - 1, left[idx] + 1
        return root - 1

    def take_nearest(self, p: int) -> int:
        """Occupy and return the free slot closest to ``p`` (ties: left)."""
        p = min(max(p, 0), self._n - 1)
        right = self._find_right(p)
        left = self._find_left(p)
        has_right = right < self._n
        has_left = left >= 0
        if not has_right and not has_left:
            raise GenerationError("no free positions left")
        if not has_right:
            choice = left
        elif not has_left:
            choice = right
        else:
            choice = left if (p - left) <= (right - p) else right
        # Mark occupied: right pointer skips to choice+1, left to choice-1.
        self._right[choice] = choice + 1
        self._left[choice + 1] = choice - 1
        return choice


class CorrelatedGenerator:
    """Positionally correlated lists with Zipf-distributed scores."""

    name = "correlated"

    def __init__(self, alpha: float = 0.01, theta: float = PAPER_THETA) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self._alpha = alpha
        self._theta = theta

    @property
    def alpha(self) -> float:
        """Correlation parameter (0 = identical rankings)."""
        return self._alpha

    def generate(self, n: int, m: int, *, seed: int = 0) -> Database:
        """An ``m``-list database with alpha-correlated positions."""
        validate_shape(n, m)
        rng = rng_from_seed(seed)
        scores = zipf_scores(n, self._theta)

        # List 1: a random permutation of items over positions.
        base_position = rng.permutation(n)  # base_position[item] = 0-based pos

        lists = [self._list_from_positions(base_position, scores, "L1")]
        max_distance = max(1, int(round(n * self._alpha)))
        for i in range(1, m):
            slots = _FreeSlots(n)
            positions = np.empty(n, dtype=np.int64)
            distances = rng.integers(1, max_distance + 1, size=n)
            signs = rng.choice((-1, 1), size=n)
            # Place items in random order so collision handling is unbiased.
            for item in rng.permutation(n):
                target = int(base_position[item]) + int(signs[item]) * int(
                    distances[item]
                )
                positions[item] = slots.take_nearest(target)
            lists.append(self._list_from_positions(positions, scores, f"L{i + 1}"))
        return Database(lists)

    @staticmethod
    def _list_from_positions(
        positions: np.ndarray, scores: np.ndarray, name: str
    ) -> SortedList:
        """Build a list where ``positions[item]`` is the item's 0-based rank."""
        entries = [
            (int(item), float(scores[positions[item]]))
            for item in range(len(positions))
        ]
        return SortedList(entries, name=name)

    def __repr__(self) -> str:
        return f"CorrelatedGenerator(alpha={self._alpha}, theta={self._theta})"
