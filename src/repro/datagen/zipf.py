"""Zipf-law score vectors.

"The Zipf law states that the score of an item in a ranked list is
inversely proportional to its rank (position) in the list" — Section 6.1.
The paper uses the generalized Zipf law with exponent ``theta = 0.7`` for
its correlated databases: the score at rank ``r`` is ``C / r**theta``.
"""

from __future__ import annotations

import numpy as np

PAPER_THETA = 0.7


def zipf_scores(n: int, theta: float = PAPER_THETA, *, scale: float = 1.0) -> np.ndarray:
    """Scores for ranks ``1..n``: ``scale / rank**theta`` (descending).

    Args:
        n: number of ranks.
        theta: Zipf exponent (0 = all equal; 1 = classic Zipf).
        scale: score of rank 1.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return scale / np.power(ranks, theta)


class ZipfGenerator:
    """Databases whose list scores follow the (generalized) Zipf law.

    Each list assigns the rank-``r`` score ``scale / r**theta`` to a
    random permutation of the items, so local scores are heavy-headed
    (few high scores, a long flat tail of near-ties) while positions
    across lists stay independent — a regime the uniform and Gaussian
    families never produce, and a classic stress for tie handling.
    """

    name = "zipf"

    def __init__(self, theta: float = PAPER_THETA, *, scale: float = 1.0) -> None:
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self._theta = theta
        self._scale = scale

    def generate(self, n: int, m: int, *, seed: int = 0):
        """An ``m``-list database of Zipf-law scores over ``n`` items."""
        from repro.datagen.base import rng_from_seed, validate_shape
        from repro.lists.database import Database

        validate_shape(n, m)
        rng = rng_from_seed(seed)
        base = zipf_scores(n, self._theta, scale=self._scale)
        rows = np.empty((m, n), dtype=np.float64)
        for i in range(m):
            # permutation[r] = the item holding rank r+1 in list i.
            rows[i, rng.permutation(n)] = base
        return Database.from_score_rows(rows.tolist())

    def __repr__(self) -> str:
        return f"ZipfGenerator(theta={self._theta}, scale={self._scale})"


def zipf_frequencies(
    n: int, theta: float = 1.0, *, total: int = 1_000_000
) -> np.ndarray:
    """Integer frequency counts following a Zipf law, summing to ~``total``.

    A convenience for examples that model access frequencies (e.g. URL
    hit counts in the paper's network-monitoring scenario).
    """
    weights = zipf_scores(n, theta)
    weights = weights / weights.sum()
    return np.maximum(1, np.round(weights * total)).astype(np.int64)
