"""Synthetic database generators (paper Section 6.1).

Three families, matching the paper's experimental setup:

* :class:`UniformGenerator` — independent U[0,1] scores (the default);
* :class:`GaussianGenerator` — independent N(0,1) scores;
* :class:`CorrelatedGenerator` — positions of an item across lists are
  correlated (displacement drawn from ``U[1, n*alpha]``), scores follow a
  Zipf law with ``theta = 0.7``.

Plus the exact worked-example databases of the paper
(:func:`figure1_database`, :func:`figure2_database`) and adversarial
constructions realizing the paper's worst-case separations
(:mod:`repro.datagen.adversarial`).
"""

from repro.datagen.base import DatabaseGenerator, GeneratorSpec, make_generator
from repro.datagen.copula import GaussianCopulaGenerator
from repro.datagen.correlated import CorrelatedGenerator
from repro.datagen.figures import figure1_database, figure2_database
from repro.datagen.gaussian import GaussianGenerator
from repro.datagen.uniform import UniformGenerator
from repro.datagen.zipf import ZipfGenerator, zipf_scores

__all__ = [
    "DatabaseGenerator",
    "GeneratorSpec",
    "make_generator",
    "UniformGenerator",
    "GaussianGenerator",
    "CorrelatedGenerator",
    "GaussianCopulaGenerator",
    "ZipfGenerator",
    "figure1_database",
    "figure2_database",
    "zipf_scores",
]
