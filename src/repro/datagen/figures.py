"""The paper's worked-example databases, encoded verbatim.

Figure 1 (Examples 1-3): the database over which FA stops at position 8,
TA at position 6 and BPA at position 3 for a top-3 sum query.

Figure 2 (Section 5.1): the database over which BPA performs 63 accesses
and BPA2 only 36 for a top-3 sum query.

The paper's figures print the first ten positions of each list; items
``d11``, ``d13`` and ``d14`` each appear in only some of the printed
prefixes, so the remaining tail positions (11 and 12, with scores strictly
below the printed ones) are filled in here to make each list a complete
permutation of the 12 items.  The tail items' overall scores (<= 38) are
far below the top-3 (>= 66), so every stop position and access count from
the paper is unchanged — the integration tests assert each of them.

Item ``d<i>`` is encoded as item id ``i``.
"""

from __future__ import annotations

from repro.lists.database import Database

#: Items appearing in the paper's figures (note: no d10 or d12).
FIGURE_ITEM_IDS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 14)

_FIGURE1_LISTS = [
    # List 1: positions 1..12.
    [
        (1, 30.0), (4, 28.0), (9, 27.0), (3, 26.0), (7, 25.0), (8, 23.0),
        (5, 17.0), (6, 14.0), (2, 11.0), (11, 10.0),
        (13, 9.0), (14, 8.0),  # tail (not printed in the paper)
    ],
    # List 2.
    [
        (2, 28.0), (6, 27.0), (7, 25.0), (5, 24.0), (9, 23.0), (1, 21.0),
        (8, 20.0), (3, 14.0), (4, 13.0), (14, 12.0),
        (11, 11.0), (13, 10.0),  # tail
    ],
    # List 3.
    [
        (3, 30.0), (5, 29.0), (8, 28.0), (4, 25.0), (2, 24.0), (6, 19.0),
        (13, 15.0), (1, 14.0), (9, 12.0), (7, 11.0),
        (11, 10.0), (14, 9.0),  # tail
    ],
]

_FIGURE2_LISTS = [
    # List 1.
    [
        (1, 30.0), (4, 28.0), (9, 27.0), (3, 26.0), (7, 25.0), (8, 24.0),
        (11, 17.0), (6, 14.0), (2, 11.0), (5, 10.0),
        (13, 9.0), (14, 8.0),  # tail
    ],
    # List 2.
    [
        (2, 28.0), (6, 27.0), (7, 25.0), (5, 24.0), (9, 23.0), (1, 22.0),
        (14, 20.0), (3, 14.0), (4, 13.0), (8, 12.0),
        (11, 11.0), (13, 10.0),  # tail
    ],
    # List 3.
    [
        (3, 30.0), (5, 29.0), (8, 28.0), (4, 27.0), (2, 26.0), (6, 25.0),
        (13, 15.0), (1, 13.0), (9, 12.0), (7, 11.0),
        (11, 10.0), (14, 9.0),  # tail
    ],
]

#: Overall sum scores printed in Figure 1 column (c).
FIGURE1_OVERALL = {
    1: 65.0, 2: 63.0, 3: 70.0, 4: 66.0, 5: 70.0,
    6: 60.0, 7: 61.0, 8: 71.0, 9: 62.0,
}

#: TA thresholds printed in Figure 1 column (b) for positions 1..10.
FIGURE1_THRESHOLDS = (88.0, 84.0, 80.0, 75.0, 72.0, 63.0, 52.0, 42.0, 36.0, 33.0)

#: Overall sum scores printed in Figure 2's rightmost column.
FIGURE2_OVERALL = {
    1: 65.0, 2: 65.0, 3: 70.0, 4: 68.0, 5: 63.0,
    6: 66.0, 7: 61.0, 8: 64.0, 9: 62.0,
}

#: Sum-of-local-scores column of Figure 2 for positions 1..10.
FIGURE2_THRESHOLDS = (88.0, 84.0, 80.0, 77.0, 74.0, 71.0, 52.0, 41.0, 36.0, 33.0)


def _labels() -> dict[int, str]:
    return {item: f"d{item}" for item in FIGURE_ITEM_IDS}


def figure1_database() -> Database:
    """The Figure 1 database (FA stops at 8, TA at 6, BPA at 3; k=3, sum)."""
    return Database.from_ranked_lists(_FIGURE1_LISTS, labels=_labels())


def figure2_database() -> Database:
    """The Figure 2 database (BPA: 63 accesses, BPA2: 36; k=3, sum)."""
    return Database.from_ranked_lists(_FIGURE2_LISTS, labels=_labels())
