"""Gaussian database generator.

"the scores of the data items in each list are Gaussian random numbers
with a mean of 0 and a standard deviation of 1" — Section 6.1.  Note the
paper's own problem definition asks for non-negative local scores; its
Gaussian database violates that, which is harmless for the (monotonic)
sum scoring used in the evaluation.  We reproduce the paper faithfully and
keep the default ``mean=0, std=1``; pass ``shift_nonnegative=True`` to add
a constant making all scores non-negative without changing any ranking.
"""

from __future__ import annotations

from repro.datagen.base import rng_from_seed, validate_shape
from repro.lists.database import Database


class GaussianGenerator:
    """Independent N(mean, std^2) scores per item per list."""

    name = "gaussian"

    def __init__(
        self, mean: float = 0.0, std: float = 1.0, *, shift_nonnegative: bool = False
    ) -> None:
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        self._mean = mean
        self._std = std
        self._shift = shift_nonnegative

    def generate(self, n: int, m: int, *, seed: int = 0) -> Database:
        """An ``m``-list database with i.i.d. Gaussian scores."""
        validate_shape(n, m)
        rng = rng_from_seed(seed)
        rows = rng.normal(self._mean, self._std, size=(m, n))
        if self._shift:
            rows = rows - rows.min()
        return Database.from_score_rows(rows.tolist())

    def __repr__(self) -> str:
        return (
            f"GaussianGenerator(mean={self._mean}, std={self._std}, "
            f"shift_nonnegative={self._shift})"
        )
