"""Gaussian-copula correlated generator (extension).

The paper's correlated family (:class:`repro.datagen.correlated.CorrelatedGenerator`)
controls correlation through positional displacement, which entangles
the correlation knob with ``n``.  This generator offers a cleaner,
scale-free alternative: each item ``d`` has a latent quality
``q_d ~ N(0, 1)`` and its score in list ``i`` is

    s_i(d) = sqrt(rho) * q_d + sqrt(1 - rho) * e_{i,d},   e ~ N(0, 1)

so the Pearson correlation between any two lists' scores is exactly
``rho``.  ``rho = 0`` reproduces the independent Gaussian database;
``rho = 1`` makes all lists identical rankings.

This is the instrument used by ``benchmarks/test_correlation_sweep.py``
to map *where BPA's advantage over TA switches on* as correlation grows
— the key question raised by the uniform-database deviation documented
in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from repro.datagen.base import rng_from_seed, validate_shape
from repro.lists.database import Database


class GaussianCopulaGenerator:
    """Lists with pairwise score correlation exactly ``rho``."""

    name = "copula"

    def __init__(self, rho: float = 0.5) -> None:
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self._rho = rho

    @property
    def rho(self) -> float:
        """Pairwise Pearson correlation between lists' scores."""
        return self._rho

    def generate(self, n: int, m: int, *, seed: int = 0) -> Database:
        """An ``m``-list database with rho-correlated Gaussian scores."""
        validate_shape(n, m)
        rng = rng_from_seed(seed)
        quality = rng.normal(0.0, 1.0, size=n)
        noise = rng.normal(0.0, 1.0, size=(m, n))
        rows = math.sqrt(self._rho) * quality + math.sqrt(1.0 - self._rho) * noise
        return Database.from_score_rows(rows.tolist())

    def __repr__(self) -> str:
        return f"GaussianCopulaGenerator(rho={self._rho})"
