"""Generator protocol and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import GenerationError
from repro.lists.database import Database


@runtime_checkable
class DatabaseGenerator(Protocol):
    """Anything that can produce a database of ``m`` lists over ``n`` items."""

    name: str

    def generate(self, n: int, m: int, *, seed: int = 0) -> Database:
        """Produce a database; identical arguments give identical output."""
        ...


def validate_shape(n: int, m: int) -> None:
    """Reject degenerate shapes with a typed error."""
    if n < 1:
        raise GenerationError(f"need at least one item, got n={n}")
    if m < 1:
        raise GenerationError(f"need at least one list, got m={m}")


def rng_from_seed(seed: int) -> np.random.Generator:
    """A seeded NumPy generator; the single source of randomness."""
    return np.random.default_rng(seed)


@dataclass(frozen=True, slots=True)
class GeneratorSpec:
    """A declarative generator description, used by the bench harness.

    ``kind`` is one of ``"uniform"``, ``"gaussian"``, ``"correlated"``;
    ``params`` carries kind-specific settings (e.g. ``alpha`` for the
    correlated family).
    """

    kind: str
    params: dict = field(default_factory=dict)

    def build(self) -> DatabaseGenerator:
        """Instantiate the generator described by this spec."""
        return make_generator(self.kind, **self.params)

    def describe(self) -> str:
        """Short human-readable description for report headers."""
        if not self.params:
            return self.kind
        inner = ", ".join(f"{key}={value}" for key, value in self.params.items())
        return f"{self.kind}({inner})"


def make_generator(kind: str, **params) -> DatabaseGenerator:
    """Instantiate a generator by name.

    Supported kinds: ``uniform``, ``gaussian``, ``correlated``.
    """
    # Imported here to avoid circular imports at package load time.
    from repro.datagen.copula import GaussianCopulaGenerator
    from repro.datagen.correlated import CorrelatedGenerator
    from repro.datagen.gaussian import GaussianGenerator
    from repro.datagen.uniform import UniformGenerator
    from repro.datagen.zipf import ZipfGenerator

    factories = {
        "uniform": UniformGenerator,
        "gaussian": GaussianGenerator,
        "correlated": CorrelatedGenerator,
        "copula": GaussianCopulaGenerator,
        "zipf": ZipfGenerator,
    }
    if kind not in factories:
        raise GenerationError(
            f"unknown generator kind {kind!r}; expected one of {sorted(factories)}"
        )
    return factories[kind](**params)
