"""Adversarial databases realizing the paper's worst-case separations.

Two constructive families:

* :func:`bpa_favorable_database` — the Lemma 3 family: TA stops at
  position ``j + 1`` (with ``j = (m-1)*u``) while BPA stops at ``u``, so
  BPA's sorted accesses are a factor ``(j+1)/u > m-1`` lower;
* :func:`bpa2_favorable_database` — the Theorem 8 family (a
  generalization of the paper's Figure 2 to any ``m >= 3`` and depth
  ``u``): BPA performs ``j * m**2`` accesses but BPA2 only
  ``(u+1) * m**2``, a factor ``j/(u+1) ≈ m-1``.

Construction idea (shared):

* positions ``1..u`` of every list hold *anchor* slots: each of the
  ``m*u`` special items is anchored in exactly one list, so the scanning
  algorithms discover exactly one fresh item per list per round;
* each special item's remaining local scores sit in the *mid* region of
  the other lists (filled perfectly, which is what lets BPA's best
  position leap to the end of the mid region) except for one score in the
  *tail* region beyond the stopping position (which is what keeps TA's
  threshold high and prevents early termination);
* scores follow a high plateau (``~2H``) over the anchor+mid region, then
  drop (``<= 0.9H``), so every special item's overall score
  (``~(m-1)*2H + tail``) sits strictly between the plateau threshold
  (``2Hm``) and the post-plateau threshold — pinning the exact stop
  rounds of TA, BPA and BPA2 independently of ``m``, ``u`` and ``k``.

Every structural claim here is asserted empirically by
``tests/integration/test_adversarial.py`` and the Lemma 3 / Theorem 8
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GenerationError
from repro.lists.database import Database
from repro.lists.sorted_list import SortedList

_H = 1000.0
_EPS = 1e-3


@dataclass(frozen=True, slots=True)
class AdversarialInfo:
    """Expected behaviour of an adversarial database."""

    m: int
    u: int
    j: int
    n: int
    max_k: int
    expected_ta_stop: int
    expected_bpa_stop: int
    expected_bpa2_rounds: int

    @property
    def sorted_access_ratio(self) -> float:
        """Predicted TA/BPA stop-position ratio (> m-1 for Lemma 3)."""
        return self.expected_ta_stop / self.expected_bpa_stop


def _plateau_scores(n: int, plateau_end: int, tail_start_score: float) -> list[float]:
    """Strictly decreasing scores: ~2H through ``plateau_end``, then low."""
    scores = []
    for position in range(1, n + 1):
        if position <= plateau_end:
            scores.append(2.0 * _H + (plateau_end - position) * _EPS)
        else:
            scores.append(tail_start_score - (position - plateau_end - 1) * _EPS)
    return scores


def _mid_contributors(m: int, target_list: int) -> list[int]:
    """Source lists whose anchored items place a mid score in ``target_list``.

    Item anchored in list ``i`` keeps its tail in list ``(i+1) % m`` and
    mids everywhere else, so list ``ell`` receives mids from every list
    except ``ell`` itself and ``ell - 1`` (whose items tail here).
    """
    skip = {target_list, (target_list - 1) % m}
    return [i for i in range(m) if i not in skip]


def bpa_favorable_database(m: int, u: int) -> tuple[Database, AdversarialInfo]:
    """A Lemma 3 instance: BPA stops ``(m-1)``+ times earlier than TA.

    Args:
        m: number of lists (>= 3; the separation is void at m=2).
        u: BPA's stopping position; TA stops at ``(m-1)*u + 1``.

    Layout of every list (positions):
    ``[1..u]`` anchors, ``[u+1..j]`` mids (``j = (m-1)*u``),
    ``[j+1..j+u]`` tails of the anchored items, ``[j+u+1..n]`` fillers.
    After round ``u`` BPA has seen *all* of ``[1 .. j+u]`` in every list
    (anchors via sorted access, mids/tails via the random probes of the
    anchored items), so its best position jumps past ``j`` and the
    stopping value collapses, while TA's threshold stays on the plateau
    until position ``j + 1``.
    """
    if m < 3:
        raise GenerationError("Lemma 3 construction needs m >= 3")
    if u < 1:
        raise GenerationError("need u >= 1")
    j = (m - 1) * u
    filler_count = max(2, m)
    n = m * u + filler_count

    # positions[list][item] = 1-based position; build per-list slots.
    special = m * u  # items 0 .. special-1; item id = anchor_list * u + (p-1)
    position_of = [[0] * (special + filler_count) for _ in range(m)]

    # Anchors: item (i, p) at position p of list i.
    for i in range(m):
        for p in range(1, u + 1):
            position_of[i][i * u + (p - 1)] = p

    # Mids: list ell's slots [u+1 .. j] in contributor blocks of size u.
    for ell in range(m):
        for block, i in enumerate(_mid_contributors(m, ell)):
            for p in range(1, u + 1):
                item = i * u + (p - 1)
                position_of[ell][item] = u + block * u + p

    # Tails: item (i, p) tails in list (i+1) % m at position j + p.
    for i in range(m):
        for p in range(1, u + 1):
            item = i * u + (p - 1)
            position_of[(i + 1) % m][item] = j + p

    # Fillers occupy [j+u+1 .. n] in every list.
    for f in range(filler_count):
        for ell in range(m):
            position_of[ell][special + f] = j + u + 1 + f

    scores = _plateau_scores(n, plateau_end=j, tail_start_score=0.9 * _H)
    database = _assemble(position_of, scores, m, n)
    info = AdversarialInfo(
        m=m, u=u, j=j, n=n, max_k=m * u,
        expected_ta_stop=j + 1,
        expected_bpa_stop=u,
        expected_bpa2_rounds=u,
    )
    return database, info


def bpa2_favorable_database(m: int, u: int) -> tuple[Database, AdversarialInfo]:
    """A Theorem 8 instance: BPA2 does ``~(m-1)x`` fewer accesses than BPA.

    Generalizes the paper's Figure 2.  Layout of every list:
    ``[1..u]`` anchors, ``[u+1..j-1]`` mids (``j = (m-1)*u + 1``),
    position ``j`` holds a *blocker* item whose other positions all lie in
    the tail, ``[j+1..n]`` tails.  The blockers keep position ``j`` unseen
    until round ``j`` (BPA) / round ``u+1`` (BPA2, whose direct access
    leaps straight from best position ``j-1`` to ``j``), which is exactly
    the paper's proof scenario: BPA grinds through ``j`` sorted rounds
    while BPA2 needs only ``u + 1`` direct rounds.
    """
    if m < 3:
        raise GenerationError("Theorem 8 construction needs m >= 3")
    if u < 1:
        raise GenerationError("need u >= 1")
    j = (m - 1) * u + 1
    n = m * (u + 1)
    special = m * u  # region items
    blockers = m  # item ids special .. special+m-1

    position_of = [[0] * (special + blockers) for _ in range(m)]

    # Anchors.
    for i in range(m):
        for p in range(1, u + 1):
            position_of[i][i * u + (p - 1)] = p

    # Mids: list ell's slots [u+1 .. j-1] in contributor blocks.
    for ell in range(m):
        for block, i in enumerate(_mid_contributors(m, ell)):
            for p in range(1, u + 1):
                item = i * u + (p - 1)
                position_of[ell][item] = u + block * u + p

    # Region tails: item (i, p) tails in list (i+1) % m at position j + p.
    for i in range(m):
        for p in range(1, u + 1):
            item = i * u + (p - 1)
            position_of[(i + 1) % m][item] = j + p

    # Blockers: blocker b sits at position j of list b and deep in the
    # tail of every other list (each list hosts the m-1 foreign blockers
    # at positions j+u+1 .. n, ordered by blocker id).
    for b in range(m):
        position_of[b][special + b] = j
        for ell in range(m):
            if ell == b:
                continue
            offset = sorted(x for x in range(m) if x != ell).index(b)
            position_of[ell][special + b] = j + u + 1 + offset

    scores = _plateau_scores(n, plateau_end=j - 1, tail_start_score=_H)
    database = _assemble(position_of, scores, m, n)
    info = AdversarialInfo(
        m=m, u=u, j=j, n=n, max_k=m * u,
        expected_ta_stop=j,
        expected_bpa_stop=j,
        expected_bpa2_rounds=u + 1,
    )
    return database, info


def _assemble(
    position_of: list[list[int]], scores: list[float], m: int, n: int
) -> Database:
    """Turn position tables + a shared score-by-position vector into lists."""
    lists = []
    for ell in range(m):
        taken = position_of[ell]
        if sorted(taken) != list(range(1, n + 1)):
            raise GenerationError(
                f"internal error: list {ell} positions are not a permutation"
            )
        entries = [
            (item, scores[position - 1]) for item, position in enumerate(taken)
        ]
        lists.append(SortedList(entries, name=f"L{ell + 1}"))
    return Database(lists)
