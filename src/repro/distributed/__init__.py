"""Simulated distributed top-k query processing.

The paper argues (Section 6.1, metric 2) that in a distributed system the
number of messages between the query originator and the list owners is
proportional to the number of list accesses, and that BPA2 additionally
avoids shipping seen positions to the originator.  This package makes
those arguments measurable:

* :class:`SimulatedNetwork` — synchronous request/response transport that
  counts messages and payload bytes;
* :class:`ListOwnerNode` — one node per list, serving sorted / random /
  direct accesses and (for BPA2) managing its best position locally;
* :class:`NetworkBackend` — the network as one
  :class:`repro.exec.ExecutionBackend` transport (per-entry, batched or
  pipelined wire protocol) for the round-plan drivers in
  :mod:`repro.exec.drivers`;
* :class:`SocketCluster` / :class:`SocketNetwork` — the same owner
  protocol served by real OS processes over length-prefixed TCP framing
  (:mod:`repro.distributed.socket_transport`), multi-tenant since
  :class:`ClusterPlacement` assigns lists to a configurable number of
  :class:`OwnerDaemon` processes (per-owner frame coalescing, a
  :class:`ColumnarOwnerNode` vectorized serving path, ``.bpsn``
  warm starts and a ``state``-frame metrics endpoint);
* coordinator-side drivers: :class:`DistributedTA`,
  :class:`DistributedBPA`, :class:`DistributedBPA2` (thin transport
  wrappers over the unified core) and the related-work baseline
  :class:`DistributedTPUT` (Cao & Wang, PODC 2004).

All drivers return a :class:`repro.types.TopKResult` whose ``extras``
carry a :class:`NetworkStats` snapshot.
"""

from repro.distributed.daemon import LatencyReservoir, OwnerDaemon
from repro.distributed.network import NetworkStats, SimulatedNetwork
from repro.distributed.nodes import ColumnarOwnerNode, ListOwnerNode
from repro.distributed.placement import ClusterPlacement
from repro.distributed.transport import NetworkBackend
from repro.distributed.socket_transport import (
    SocketCluster,
    SocketNetwork,
    connect_ports,
)
from repro.distributed.algorithms import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
)
from repro.distributed.tput import DistributedTPUT

__all__ = [
    "SimulatedNetwork",
    "NetworkStats",
    "NetworkBackend",
    "SocketCluster",
    "SocketNetwork",
    "connect_ports",
    "ClusterPlacement",
    "OwnerDaemon",
    "LatencyReservoir",
    "ListOwnerNode",
    "ColumnarOwnerNode",
    "DistributedTA",
    "DistributedBPA",
    "DistributedBPA2",
    "DistributedTPUT",
]
