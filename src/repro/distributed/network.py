"""Synchronous message-passing transport with cost accounting.

The simulation is deliberately simple — a blocking request/response RPC —
because the paper's distributed metric is *how many* messages flow and
how big they are, not their timing.  Every request and every response is
one message; payload sizes are estimated with a fixed-width encoding
(8 bytes per number, UTF-8 for strings), so "BPA ships positions, BPA2
does not" shows up directly in the byte counters.

Beyond the totals, :class:`NetworkStats` breaks the traffic down two
ways the drivers need:

* per *round* (:meth:`NetworkStats.begin_round`): the coordinator
  announces each parallel access round, and message/byte counts are
  accumulated per round so protocols can be compared round for round;
* per *best-position exchange*: every response payload that carries
  best-position state — BPA's shipped ``position``/``positions`` fields
  or BPA2's piggybacked ``bp_score`` — is tallied separately
  (``bp_messages``/``bp_bytes``), which makes "BPA2 removes the
  position traffic" a measured number instead of a claim.
"""

from __future__ import annotations

import numbers
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

#: Response fields that carry best-position state across the wire.
_BP_FIELDS = ("bp_score", "position", "positions")


def payload_size(value: Any) -> int:
    """Estimated wire size of a payload value, in bytes.

    Numbers cost 8 bytes, booleans/None 1, strings their UTF-8 length,
    containers the sum of their elements (dict keys included).  NumPy
    scalars count like their Python equivalents — the columnar backend
    serves ``float64``/``int64`` values, and a transport must price
    them, not crash on them.  This is a stable,
    implementation-independent proxy for message size.
    """
    if value is None or isinstance(value, (bool, np.bool_)):
        return 1
    if isinstance(value, numbers.Number):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, dict):
        return sum(payload_size(k) + payload_size(v) for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(payload_size(item) for item in value)
    raise TypeError(f"unsupported payload type: {type(value).__name__}")


@dataclass
class NetworkStats:
    """Message and byte counters, broken down by request kind.

    ``rounds`` counts coordinator-announced access rounds, and
    ``messages_by_round`` / ``bytes_by_round`` accumulate per-round
    traffic (index 0 holds anything sent before the first round).
    ``bp_messages`` / ``bp_bytes`` tally responses carrying
    best-position state and the wire size of exactly those fields.
    """

    messages: int = 0
    bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    rounds: int = 0
    messages_by_round: list[int] = field(default_factory=lambda: [0])
    bytes_by_round: list[int] = field(default_factory=lambda: [0])
    bp_messages: int = 0
    bp_bytes: int = 0

    def begin_round(self) -> None:
        """Open a new accounting round (the coordinator calls this)."""
        self.rounds += 1
        self.messages_by_round.append(0)
        self.bytes_by_round.append(0)

    def record(self, kind: str, request_bytes: int, response_bytes: int) -> None:
        """Account one request/response round trip (two messages)."""
        self.messages += 2
        self.bytes += request_bytes + response_bytes
        self.by_kind[kind] += 2
        self.bytes_by_kind[kind] += request_bytes + response_bytes
        self.messages_by_round[-1] += 2
        self.bytes_by_round[-1] += request_bytes + response_bytes

    def record_one_way(self, kind: str, size: int) -> None:
        """Account a single one-way message (e.g. a bulk phase response)."""
        self.messages += 1
        self.bytes += size
        self.by_kind[kind] += 1
        self.bytes_by_kind[kind] += size
        self.messages_by_round[-1] += 1
        self.bytes_by_round[-1] += size

    def record_best_position_payload(self, response: dict) -> None:
        """Tally the best-position fields of one response payload.

        BPA's shipped positions and BPA2's piggybacked best-position
        scores both travel inside ordinary responses; this counts the
        messages that carry them and the bytes those fields add —
        previously invisible in the per-kind totals.  Coalesced
        ``multi`` frames nest one sub-response per op under
        ``"results"``; their best-position fields are tallied into the
        same counters (one ``bp_message`` per carrying *frame*), so
        per-owner coalescing stays comparable with the per-list rows.
        """
        size = self._bp_field_size(response)
        if size:
            self.bp_messages += 1
            self.bp_bytes += size

    @classmethod
    def _bp_field_size(cls, response: dict) -> int:
        size = sum(
            payload_size(response[key]) + payload_size(key)
            for key in _BP_FIELDS
            if key in response
        )
        for sub in response.get("results", ()):
            if isinstance(sub, dict):
                size += cls._bp_field_size(sub)
        return size

    #: ``snapshot()`` ships at most this many per-round buckets: results
    #: (and the service's cache entries holding them) stay bounded even
    #: when TA runs a round per position on a large database.
    SNAPSHOT_MAX_ROUNDS = 256

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict copy for embedding into result extras.

        The per-round series are truncated to the first
        :attr:`SNAPSHOT_MAX_ROUNDS` buckets; ``rounds_omitted`` reports
        how many were dropped (0 in the common case).  The totals always
        cover every round.
        """
        cap = self.SNAPSHOT_MAX_ROUNDS
        omitted = max(0, len(self.messages_by_round) - cap)
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_kind": dict(self.by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
            "rounds": self.rounds,
            "messages_by_round": self.messages_by_round[:cap],
            "bytes_by_round": self.bytes_by_round[:cap],
            "rounds_omitted": omitted,
            "bp_messages": self.bp_messages,
            "bp_bytes": self.bp_bytes,
        }


class RequestHandler(Protocol):
    """Anything addressable on the network (list owners)."""

    def handle(self, kind: str, payload: dict) -> dict:
        """Serve one request and return the response payload."""
        ...


class SimulatedNetwork:
    """Blocking RPC fabric between the originator and list owners."""

    def __init__(self) -> None:
        self.stats = NetworkStats()
        self._nodes: dict[str, RequestHandler] = {}

    def register(self, address: str, node: RequestHandler) -> None:
        """Attach a node under a unique address."""
        if address in self._nodes:
            raise ValueError(f"address already registered: {address}")
        self._nodes[address] = node

    def request(self, address: str, kind: str, payload: dict | None = None) -> dict:
        """Send a request, deliver the response, account both messages."""
        if address not in self._nodes:
            raise KeyError(f"no node at address {address}")
        payload = payload or {}
        response = self._nodes[address].handle(kind, payload)
        self.stats.record(
            kind,
            request_bytes=payload_size(kind) + payload_size(payload),
            response_bytes=payload_size(response),
        )
        self.stats.record_best_position_payload(response)
        return response

    def request_many(
        self, requests: "list[tuple[str, str, dict | None]]"
    ) -> list[dict]:
        """Deliver a dependency-free batch of requests.

        The simulation is synchronous, so the batch is served in order —
        message and byte accounting are identical to one
        :meth:`request` per element.  Concurrent transports (the socket
        fabric) override this to put every request on the wire before
        reading any response; the pipelined protocol's wall-clock win
        lives entirely in that overlap.
        """
        return [
            self.request(address, kind, payload)
            for address, kind, payload in requests
        ]

    def reset_stats(self) -> None:
        """Zero all counters (e.g. between queries)."""
        self.stats = NetworkStats()
