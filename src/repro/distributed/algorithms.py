"""Coordinator-side drivers for distributed TA, BPA and BPA2.

Since the unified execution core (:mod:`repro.exec`) these classes are
thin transport wrappers: the algorithm logic lives once in the round
planners of :mod:`repro.exec.drivers`, and each driver here chooses how
the plans are served —

* ``transport="simulated"`` (default): one :class:`ListOwnerNode` per
  list behind a :class:`SimulatedNetwork`, with per-round message/byte
  accounting in ``extras["network"]``.  ``protocol="entry"`` is the
  paper's per-entry RPC (one round trip per access);
  ``protocol="batch"`` coalesces a round's lookups per owner into
  single messages; ``protocol="pipelined"`` ships the batched messages
  as overlapped waves (identical counts — see
  :mod:`repro.distributed.transport`);
* ``transport="socket"``: the same owners in **separate OS processes**
  behind length-prefixed TCP framing
  (:mod:`repro.distributed.socket_transport`); byte counters measure
  real frames, and ``protocol="pipelined"`` genuinely overlaps the
  round trips (``repro dist-bench`` reports the wall-clock saving);
* ``transport="local"``: the same driver over
  :class:`repro.exec.LocalColumnarBackend` — no network at all, flat
  columnar arrays, which is how the differential suite proves the
  drivers bit-identical to the reference single-node algorithms.

``block_width > 1`` switches every transport to the block planners
(``ta-block`` / ``bpa-block`` / ``bpa2-block``): one sorted or direct
block of that width per list per round, deduplicated probes — the
middleware cost profile of :mod:`repro.algorithms.block`, whose
reference implementations the differential suite matches bit for bit.
"""

from __future__ import annotations

from typing import Callable

from repro.distributed.placement import (
    STRATEGIES as PLACEMENT_STRATEGIES,
    ClusterPlacement,
)
from repro.distributed.transport import PROTOCOLS, NetworkBackend
from repro.errors import InvalidQueryError
from repro.exec.backend import LocalColumnarBackend
from repro.exec.drivers import (
    DriverOutcome,
    run_bpa,
    run_bpa2,
    run_bpa2_block,
    run_bpa_block,
    run_ta,
    run_ta_block,
)
from repro.lists.accessor import DatabaseLike
from repro.scoring import SUM, ScoringFunction
from repro.types import TopKResult

TRANSPORTS = ("simulated", "local", "socket")


class _DistributedDriver:
    """Shared plumbing: backend setup, result packaging."""

    name: str = "distributed"
    include_position: bool = False

    def __init__(
        self,
        *,
        tracker: str = "bitarray",
        protocol: str = "entry",
        transport: str = "simulated",
        block_width: "int | Callable[[], int]" = 1,
        owners: int | None = None,
        placement: str = "contiguous",
        columnar: str = "auto",
    ) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}"
            )
        # A callable width is a per-round provider (the adaptive
        # controller); it is validated at each resolution instead.
        if not callable(block_width) and block_width < 1:
            raise ValueError(f"block_width must be >= 1, got {block_width}")
        if placement not in PLACEMENT_STRATEGIES:
            raise ValueError(
                f"unknown placement {placement!r}; "
                f"expected one of {PLACEMENT_STRATEGIES}"
            )
        if owners is not None and owners < 0:
            raise ValueError(f"owners must be >= 0, got {owners}")
        self._tracker_kind = tracker
        self._protocol = protocol
        self._transport = transport
        self._block_width = block_width
        self._owners = owners
        self._placement = placement
        self._columnar = columnar

    def run(
        self, database: DatabaseLike, k: int, scoring: ScoringFunction = SUM
    ) -> TopKResult:
        """Execute the query over a fresh deployment of the transport."""
        if not 1 <= k <= database.n:
            raise InvalidQueryError(f"k must be in 1..{database.n}, got {k}")
        if self._transport == "local":
            backend = LocalColumnarBackend(
                database, include_position=self.include_position
            )
            outcome = self._drive(backend, k, scoring)
            tally = backend.total_tally()
            extras = {}
        elif self._transport == "socket":
            from repro.distributed.socket_transport import SocketCluster

            with SocketCluster(
                database,
                owners=self._owners,
                placement=self._placement,
                tracker=self._tracker_kind,
                include_position=self.include_position,
                columnar=self._columnar,
            ) as cluster, cluster.connect() as fabric:
                backend = NetworkBackend.remote(
                    fabric,
                    m=cluster.m,
                    n=cluster.n,
                    include_position=self.include_position,
                    protocol=self._protocol,
                    placement=cluster.placement,
                )
                outcome = self._drive(backend, k, scoring)
                tally = backend.total_tally()
                extras = {
                    "network": fabric.stats.snapshot(),
                    "protocol": self._protocol,
                    "transport": "socket",
                    "owners": cluster.placement.owners,
                }
        else:
            sim_placement = None
            if self._owners is not None:
                sim_placement = ClusterPlacement.build(
                    database.m, owners=self._owners, strategy=self._placement
                )
            backend = NetworkBackend(
                database,
                tracker=self._tracker_kind,
                include_position=self.include_position,
                protocol=self._protocol,
                placement=sim_placement,
                columnar=self._columnar,
            )
            outcome = self._drive(backend, k, scoring)
            tally = backend.total_tally()
            extras = {
                "network": backend.network.stats.snapshot(),
                "protocol": self._protocol,
            }
            if sim_placement is not None:
                extras["owners"] = sim_placement.owners
        if not callable(self._block_width) and self._block_width > 1:
            extras["block_width"] = self._block_width
        return TopKResult(
            items=outcome.items,
            tally=tally,
            rounds=outcome.rounds,
            stop_position=outcome.stop_position,
            algorithm=self.name,
            extras=extras,
        )

    def _drive(self, backend, k, scoring) -> DriverOutcome:
        raise NotImplementedError

    @property
    def _blocked(self) -> bool:
        """Whether to run the block planners (any provider, or width > 1)."""
        return callable(self._block_width) or self._block_width > 1


class DistributedTA(_DistributedDriver):
    """TA over the chosen transport: one round trip per access."""

    name = "dist-ta"
    include_position = False

    def _drive(self, backend, k, scoring):
        if self._blocked:
            return run_ta_block(backend, k, scoring, width=self._block_width)
        return run_ta(backend, k, scoring)


class DistributedBPA(_DistributedDriver):
    """BPA over the chosen transport: positions travel to the originator.

    The originator maintains the seen positions and their scores (the
    state BPA2 later pushes down to the owners).
    """

    name = "dist-bpa"
    include_position = True

    def _drive(self, backend, k, scoring):
        if self._blocked:
            return run_bpa_block(
                backend,
                k,
                scoring,
                width=self._block_width,
                tracker=self._tracker_kind,
            )
        return run_bpa(backend, k, scoring, tracker=self._tracker_kind)


class DistributedBPA2(_DistributedDriver):
    """BPA2 over the chosen transport: owners keep the best positions.

    The originator state is exactly what the paper allows it: the set
    ``Y`` and the ``m`` best-position local scores, refreshed from the
    ``bp_score`` piggybacks.
    """

    name = "dist-bpa2"
    include_position = False

    def _drive(self, backend, k, scoring):
        if self._blocked:
            return run_bpa2_block(backend, k, scoring, width=self._block_width)
        return run_bpa2(backend, k, scoring)
