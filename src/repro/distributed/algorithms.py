"""Coordinator-side drivers for distributed TA, BPA and BPA2.

Each driver builds one :class:`ListOwnerNode` per list, wires them to a
:class:`SimulatedNetwork`, and runs the query from the originator.  The
returned :class:`TopKResult` carries the usual access tally (summed over
the owners) plus ``extras["network"]`` with message/byte counters.

The communication patterns mirror the paper's discussion:

* TA / BPA: every access is one request/response round trip; BPA
  responses additionally carry positions (bigger messages — the overhead
  BPA2 removes);
* BPA2: same round-trip count per access, but positions never travel and
  the owners piggyback best-position scores only when they change.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.algorithms.base import TopKBuffer
from repro.core.best_position import make_tracker
from repro.distributed.network import SimulatedNetwork
from repro.distributed.nodes import ListOwnerNode
from repro.errors import InvalidQueryError
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction
from repro.types import AccessTally, ItemId, Score, TopKResult


class _DistributedDriver(ABC):
    """Shared plumbing: node setup, result packaging."""

    name: str = "distributed"
    include_position: bool = False

    def __init__(self, *, tracker: str = "bitarray") -> None:
        self._tracker_kind = tracker

    def run(
        self, database: Database, k: int, scoring: ScoringFunction = SUM
    ) -> TopKResult:
        """Execute the query over a fresh simulated deployment."""
        if not 1 <= k <= database.n:
            raise InvalidQueryError(f"k must be in 1..{database.n}, got {k}")
        network = SimulatedNetwork()
        owners = [
            ListOwnerNode(
                sorted_list,
                tracker=self._tracker_kind,
                include_position=self.include_position,
            )
            for sorted_list in database.lists
        ]
        for index, owner in enumerate(owners):
            network.register(f"owner/{index}", owner)
        items, rounds, stop_position = self._drive(network, owners, k, scoring)
        tally = AccessTally()
        for owner in owners:
            tally = tally + owner.accessor.tally
        return TopKResult(
            items=items,
            tally=tally,
            rounds=rounds,
            stop_position=stop_position,
            algorithm=self.name,
            extras={"network": network.stats.snapshot()},
        )

    @abstractmethod
    def _drive(self, network, owners, k, scoring):
        """Run the coordinator logic; returns (items, rounds, stop_pos)."""


class DistributedTA(_DistributedDriver):
    """TA over the network: one round trip per access."""

    name = "dist-ta"
    include_position = False

    def _drive(self, network, owners, k, scoring):
        m = len(owners)
        n = len(owners[0].accessor)
        buffer = TopKBuffer(k)
        overall: dict[ItemId, Score] = {}
        last_scores: list[Score] = [0.0] * m
        position = 0
        while True:
            position += 1
            for index in range(m):
                response = network.request(f"owner/{index}", "sorted_next")
                item = response["item"]
                last_scores[index] = response["score"]
                if item in overall:
                    # Paper accounting: the probes repeat (Lemma 2).
                    for other in range(m):
                        if other != index:
                            network.request(
                                f"owner/{other}", "random_lookup", {"item": item}
                            )
                    continue
                local = [0.0] * m
                local[index] = response["score"]
                for other in range(m):
                    if other != index:
                        reply = network.request(
                            f"owner/{other}", "random_lookup", {"item": item}
                        )
                        local[other] = reply["score"]
                total = scoring(local)
                overall[item] = total
                buffer.add(item, total)
            if buffer.all_at_least(scoring(last_scores)) or position >= n:
                return buffer.ranked(), position, position


class DistributedBPA(_DistributedDriver):
    """BPA over the network: positions travel to the originator.

    The originator maintains the seen positions and their scores (the
    state BPA2 later pushes down to the owners).
    """

    name = "dist-bpa"
    include_position = True

    def _drive(self, network, owners, k, scoring):
        m = len(owners)
        n = len(owners[0].accessor)
        buffer = TopKBuffer(k)
        overall: dict[ItemId, Score] = {}
        trackers = [make_tracker(self._tracker_kind, n) for _ in range(m)]
        seen_scores: list[dict[int, Score]] = [{} for _ in range(m)]
        position = 0

        def note(list_index: int, pos: int, score: Score) -> None:
            trackers[list_index].mark(pos)
            seen_scores[list_index][pos] = score

        while True:
            position += 1
            for index in range(m):
                response = network.request(f"owner/{index}", "sorted_next")
                item = response["item"]
                note(index, response["position"], response["score"])
                if item in overall:
                    for other in range(m):
                        if other != index:
                            reply = network.request(
                                f"owner/{other}", "random_lookup", {"item": item}
                            )
                            note(other, reply["position"], reply["score"])
                    continue
                local = [0.0] * m
                local[index] = response["score"]
                for other in range(m):
                    if other != index:
                        reply = network.request(
                            f"owner/{other}", "random_lookup", {"item": item}
                        )
                        local[other] = reply["score"]
                        note(other, reply["position"], reply["score"])
                total = scoring(local)
                overall[item] = total
                buffer.add(item, total)
            lam = scoring(
                [seen_scores[i][trackers[i].best_position] for i in range(m)]
            )
            if buffer.all_at_least(lam) or position >= n:
                return buffer.ranked(), position, position


class DistributedBPA2(_DistributedDriver):
    """BPA2 over the network: owners keep the best positions.

    The originator state is exactly what the paper allows it: the set
    ``Y`` and the ``m`` best-position local scores, refreshed from the
    ``bp_score`` piggybacks.
    """

    name = "dist-bpa2"
    include_position = False

    def _drive(self, network, owners, k, scoring):
        m = len(owners)
        buffer = TopKBuffer(k)
        overall: dict[ItemId, Score] = {}
        bp_scores: list[Score] = [float("inf")] * m
        exhausted = [False] * m
        rounds = 0

        while True:
            rounds += 1
            progressed = False
            for index in range(m):
                if exhausted[index]:
                    continue
                response = network.request(f"owner/{index}", "direct_next")
                if response.get("exhausted"):
                    exhausted[index] = True
                    continue
                progressed = True
                if "bp_score" in response:
                    bp_scores[index] = response["bp_score"]
                item = response["item"]
                if item in overall:
                    continue  # cannot happen (Theorem 5); kept for safety
                local = [0.0] * m
                local[index] = response["score"]
                for other in range(m):
                    if other != index:
                        reply = network.request(
                            f"owner/{other}", "random_lookup", {"item": item}
                        )
                        local[other] = reply["score"]
                        if "bp_score" in reply:
                            bp_scores[other] = reply["bp_score"]
                total = scoring(local)
                overall[item] = total
                buffer.add(item, total)
            if buffer.all_at_least(scoring(bp_scores)):
                break
            if not progressed:
                break
        stop_position = max(owner.best_position for owner in owners)
        return buffer.ranked(), rounds, stop_position
