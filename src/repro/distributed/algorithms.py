"""Coordinator-side drivers for distributed TA, BPA and BPA2.

Since the unified execution core (:mod:`repro.exec`) these classes are
thin transport wrappers: the algorithm logic lives once in
:mod:`repro.exec.drivers`, and each driver here chooses how the
primitives are served —

* ``transport="simulated"`` (default): one :class:`ListOwnerNode` per
  list behind a :class:`SimulatedNetwork`, with per-round message/byte
  accounting in ``extras["network"]``.  ``protocol="entry"`` is the
  paper's per-entry RPC (one round trip per access);
  ``protocol="batch"`` coalesces a round's lookups per owner into
  single messages (identical owner-side operations, fewer and smaller
  messages — see :mod:`repro.distributed.bench` for the measured
  saving);
* ``transport="local"``: the same driver over
  :class:`repro.exec.LocalColumnarBackend` — no network at all, flat
  columnar arrays, which is how the differential suite proves the
  drivers bit-identical to the reference single-node algorithms.

The communication patterns mirror the paper's discussion: TA/BPA pay
one round trip per access and BPA responses additionally carry
positions (the overhead BPA2 removes); BPA2's owners keep the best
positions and piggyback best-position scores only when they change.
"""

from __future__ import annotations

from repro.distributed.transport import NetworkBackend
from repro.errors import InvalidQueryError
from repro.exec.backend import LocalColumnarBackend
from repro.exec.drivers import DriverOutcome, run_bpa, run_bpa2, run_ta
from repro.lists.accessor import DatabaseLike
from repro.scoring import SUM, ScoringFunction
from repro.types import TopKResult

TRANSPORTS = ("simulated", "local")


class _DistributedDriver:
    """Shared plumbing: backend setup, result packaging."""

    name: str = "distributed"
    include_position: bool = False

    def __init__(
        self,
        *,
        tracker: str = "bitarray",
        protocol: str = "entry",
        transport: str = "simulated",
    ) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        self._tracker_kind = tracker
        self._protocol = protocol
        self._transport = transport

    def run(
        self, database: DatabaseLike, k: int, scoring: ScoringFunction = SUM
    ) -> TopKResult:
        """Execute the query over a fresh deployment of the transport."""
        if not 1 <= k <= database.n:
            raise InvalidQueryError(f"k must be in 1..{database.n}, got {k}")
        if self._transport == "local":
            backend = LocalColumnarBackend(
                database, include_position=self.include_position
            )
            extras = {}
        else:
            backend = NetworkBackend(
                database,
                tracker=self._tracker_kind,
                include_position=self.include_position,
                protocol=self._protocol,
            )
            extras = None  # filled after the run, once stats are final
        outcome = self._drive(backend, k, scoring)
        if extras is None:
            extras = {
                "network": backend.network.stats.snapshot(),
                "protocol": self._protocol,
            }
        return TopKResult(
            items=outcome.items,
            tally=backend.total_tally(),
            rounds=outcome.rounds,
            stop_position=outcome.stop_position,
            algorithm=self.name,
            extras=extras,
        )

    def _drive(self, backend, k, scoring) -> DriverOutcome:
        raise NotImplementedError


class DistributedTA(_DistributedDriver):
    """TA over the chosen transport: one round trip per access."""

    name = "dist-ta"
    include_position = False

    def _drive(self, backend, k, scoring):
        return run_ta(backend, k, scoring)


class DistributedBPA(_DistributedDriver):
    """BPA over the chosen transport: positions travel to the originator.

    The originator maintains the seen positions and their scores (the
    state BPA2 later pushes down to the owners).
    """

    name = "dist-bpa"
    include_position = True

    def _drive(self, backend, k, scoring):
        return run_bpa(backend, k, scoring, tracker=self._tracker_kind)


class DistributedBPA2(_DistributedDriver):
    """BPA2 over the chosen transport: owners keep the best positions.

    The originator state is exactly what the paper allows it: the set
    ``Y`` and the ``m`` best-position local scores, refreshed from the
    ``bp_score`` piggybacks.
    """

    name = "dist-bpa2"
    include_position = False

    def _drive(self, backend, k, scoring):
        return run_bpa2(backend, k, scoring)
