"""The simulated network as an :class:`repro.exec.ExecutionBackend`.

This is the piece that makes the distributed stack "just another
transport": the unified drivers in :mod:`repro.exec.drivers` call the
backend primitives, and this module turns each primitive into messages
against :class:`ListOwnerNode` owners over a :class:`SimulatedNetwork`.

Two wire protocols are supported:

* ``"entry"`` — the original per-entry RPC: every access is one
  request/response round trip (``messages == 2 * accesses``), matching
  the paper's message-count argument;
* ``"batch"`` — a round's random lookups to one owner travel in a
  single ``random_lookup_many`` message, and BPA2's per-list step
  (pending lookups + direct access) is one ``direct_step`` message.
  Owner-side *operations* are identical entry for entry — same metered
  accesses, same best-position walks, same piggyback points — so
  results and tallies are unchanged while messages and bytes drop;
  ``repro.distributed.bench`` measures the saving.

Best-position scores reach the originator only through the owners'
piggybacked ``bp_score`` fields, exactly as the paper allows BPA2's
coordinator to know them.
"""

from __future__ import annotations

from typing import Sequence

from repro.columnar import ColumnarDatabase
from repro.distributed.network import SimulatedNetwork
from repro.distributed.nodes import ListOwnerNode
from repro.exec.backend import DirectStep, ExecutionBackend
from repro.lists.accessor import DatabaseLike
from repro.types import AccessTally, ItemId, Position, Score

_INF = float("inf")

PROTOCOLS = ("entry", "batch")


class NetworkBackend(ExecutionBackend):
    """Backend whose sources are list owners across a simulated network.

    Args:
        database: any :class:`~repro.lists.accessor.DatabaseLike`; each
            list becomes one :class:`ListOwnerNode` (columnar lists are
            served natively — the owners run the same vectorized
            storage the service uses).
        tracker: best-position structure kind at the owners.
        include_position: ship positions in lookup responses (BPA).
        protocol: ``"entry"`` or ``"batch"`` (see module docstring).
        network: an existing fabric to attach to (a fresh one when
            ``None``); owners register under ``owner/<index>``.
    """

    def __init__(
        self,
        database: DatabaseLike,
        *,
        tracker: str = "bitarray",
        include_position: bool = False,
        protocol: str = "entry",
        network: SimulatedNetwork | None = None,
    ) -> None:
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}"
            )
        self.m = database.m
        self.n = database.n
        self.include_position = include_position
        self.protocol = protocol
        self.network = network or SimulatedNetwork()
        self.owners = [
            ListOwnerNode(
                sorted_list, tracker=tracker, include_position=include_position
            )
            for sorted_list in database.lists
        ]
        self._addresses = [f"owner/{index}" for index in range(self.m)]
        for address, owner in zip(self._addresses, self.owners):
            self.network.register(address, owner)
        self._bp_scores: list[Score] = [_INF] * self.m

    @classmethod
    def for_columnar(cls, database, **kwargs) -> "NetworkBackend":
        """Owners over columnar lists (converting if necessary)."""
        if not isinstance(database, ColumnarDatabase):
            database = ColumnarDatabase.from_database(database)
        return cls(database, **kwargs)

    # ------------------------------------------------------------------
    # ExecutionBackend primitives
    # ------------------------------------------------------------------

    def begin_round(self) -> None:
        self.network.stats.begin_round()

    def _absorb(self, list_index: int, response: dict) -> dict:
        bp_score = response.get("bp_score")
        if bp_score is not None:
            self._bp_scores[list_index] = bp_score
        return response

    def sorted_next(self, i: int) -> tuple[ItemId, Score, Position]:
        response = self._absorb(
            i, self.network.request(self._addresses[i], "sorted_next")
        )
        # The sorted cursor equals the position even when the wire omits
        # it (include_position=False); the owner's accessor tracks it.
        position = response.get(
            "position", self.owners[i].accessor.last_sorted_position
        )
        return response["item"], response["score"], position

    def random_lookup_many(
        self, i: int, items: Sequence[ItemId]
    ) -> list[tuple[Score, Position]]:
        if not items:
            return []
        address = self._addresses[i]
        if self.protocol == "entry":
            results: list[tuple[Score, Position]] = []
            for item in items:
                response = self._absorb(
                    i,
                    self.network.request(
                        address, "random_lookup", {"item": item}
                    ),
                )
                results.append(
                    (response["score"], response.get("position", 0))
                )
            return results
        response = self._absorb(
            i,
            self.network.request(
                address, "random_lookup_many", {"items": list(items)}
            ),
        )
        positions = response.get("positions", [0] * len(items))
        return list(zip(response["scores"], positions))

    def direct_step(self, i: int, items: Sequence[ItemId]) -> DirectStep:
        address = self._addresses[i]
        if self.protocol == "entry":
            lookups = [
                score for score, _pos in self.random_lookup_many(i, items)
            ]
            response = self._absorb(
                i, self.network.request(address, "direct_next")
            )
            if response.get("exhausted"):
                return lookups, None
            return lookups, (response["item"], response["score"])
        response = self._absorb(
            i,
            self.network.request(address, "direct_step", {"items": list(items)}),
        )
        lookups = list(response["scores"])
        if response.get("exhausted"):
            return lookups, None
        return lookups, (response["item"], response["score"])

    def best_position_scores(self) -> list[Score]:
        return list(self._bp_scores)

    def best_positions(self) -> list[Position]:
        return [owner.best_position for owner in self.owners]

    def total_tally(self) -> AccessTally:
        tally = AccessTally()
        for owner in self.owners:
            tally = tally + owner.accessor.tally
        return tally
