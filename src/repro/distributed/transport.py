"""Networked fabrics as an :class:`repro.exec.ExecutionBackend`.

This is the piece that makes the distributed stack "just another
transport": the unified round-plan drivers in :mod:`repro.exec.drivers`
emit plans, and this module turns each op into messages against
:class:`ListOwnerNode` owners — in-process over a
:class:`SimulatedNetwork`, or in separate OS processes over the framed
TCP fabric of :mod:`repro.distributed.socket_transport` (both satisfy
the same :class:`Fabric` interface).

Three wire protocols are supported:

* ``"entry"`` — the original per-entry RPC: every access is one
  request/response round trip (``messages == 2 * accesses``), matching
  the paper's message-count argument;
* ``"batch"`` — a round's random lookups to one owner travel in a
  single ``random_lookup_many`` message, a sorted block in one
  ``sorted_block`` message, and BPA2's per-list step (pending lookups +
  direct accesses) is one ``direct_step`` / ``direct_block`` message.
  Owner-side *operations* are identical entry for entry — same metered
  accesses, same best-position walks, same piggyback points — so
  results and tallies are unchanged while messages and bytes drop;
* ``"pipelined"`` — the batched protocol's messages, dispatched as
  overlapped waves: all of a round plan's requests go on the wire
  before any response is read (plans are dependency-free by
  construction, one op per list).  Message and byte counts are
  *identical* to ``"batch"``; on a real socket fabric the sequential
  round trips collapse into one, which ``repro dist-bench`` measures
  as wall-clock per query.

Best-position scores reach the originator only through the owners'
piggybacked ``bp_score`` fields, exactly as the paper allows BPA2's
coordinator to know them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.columnar import ColumnarDatabase
from repro.distributed.daemon import OwnerDaemon
from repro.distributed.network import NetworkStats, SimulatedNetwork
from repro.distributed.nodes import ListOwnerNode
from repro.distributed.placement import ClusterPlacement
from repro.exec.backend import DirectStep, ExecutionBackend
from repro.exec.plan import (
    DirectBlock,
    DirectResult,
    Op,
    OpResult,
    ProbeBatch,
    ProbeResult,
    RoundPlan,
    SortedFetch,
    SortedResult,
    group_ops_by_owner,
)
from repro.lists.accessor import DatabaseLike
from repro.types import AccessTally, ItemId, Position, Score

_INF = float("inf")

PROTOCOLS = ("entry", "batch", "pipelined")


class Fabric(Protocol):
    """What a network backend needs from a message fabric."""

    stats: NetworkStats

    def request(self, address: str, kind: str, payload: dict | None = None) -> dict:
        """One blocking request/response round trip."""
        ...

    def request_many(
        self, requests: Sequence[tuple[str, str, dict | None]]
    ) -> list[dict]:
        """A dependency-free batch (overlapped where the fabric can)."""
        ...


class NetworkBackend(ExecutionBackend):
    """Backend whose sources are list owners across a network fabric.

    Args:
        database: any :class:`~repro.lists.accessor.DatabaseLike`; each
            list becomes one in-process :class:`ListOwnerNode` (columnar
            lists are served natively — the owners run the same
            vectorized storage the service uses).  For owners living in
            other processes, use :meth:`remote` instead.
        tracker: best-position structure kind at the owners.
        include_position: ship positions in lookup responses (BPA).
        protocol: ``"entry"``, ``"batch"`` or ``"pipelined"`` (see
            module docstring).
        network: an existing fabric to attach to (a fresh
            :class:`SimulatedNetwork` when ``None``); owners register
            under ``owner/<index>``.
        placement: a :class:`ClusterPlacement` assigning lists to owner
            processes.  ``None`` keeps the legacy one-node-per-list
            layout; with a placement, each owner group is hosted by one
            :class:`OwnerDaemon` registered under ``owner/<owner>``,
            requests to multi-list owners carry a ``"list"`` routing
            field, and batch/pipelined round waves coalesce into one
            frame per owner (see :meth:`execute_plan`).
        columnar: owner node selection with a placement — ``"auto"``
            (vectorized when the source supports it), ``"entry"`` or
            ``"columnar"``.
    """

    def __init__(
        self,
        database: DatabaseLike,
        *,
        tracker: str = "bitarray",
        include_position: bool = False,
        protocol: str = "entry",
        network: SimulatedNetwork | None = None,
        placement: ClusterPlacement | None = None,
        columnar: str = "auto",
    ) -> None:
        self._init_common(
            m=database.m,
            n=database.n,
            include_position=include_position,
            protocol=protocol,
            placement=placement,
        )
        self.network: Fabric = network or SimulatedNetwork()
        if placement is None:
            self.owners = [
                ListOwnerNode(
                    sorted_list,
                    tracker=tracker,
                    include_position=include_position,
                )
                for sorted_list in database.lists
            ]
            for address, owner in zip(self._addresses, self.owners):
                self.network.register(address, owner)
            return
        nodes_by_list: dict[int, ListOwnerNode] = {}
        self.daemons: list[OwnerDaemon] = []
        for owner, group in enumerate(placement.groups):
            daemon = OwnerDaemon(
                [database.lists[index] for index in group],
                list_indices=group,
                tracker=tracker,
                include_position=include_position,
                columnar=columnar,
            )
            self.network.register(f"owner/{owner}", daemon)
            self.daemons.append(daemon)
            for index in group:
                nodes_by_list[index] = daemon.node_for(index)
        self.owners = [nodes_by_list[index] for index in range(self.m)]

    @classmethod
    def remote(
        cls,
        fabric: Fabric,
        *,
        m: int,
        n: int,
        include_position: bool = False,
        protocol: str = "batch",
        placement: ClusterPlacement | None = None,
    ) -> "NetworkBackend":
        """A backend over owners the fabric already reaches (e.g. the
        socket cluster's processes); end-of-query state is read through
        ``state`` requests instead of object peeks.  Pass the cluster's
        placement so requests route to the owner hosting each list."""
        backend = cls.__new__(cls)
        backend._init_common(
            m=m,
            n=n,
            include_position=include_position,
            protocol=protocol,
            placement=placement,
        )
        backend.network = fabric
        backend.owners = None
        return backend

    def _init_common(
        self,
        *,
        m: int,
        n: int,
        include_position: bool,
        protocol: str,
        placement: ClusterPlacement | None = None,
    ) -> None:
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}"
            )
        if placement is not None and placement.m != m:
            raise ValueError(
                f"placement covers {placement.m} lists, database has {m}"
            )
        self.m = m
        self.n = n
        self.include_position = include_position
        self.protocol = protocol
        self.placement = placement
        self.owners: list[ListOwnerNode] | None = None
        if placement is None:
            self._addresses = [f"owner/{index}" for index in range(m)]
            # No routing fields, no coalescing: one owner per list.
            self._needs_list = [False] * m
            self._coalesce = False
        else:
            self._addresses = [
                f"owner/{placement.owner_of[index]}" for index in range(m)
            ]
            sizes = [len(group) for group in placement.groups]
            # Single-list owners default the routing; omitting the field
            # keeps their frames byte-identical to the legacy cluster.
            self._needs_list = [
                sizes[placement.owner_of[index]] > 1 for index in range(m)
            ]
            self._coalesce = placement.max_group > 1
        self._bp_scores: list[Score] = [_INF] * m
        #: client-side sorted cursors (the sorted position is derivable
        #: even when the wire omits it, include_position=False).
        self._cursors = [0] * m
        self._states: list[dict] | None = None

    def _routed(self, i: int, payload: dict | None = None) -> dict | None:
        """Attach the ``"list"`` routing field for multi-list owners."""
        if self._needs_list[i]:
            payload = dict(payload or {})
            payload["list"] = i
        return payload

    @classmethod
    def for_columnar(cls, database, **kwargs) -> "NetworkBackend":
        """Owners over columnar lists (converting if necessary)."""
        if not isinstance(database, ColumnarDatabase):
            database = ColumnarDatabase.from_database(database)
        return cls(database, **kwargs)

    # ------------------------------------------------------------------
    # ExecutionBackend primitives
    # ------------------------------------------------------------------

    def begin_round(self) -> None:
        self.network.stats.begin_round()

    def _absorb(self, list_index: int, response: dict) -> dict:
        bp_score = response.get("bp_score")
        if bp_score is not None:
            self._bp_scores[list_index] = bp_score
        return response

    def sorted_next(self, i: int) -> tuple[ItemId, Score, Position]:
        response = self._absorb(
            i,
            self.network.request(
                self._addresses[i], "sorted_next", self._routed(i)
            ),
        )
        self._cursors[i] += 1
        # The sorted cursor equals the position even when the wire omits
        # it (include_position=False).
        position = response.get("position", self._cursors[i])
        return response["item"], response["score"], position

    def sorted_block(self, i: int, count: int):
        if self.protocol == "entry":
            return [self.sorted_next(i) for _ in range(count)]
        response = self._absorb(
            i,
            self.network.request(
                self._addresses[i],
                "sorted_block",
                self._routed(i, {"count": count}),
            ),
        )
        return self._sorted_block_entries(i, response)

    def _sorted_block_entries(self, i: int, response: dict):
        items, scores = response["items"], response["scores"]
        start = self._cursors[i]
        self._cursors[i] = start + len(items)
        positions = response.get(
            "positions", range(start + 1, start + len(items) + 1)
        )
        return list(zip(items, scores, positions))

    def random_lookup_many(
        self, i: int, items: Sequence[ItemId]
    ) -> list[tuple[Score, Position]]:
        if not items:
            return []
        address = self._addresses[i]
        if self.protocol == "entry":
            results: list[tuple[Score, Position]] = []
            for item in items:
                response = self._absorb(
                    i,
                    self.network.request(
                        address, "random_lookup", self._routed(i, {"item": item})
                    ),
                )
                results.append(
                    (response["score"], response.get("position", 0))
                )
            return results
        response = self._absorb(
            i,
            self.network.request(
                address,
                "random_lookup_many",
                self._routed(i, {"items": list(items)}),
            ),
        )
        return self._lookup_pairs(response, len(items))

    @staticmethod
    def _lookup_pairs(response: dict, count: int):
        positions = response.get("positions", [0] * count)
        return list(zip(response["scores"], positions))

    def direct_step(self, i: int, items: Sequence[ItemId]) -> DirectStep:
        address = self._addresses[i]
        if self.protocol == "entry":
            lookups = [
                score for score, _pos in self.random_lookup_many(i, items)
            ]
            response = self._absorb(
                i, self.network.request(address, "direct_next", self._routed(i))
            )
            if response.get("exhausted"):
                return lookups, None
            return lookups, (response["item"], response["score"])
        response = self._absorb(
            i,
            self.network.request(
                address, "direct_step", self._routed(i, {"items": list(items)})
            ),
        )
        lookups = list(response["scores"])
        if response.get("exhausted"):
            return lookups, None
        return lookups, (response["item"], response["score"])

    def direct_block(
        self, i: int, items: Sequence[ItemId], count: int
    ) -> DirectResult:
        if self.protocol == "entry":
            # Per-entry RPC: each pending lookup and each direct access
            # is its own round trip.  Exhaustion mid-block surfaces as a
            # (free) ``exhausted`` response; after a full block it stays
            # unknown until the next round's first step — the owner-side
            # operations are identical either way.
            return super().direct_block(i, items, count)
        response = self._absorb(
            i,
            self.network.request(
                self._addresses[i],
                "direct_block",
                self._routed(i, {"items": list(items), "count": count}),
            ),
        )
        return self._direct_result_from_block(response)

    @staticmethod
    def _direct_result_from_step(response: dict) -> DirectResult:
        """Parse a ``direct_step`` response (single direct access)."""
        lookups = tuple(response["scores"])
        if response.get("exhausted"):
            return DirectResult(lookups, (), True)
        return DirectResult(
            lookups, ((response["item"], response["score"]),), False
        )

    @staticmethod
    def _direct_result_from_block(response: dict) -> DirectResult:
        """Parse a ``direct_block`` response (up to ``count`` accesses)."""
        return DirectResult(
            tuple(response["scores"]),
            tuple((item, score) for item, score in response["entries"]),
            bool(response.get("exhausted")),
        )

    # ------------------------------------------------------------------
    # Round-plan execution (the pipelined protocol lives here)
    # ------------------------------------------------------------------

    def execute_plan(self, plan: RoundPlan) -> list[OpResult]:
        if plan.new_round:
            self.begin_round()
        if self._coalesce and self.protocol != "entry" and len(plan.ops) >= 2:
            return self._execute_coalesced(plan)
        if self.protocol != "pipelined" or len(plan.ops) < 2:
            return [self.execute_op(op) for op in plan.ops]
        responses = self.network.request_many(
            [self._op_request(op) for op in plan.ops]
        )
        return [
            self._op_absorb(op, response)
            for op, response in zip(plan.ops, responses)
        ]

    def _execute_coalesced(self, plan: RoundPlan) -> list[OpResult]:
        """One frame per *owner*: a wave's ops for co-hosted lists travel
        together as a ``multi`` frame (owners with a single op of the
        wave get the plain op frame, keeping per-kind accounting stable).
        Batch sends the owner frames as sequential round trips, pipelined
        as one overlapped wave — either way the frame count per wave is
        the owner count, not the list count.
        """
        groups = group_ops_by_owner(plan.ops, self.placement.owner_of)
        requests: list[tuple[list[Op], tuple[str, str, dict | None]]] = []
        for owner, ops in groups.items():
            if len(ops) == 1:
                requests.append((ops, self._op_request(ops[0])))
                continue
            sub_ops = []
            for op in ops:
                _address, kind, payload = self._op_request(op)
                sub_ops.append({"kind": kind, "payload": payload or {}})
            requests.append((ops, (f"owner/{owner}", "multi", {"ops": sub_ops})))
        if self.protocol == "pipelined" and len(requests) >= 2:
            responses = self.network.request_many(
                [request for _ops, request in requests]
            )
        else:
            responses = [
                self.network.request(*request) for _ops, request in requests
            ]
        by_list: dict[int, OpResult] = {}
        for (ops, _request), response in zip(requests, responses):
            if len(ops) == 1:
                by_list[ops[0].list_index] = self._op_absorb(ops[0], response)
            else:
                for op, sub_response in zip(ops, response["results"]):
                    by_list[op.list_index] = self._op_absorb(op, sub_response)
        return [by_list[op.list_index] for op in plan.ops]

    def _op_request(self, op: Op) -> tuple[str, str, dict | None]:
        """The batched-protocol wire message for one op."""
        i = op.list_index
        address = self._addresses[i]
        if isinstance(op, SortedFetch):
            if op.count == 1:
                return address, "sorted_next", self._routed(i)
            return address, "sorted_block", self._routed(i, {"count": op.count})
        if isinstance(op, ProbeBatch):
            return (
                address,
                "random_lookup_many",
                self._routed(i, {"items": list(op.items)}),
            )
        if isinstance(op, DirectBlock):
            if op.count == 1:
                return (
                    address,
                    "direct_step",
                    self._routed(i, {"items": list(op.items)}),
                )
            return (
                address,
                "direct_block",
                self._routed(i, {"items": list(op.items), "count": op.count}),
            )
        raise TypeError(f"unknown op type: {type(op).__name__}")

    def _op_absorb(self, op: Op, response: dict) -> OpResult:
        """Parse one op's response (mirrors the sequential paths)."""
        i = op.list_index
        self._absorb(i, response)
        if isinstance(op, SortedFetch):
            if op.count == 1:
                self._cursors[i] += 1
                position = response.get("position", self._cursors[i])
                return SortedResult(
                    ((response["item"], response["score"], position),)
                )
            return SortedResult(
                tuple(self._sorted_block_entries(i, response))
            )
        if isinstance(op, ProbeBatch):
            return ProbeResult(
                tuple(self._lookup_pairs(response, len(op.items)))
            )
        if op.count == 1:
            return self._direct_result_from_step(response)
        return self._direct_result_from_block(response)

    # ------------------------------------------------------------------
    # End-of-query state
    # ------------------------------------------------------------------

    def _fetch_states(self) -> list[dict]:
        if self._states is None:
            self._states = self.network.request_many(
                [
                    (self._addresses[i], "state", self._routed(i))
                    for i in range(self.m)
                ]
            )
        return self._states

    def best_position_scores(self) -> list[Score]:
        return list(self._bp_scores)

    def best_positions(self) -> list[Position]:
        if self.owners is not None:
            return [owner.best_position for owner in self.owners]
        return [state["best_position"] for state in self._fetch_states()]

    def total_tally(self) -> AccessTally:
        if self.owners is not None:
            tally = AccessTally()
            for owner in self.owners:
                tally = tally + owner.accessor.tally
            return tally
        tally = AccessTally()
        for state in self._fetch_states():
            tally = tally + AccessTally(
                sorted=state["sorted"],
                random=state["random"],
                direct=state["direct"],
            )
        return tally
