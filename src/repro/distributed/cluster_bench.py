"""The multi-tenant cluster benchmark behind ``repro cluster bench``.

Measures the three claims the multi-tenant transport makes
(:mod:`repro.distributed.placement` / :mod:`repro.distributed.daemon`):

* **Per-owner frame coalescing.**  The same query runs with one owner
  process per list (the legacy layout) and with the lists co-located on
  2 and on 1 owners.  Every configuration must be item- **and**
  tally-identical to the reference single-node algorithm — the benchmark
  raises otherwise — and the report records the frame/byte reduction
  co-location buys.  Full-fan-out rounds (TA/BPA sorted+probe waves,
  every block variant) coalesce by exactly ``m / owners``; classic BPA2
  coalesces only its probe waves (its direct steps advance one list per
  frame by design), which the summary calls out rather than hides.
* **Wall-clock.**  Over the real socket transport, each configuration
  runs ``repeats`` times on a warm cluster (best time kept): fewer
  frames means fewer syscall round trips, so the co-located cluster
  should also be faster end to end.
* **Columnar serving path.**  An in-process ``sorted_block`` drain of
  one list through :class:`~repro.distributed.nodes.ColumnarOwnerNode`
  (vectorized slices) versus the per-entry reference node — identical
  responses required, the speedup reported.

``repro cluster bench`` lands the JSON at
``reports/cluster_speedup.json`` (the CI ``cluster-smoke`` artifact);
:func:`hammer_cluster` is the client side of ``serve-workload
--cluster-spec``, hammering a cluster spawned by another process.
"""

from __future__ import annotations

import os
import time

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen.base import make_generator
from repro.distributed.algorithms import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
)
from repro.distributed.bench import _run_over_socket
from repro.distributed.daemon import OwnerDaemon
from repro.distributed.placement import ClusterPlacement
from repro.distributed.socket_transport import SocketCluster, connect_ports
from repro.distributed.transport import NetworkBackend
from repro.exec.drivers import DRIVERS as _ENGINE_DRIVERS
from repro.scoring import SUM

_DRIVERS = (("ta", DistributedTA), ("bpa", DistributedBPA), ("bpa2", DistributedBPA2))

#: Labels whose rounds fan out over every list (so per-owner coalescing
#: compresses them by the full ``m / owners``).  Classic BPA2 is the
#: deliberate exception: its direct phase advances one list per frame.
def _full_fanout(label: str) -> bool:
    return label != "bpa2"


def _reference_for(database, name: str, width: int, k: int):
    if width == 1:
        return get_algorithm(name).run(database, k, SUM)
    return get_algorithm(f"{name}-block", width=width).run(database, k, SUM)


def coalescing_benchmark(
    *,
    n: int = 2_000,
    m: int = 4,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
    block_width: int = 8,
    owner_counts: tuple[int, ...] = (0, 2, 1),
) -> dict:
    """Simulated-network frame counts per owner count (batch protocol).

    ``owner_counts`` of ``0`` is the legacy one-owner-per-list layout
    (no routing fields, no coalescing) — the baseline every co-located
    configuration is compared against.  All runs are verified item- and
    tally-identical to the reference single-node algorithm.
    """
    database = make_generator(generator).generate(n, m, seed=seed)
    columnar = ColumnarDatabase.from_database(database)
    rows: dict[str, dict] = {}
    for name, cls in _DRIVERS:
        for width in dict.fromkeys((1, block_width)):
            label = name if width == 1 else f"{name}-block{width}"
            reference = _reference_for(database, name, width, k)
            cells: dict[str, dict] = {}
            for count in owner_counts:
                result = cls(
                    protocol="batch",
                    block_width=width,
                    owners=count if count else None,
                ).run(columnar, k, SUM)
                if (
                    result.items != reference.items
                    or result.tally != reference.tally
                    or result.rounds != reference.rounds
                ):
                    raise AssertionError(
                        f"{label}/owners={count or m} diverges from the "
                        "reference — this is a bug"
                    )
                net = result.extras["network"]
                cells[str(count if count else m)] = {
                    "messages": net["messages"],
                    "bytes": net["bytes"],
                    "rounds": net["rounds"],
                }
            row: dict = {
                "accesses": reference.tally.total,
                "results_identical_to_reference": True,
                "full_fanout_rounds": _full_fanout(label),
                "owners": cells,
            }
            baseline = cells.get(str(m))
            for count in owner_counts:
                cell = cells.get(str(count))
                if count and count != m and baseline and cell:
                    row[f"frames_reduction_{count}_owners"] = (
                        baseline["messages"] / cell["messages"]
                        if cell["messages"]
                        else 0.0
                    )
                    row[f"bytes_reduction_{count}_owners"] = (
                        1.0 - cell["bytes"] / baseline["bytes"]
                        if baseline["bytes"]
                        else 0.0
                    )
            rows[label] = row
    return {
        "config": {
            "n": n,
            "m": m,
            "k": k,
            "generator": generator,
            "seed": seed,
            "block_width": block_width,
            "protocol": "batch",
        },
        "drivers": rows,
    }


def socket_cluster_benchmark(
    *,
    n: int = 2_000,
    m: int = 4,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
    repeats: int = 3,
    block_width: int = 8,
    owner_counts: tuple[int, ...] = (0, 2, 1),
    protocols: tuple[str, ...] = ("batch", "pipelined"),
) -> dict:
    """Frames and wall-clock over real owner processes per owner count.

    One warm cluster per (owner count, position-shipping) pair serves
    every matching driver/width/protocol cell, so the measured seconds
    are queries, not process spawns.  Every run is verified item-,
    tally- and round-identical to the reference.
    """
    database = make_generator(generator).generate(n, m, seed=seed)
    columnar = ColumnarDatabase.from_database(database)
    references = {
        (name, width): _reference_for(database, name, width, k)
        for name, _cls in _DRIVERS
        for width in dict.fromkeys((1, block_width))
    }
    rows: dict[str, dict] = {}
    for count in owner_counts:
        for include_position, names in ((False, ("ta", "bpa2")), (True, ("bpa",))):
            with SocketCluster(
                columnar,
                owners=count if count else None,
                include_position=include_position,
            ) as cluster, cluster.connect() as fabric:
                owner_label = str(cluster.placement.owners)
                for name in names:
                    for width in dict.fromkeys((1, block_width)):
                        label = name if width == 1 else f"{name}-block{width}"
                        reference = references[(name, width)]
                        cells: dict[str, dict] = {}
                        for protocol in protocols:
                            best = None
                            for _ in range(max(1, repeats)):
                                outcome, tally, stats, seconds = _run_over_socket(
                                    cluster, fabric, name, protocol, k,
                                    block_width=width,
                                )
                                if (
                                    outcome.items != reference.items
                                    or tally != reference.tally
                                    or outcome.rounds != reference.rounds
                                ):
                                    raise AssertionError(
                                        f"{label}/owners={owner_label}/"
                                        f"{protocol} diverges from the "
                                        "reference — this is a bug"
                                    )
                                if best is None or seconds < best["seconds"]:
                                    best = {
                                        "seconds": seconds,
                                        "messages": stats.messages,
                                        "bytes": stats.bytes,
                                    }
                            cells[protocol] = best
                        row = rows.setdefault(
                            label,
                            {
                                "accesses": reference.tally.total,
                                "full_fanout_rounds": _full_fanout(label),
                                "owners": {},
                            },
                        )
                        row["owners"][owner_label] = cells
    # Derived: co-location wins versus the one-process-per-list baseline.
    for label, row in rows.items():
        baseline = row["owners"].get(str(m))
        for owner_label, cells in row["owners"].items():
            if owner_label == str(m) or not baseline:
                continue
            for protocol in protocols:
                base, cell = baseline.get(protocol), cells.get(protocol)
                if not base or not cell:
                    continue
                key = f"{protocol}_{owner_label}_owners"
                row[f"frames_reduction_{key}"] = (
                    base["messages"] / cell["messages"]
                    if cell["messages"]
                    else 0.0
                )
                row[f"wall_speedup_{key}"] = (
                    base["seconds"] / cell["seconds"]
                    if cell["seconds"] > 0
                    else 0.0
                )
    return {
        "config": {
            "n": n,
            "m": m,
            "k": k,
            "generator": generator,
            "seed": seed,
            "repeats": repeats,
            "block_width": block_width,
            "protocols": list(protocols),
            "note": (
                "wall-clock per query on a warm cluster (best of repeats); "
                "co-location halves/quarters the frame round trips, so the "
                "wall win tracks per-frame syscall latency"
            ),
        },
        "drivers": rows,
    }


def columnar_microbenchmark(
    *,
    n: int = 20_000,
    count: int = 64,
    passes: int = 5,
    generator: str = "uniform",
    seed: int = 42,
) -> dict:
    """Drain one list via ``sorted_block``: columnar node vs per-entry.

    Both modes serve the identical op sequence through a fresh
    :class:`OwnerDaemon`; responses must match bit for bit (the modes
    differ only in how the block is materialized).  Best-of-``passes``
    seconds per mode, speedup = entry / columnar.
    """
    database = make_generator(generator).generate(n, 1, seed=seed)
    columnar = ColumnarDatabase.from_database(database)
    sorted_list = columnar.lists[0]
    timings: dict[str, float] = {}
    served: dict[str, list] = {}
    for mode in ("entry", "columnar"):
        daemon = OwnerDaemon([sorted_list], list_indices=[0], columnar=mode)
        best = None
        for _ in range(max(1, passes)):
            daemon.handle("reset", {})
            responses = []
            remaining = n
            started = time.perf_counter()
            while remaining > 0:
                responses.append(daemon.handle("sorted_block", {"count": count}))
                remaining -= count
            seconds = time.perf_counter() - started
            if best is None or seconds < best:
                best = seconds
        timings[mode] = best
        served[mode] = responses
    identical = served["entry"] == served["columnar"]
    if not identical:
        raise AssertionError(
            "columnar sorted_block serving diverges from the per-entry "
            "path — this is a bug"
        )
    return {
        "config": {
            "n": n,
            "block": count,
            "passes": passes,
            "generator": generator,
            "seed": seed,
        },
        "entry_seconds": timings["entry"],
        "columnar_seconds": timings["columnar"],
        "speedup": (
            timings["entry"] / timings["columnar"]
            if timings["columnar"] > 0
            else 0.0
        ),
        "responses_identical": True,
    }


def placement_rebalance_benchmark(
    *,
    n: int = 2_000,
    m: int = 6,
    k: int = 10,
    queries: int = 30,
    generator: str = "uniform",
    seed: int = 42,
    protocol: str = "batch",
) -> dict:
    """Feedback-driven placement: observed load mass vs a skewed layout.

    A deliberately skewed placement (one owner hosting ``m - 2`` lists,
    two owners one list each) serves a verified query mix; the per-owner
    daemons' ``per_list`` metrics are then fed to
    :func:`rebalance_placement`, and the proposal is measured under the
    same mix.  The gate is deterministic: the proposal's imbalance under
    the *observed* masses must not exceed the skewed layout's (strictly
    better whenever the skew showed up in the signal at all) — wall
    seconds are reported for color, not gated, since both layouts
    answer identically.
    """
    if m < 4:
        raise ValueError(f"rebalance benchmark needs m >= 4, got {m}")
    from repro.distributed.placement import (
        list_masses,
        placement_balance,
        rebalance_placement,
    )

    database = make_generator(generator).generate(n, m, seed=seed)
    columnar = ColumnarDatabase.from_database(database)
    reference = {
        kk: get_algorithm("ta").run(database, kk, SUM)
        for kk in dict.fromkeys((max(1, k // 2), k, min(n, 2 * k)))
    }
    ks = list(reference)

    def run_phase(placement: ClusterPlacement) -> tuple[dict, list[dict]]:
        backend = NetworkBackend(
            columnar, protocol=protocol, placement=placement
        )
        seconds = 0.0
        for query in range(max(1, queries)):
            kk = ks[query % len(ks)]
            for owner in range(placement.owners):
                backend.network.request(f"owner/{owner}", "reset")
            started = time.perf_counter()
            outcome = _ENGINE_DRIVERS["ta"](backend, kk, SUM)
            seconds += time.perf_counter() - started
            if outcome.items != reference[kk].items:
                raise AssertionError(
                    f"rebalance benchmark diverges from the reference at "
                    f"k={kk} — this is a bug"
                )
        documents = [daemon.metrics() for daemon in backend.daemons]
        return {
            "placement": placement.to_dict(),
            "seconds": seconds,
        }, documents

    skewed = ClusterPlacement(
        m=m,
        groups=(tuple(range(m - 2)), (m - 2,), (m - 1,)),
        strategy="skewed",
    )
    before, before_docs = run_phase(skewed)
    masses = list_masses(before_docs)
    proposal = rebalance_placement(before_docs)
    before["balance"] = placement_balance(skewed, masses)
    predicted = placement_balance(proposal, masses)
    after, after_docs = run_phase(proposal)
    after["balance"] = placement_balance(proposal, list_masses(after_docs))
    return {
        "config": {
            "n": n,
            "m": m,
            "ks": ks,
            "queries": queries,
            "generator": generator,
            "seed": seed,
            "protocol": protocol,
        },
        "skewed": before,
        "rebalanced": after,
        "proposed_groups": [list(group) for group in proposal.groups],
        "imbalance_before": before["balance"]["imbalance"],
        "imbalance_predicted": predicted["imbalance"],
        "imbalance_after": after["balance"]["imbalance"],
        "rebalance_improves_balance": (
            predicted["imbalance"] <= before["balance"]["imbalance"]
        ),
        "results_identical_to_reference": True,
    }


def cluster_speedup_benchmark(
    *,
    n: int = 2_000,
    m: int = 4,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
    repeats: int = 3,
    block_width: int = 8,
    micro_n: int = 20_000,
) -> dict:
    """The full ``reports/cluster_speedup.json`` payload.

    The summary's acceptance booleans gate on the full-fan-out rows
    (TA/BPA and every block variant): classic BPA2's direct phase is
    single-list per frame by design, so its (reported) reduction is a
    property of the algorithm, not a transport regression.
    """
    report: dict = {
        "benchmark": "cluster_speedup",
        "cpu_count": os.cpu_count(),
    }
    report["simulated"] = coalescing_benchmark(
        n=n, m=m, k=k, generator=generator, seed=seed, block_width=block_width
    )
    report["socket"] = socket_cluster_benchmark(
        n=n,
        m=m,
        k=k,
        generator=generator,
        seed=seed,
        repeats=repeats,
        block_width=block_width,
    )
    report["columnar_sorted_block"] = columnar_microbenchmark(
        n=micro_n, seed=seed, generator=generator
    )
    report["placement_rebalance"] = placement_rebalance_benchmark(
        n=n, m=max(4, m), k=k, generator=generator, seed=seed
    )
    fanout_rows = {
        label: row
        for label, row in report["socket"]["drivers"].items()
        if row["full_fanout_rounds"]
    }
    frame_reductions = {
        label: row.get("frames_reduction_batch_2_owners", 0.0)
        for label, row in fanout_rows.items()
    }
    wall_speedups = {
        label: max(
            row.get("wall_speedup_batch_2_owners", 0.0),
            row.get("wall_speedup_pipelined_2_owners", 0.0),
        )
        for label, row in fanout_rows.items()
    }
    micro = report["columnar_sorted_block"]
    report["summary"] = {
        "m": m,
        "owners_compared": 2,
        "frames_reduction_2_owners": frame_reductions,
        "wall_speedup_2_owners": wall_speedups,
        "meets_2x_frames": bool(frame_reductions)
        and all(value >= 2.0 for value in frame_reductions.values()),
        "wall_clock_faster": bool(wall_speedups)
        and all(value > 1.0 for value in wall_speedups.values()),
        "columnar_speedup": micro["speedup"],
        "columnar_faster": micro["speedup"] > 1.0,
        "rebalance_improves_balance": report["placement_rebalance"][
            "rebalance_improves_balance"
        ],
        "note": (
            "gates cover the full-fan-out rows (ta/bpa and block "
            "variants); classic bpa2 coalesces only its probe waves"
        ),
    }
    return report


def hammer_cluster(
    spec: dict,
    *,
    ks: tuple[int, ...] = (5, 10, 20),
    algorithms: tuple[str, ...] | None = None,
    protocol: str = "pipelined",
    verify: bool = True,
    timeout: float = 10.0,
) -> dict:
    """Run verified queries against a cluster another process spawned.

    ``spec`` is the JSON document ``repro cluster serve --spec-out``
    writes: owner ports, the placement, ``m``/``n`` and the snapshot
    path.  With ``verify`` the snapshot is loaded locally and every
    answer (items *and* access tallies) is checked against the
    reference single-node algorithm — the cross-process analogue of the
    differential suite.
    """
    placement = ClusterPlacement.from_dict(spec["placement"])
    m, n = int(spec["m"]), int(spec["n"])
    include_position = bool(spec.get("include_position", False))
    if algorithms is None:
        algorithms = ("bpa",) if include_position else ("ta", "bpa2")
    reference_db = None
    if verify:
        from repro.storage.snapshot import load_snapshot

        reference_db, _epoch = load_snapshot(spec["snapshot"])
    rows: list[dict] = []
    failures = 0
    with connect_ports(spec["ports"], timeout=timeout) as fabric:
        for name in algorithms:
            for k in ks:
                k_eff = max(1, min(k, n))
                for owner in range(placement.owners):
                    fabric.request(f"owner/{owner}", "reset")
                fabric.reset_stats()
                backend = NetworkBackend.remote(
                    fabric,
                    m=m,
                    n=n,
                    include_position=include_position,
                    protocol=protocol,
                    placement=placement,
                )
                started = time.perf_counter()
                outcome = _ENGINE_DRIVERS[name](backend, k_eff, SUM)
                seconds = time.perf_counter() - started
                row = {
                    "algorithm": name,
                    "k": k_eff,
                    "items": len(outcome.items),
                    "seconds": seconds,
                    "messages": fabric.stats.messages,
                    "bytes": fabric.stats.bytes,
                }
                if reference_db is not None:
                    reference = get_algorithm(name).run(reference_db, k_eff, SUM)
                    ok = (
                        outcome.items == reference.items
                        and backend.total_tally() == reference.tally
                    )
                    row["verified"] = ok
                    failures += 0 if ok else 1
                rows.append(row)
    return {
        "protocol": protocol,
        "owners": placement.owners,
        "queries": len(rows),
        "failures": failures,
        "verified": bool(verify) and failures == 0,
        "rows": rows,
    }
