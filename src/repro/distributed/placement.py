"""List-to-owner placement for multi-tenant clusters.

The socket transport originally spawned one owner process per list, so
every round paid ``m`` frame round trips even though a round plan never
carries two ops for the same list.  :class:`ClusterPlacement` assigns
the ``m`` lists to a configurable number of owner processes; the
transport then coalesces each round's ops into **one frame per owner**
(see :meth:`NetworkBackend.execute_plan`), an m-fold frame reduction
when all lists share one owner.

Placement strategies
--------------------
``contiguous`` (default)
    Balanced adjacent chunks: lists ``0..m-1`` are split into ``owners``
    runs of near-equal length.  Round plans fan out over *all* lists
    simultaneously (TA/BPA sorted waves and probe waves touch every
    list), so any balanced partition coalesces equally well; contiguous
    runs additionally keep neighbouring list ids — which generators and
    snapshots lay out adjacently — in one process.
``striped``
    Round-robin: list ``i`` goes to owner ``i % owners``.  Useful when
    list sizes or temperatures correlate with position so adjacent runs
    would concentrate load.
``rebalanced``
    Produced by :func:`rebalance_placement` from *observed* per-list
    latency mass (the per-owner metrics endpoint's ``per_list``
    section): LPT greedy packing that balances measured service
    seconds — not list count — across owners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping

STRATEGIES = ("contiguous", "striped")


@dataclass(frozen=True)
class ClusterPlacement:
    """An assignment of ``m`` lists onto owner processes.

    ``groups[o]`` is the tuple of global list indices hosted by owner
    ``o``; together the groups partition ``range(m)``.  Build one with
    :meth:`build` rather than the constructor unless reloading a
    serialized placement.
    """

    m: int
    groups: tuple[tuple[int, ...], ...]
    strategy: str = "contiguous"

    def __post_init__(self) -> None:
        flat = sorted(index for group in self.groups for index in group)
        if flat != list(range(self.m)):
            raise ValueError(
                f"groups {self.groups} do not partition range({self.m})"
            )
        if any(not group for group in self.groups):
            raise ValueError("placement has an owner with no lists")

    @classmethod
    def build(
        cls,
        m: int,
        *,
        owners: int | None = None,
        strategy: str = "contiguous",
    ) -> "ClusterPlacement":
        """Place ``m`` lists on ``owners`` processes (default: one each).

        ``owners`` of ``None`` or ``0`` keeps the legacy one-process-
        per-list layout; larger than ``m`` is clamped to ``m``.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown placement strategy {strategy!r}; pick from {STRATEGIES}"
            )
        if not owners:
            owners = m
        if owners < 0:
            raise ValueError(f"owners must be >= 0, got {owners}")
        owners = min(owners, m)
        if strategy == "striped":
            groups = tuple(
                tuple(range(o, m, owners)) for o in range(owners)
            )
        else:
            base, extra = divmod(m, owners)
            groups, start = [], 0
            for o in range(owners):
                size = base + (1 if o < extra else 0)
                groups.append(tuple(range(start, start + size)))
                start += size
            groups = tuple(groups)
        return cls(m=m, groups=groups, strategy=strategy)

    @property
    def owners(self) -> int:
        """Number of owner processes."""
        return len(self.groups)

    @cached_property
    def owner_of(self) -> tuple[int, ...]:
        """``owner_of[i]`` is the owner hosting list ``i``."""
        mapping = [0] * self.m
        for owner, group in enumerate(self.groups):
            for index in group:
                mapping[index] = owner
        return tuple(mapping)

    @property
    def max_group(self) -> int:
        """Largest number of co-located lists on any owner."""
        return max(len(group) for group in self.groups)

    def to_dict(self) -> dict:
        """JSON-serializable form (cluster spec files)."""
        return {
            "m": self.m,
            "strategy": self.strategy,
            "groups": [list(group) for group in self.groups],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterPlacement":
        return cls(
            m=int(data["m"]),
            groups=tuple(tuple(int(i) for i in group) for group in data["groups"]),
            strategy=str(data.get("strategy", "contiguous")),
        )


def list_masses(metrics: Iterable[Mapping]) -> dict[int, float]:
    """Fold per-owner metrics documents into per-list latency mass.

    ``metrics`` is an iterable of :meth:`OwnerDaemon.metrics` payloads
    (one per owner).  Lists that served no ops contribute mass ``0.0``
    but stay in the result, so the rebalancer places the whole hosted
    set.  Falls back to op *counts* as the mass when a document carries
    no timing (an owner that never measured).
    """
    masses: dict[int, float] = {}
    for document in metrics:
        per_list = document.get("per_list") or {}
        for key, cell in per_list.items():
            index = int(key)
            seconds = float(cell.get("seconds", 0.0))
            if seconds <= 0.0 and cell.get("ops"):
                # Timing-free documents: weight by op count instead
                # (scaled down so real seconds always dominate).
                seconds = float(cell["ops"]) * 1e-9
            masses[index] = masses.get(index, 0.0) + seconds
        for index in document.get("lists") or ():
            masses.setdefault(int(index), 0.0)
    return masses


def rebalance_placement(
    stats: Mapping[int, float] | Iterable[Mapping],
    *,
    owners: int | None = None,
) -> ClusterPlacement:
    """Propose a placement balancing *observed* latency mass per owner.

    ``stats`` is either a ``{list_index: mass}`` mapping (seconds of
    observed service time per list) or an iterable of per-owner
    :meth:`OwnerDaemon.metrics` documents, in which case ``owners``
    defaults to the number of documents.  Pure function: no transport
    is touched — callers decide whether to apply the proposal.

    LPT greedy: lists in descending mass order, each onto the owner
    with the least accumulated mass (ties broken by fewest assigned
    lists, then owner index), so a zero-signal input degrades to plain
    count-balanced assignment and no owner is ever left empty while
    ``owners <= m``.
    """
    if isinstance(stats, Mapping):
        masses = {int(index): float(mass) for index, mass in stats.items()}
        if owners is None:
            raise ValueError(
                "owners is required when stats is a plain mass mapping"
            )
    else:
        documents = list(stats)
        masses = list_masses(documents)
        if owners is None:
            owners = len(documents)
    if not masses:
        raise ValueError("no per-list statistics to rebalance from")
    indices = sorted(masses)
    m = len(indices)
    if indices != list(range(m)):
        raise ValueError(
            f"per-list statistics must cover every list 0..{m - 1}, "
            f"got {indices}"
        )
    if owners < 1:
        raise ValueError(f"owners must be >= 1, got {owners}")
    owners = min(owners, m)
    loads = [0.0] * owners
    counts = [0] * owners
    groups: list[list[int]] = [[] for _ in range(owners)]
    for index in sorted(indices, key=lambda i: (-masses[i], i)):
        target = min(
            range(owners), key=lambda o: (loads[o], counts[o], o)
        )
        groups[target].append(index)
        loads[target] += masses[index]
        counts[target] += 1
    return ClusterPlacement(
        m=m,
        groups=tuple(tuple(sorted(group)) for group in groups),
        strategy="rebalanced",
    )


def placement_balance(
    placement: ClusterPlacement, masses: Mapping[int, float]
) -> dict:
    """How evenly a placement spreads the observed latency mass.

    Returns per-owner masses plus the max/mean imbalance ratio, where
    1.0 is perfect.  A zero-mass mean (nothing observed yet) reports
    imbalance 1.0 — vacuously balanced, never a division by zero — and
    a single-owner placement is 1.0 by construction; callers gate
    rebalancing proposals on ``total_mass`` and owner count rather
    than on this ratio alone.
    """
    per_owner = [
        sum(float(masses.get(index, 0.0)) for index in group)
        for group in placement.groups
    ]
    total = sum(per_owner)
    mean = total / len(per_owner) if per_owner else 0.0
    return {
        "per_owner_mass": per_owner,
        "total_mass": total,
        "imbalance": (max(per_owner) / mean) if mean > 0 else 1.0,
    }
