"""List-to-owner placement for multi-tenant clusters.

The socket transport originally spawned one owner process per list, so
every round paid ``m`` frame round trips even though a round plan never
carries two ops for the same list.  :class:`ClusterPlacement` assigns
the ``m`` lists to a configurable number of owner processes; the
transport then coalesces each round's ops into **one frame per owner**
(see :meth:`NetworkBackend.execute_plan`), an m-fold frame reduction
when all lists share one owner.

Placement strategies
--------------------
``contiguous`` (default)
    Balanced adjacent chunks: lists ``0..m-1`` are split into ``owners``
    runs of near-equal length.  Round plans fan out over *all* lists
    simultaneously (TA/BPA sorted waves and probe waves touch every
    list), so any balanced partition coalesces equally well; contiguous
    runs additionally keep neighbouring list ids — which generators and
    snapshots lay out adjacently — in one process.
``striped``
    Round-robin: list ``i`` goes to owner ``i % owners``.  Useful when
    list sizes or temperatures correlate with position so adjacent runs
    would concentrate load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

STRATEGIES = ("contiguous", "striped")


@dataclass(frozen=True)
class ClusterPlacement:
    """An assignment of ``m`` lists onto owner processes.

    ``groups[o]`` is the tuple of global list indices hosted by owner
    ``o``; together the groups partition ``range(m)``.  Build one with
    :meth:`build` rather than the constructor unless reloading a
    serialized placement.
    """

    m: int
    groups: tuple[tuple[int, ...], ...]
    strategy: str = "contiguous"

    def __post_init__(self) -> None:
        flat = sorted(index for group in self.groups for index in group)
        if flat != list(range(self.m)):
            raise ValueError(
                f"groups {self.groups} do not partition range({self.m})"
            )
        if any(not group for group in self.groups):
            raise ValueError("placement has an owner with no lists")

    @classmethod
    def build(
        cls,
        m: int,
        *,
        owners: int | None = None,
        strategy: str = "contiguous",
    ) -> "ClusterPlacement":
        """Place ``m`` lists on ``owners`` processes (default: one each).

        ``owners`` of ``None`` or ``0`` keeps the legacy one-process-
        per-list layout; larger than ``m`` is clamped to ``m``.
        """
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown placement strategy {strategy!r}; pick from {STRATEGIES}"
            )
        if not owners:
            owners = m
        if owners < 0:
            raise ValueError(f"owners must be >= 0, got {owners}")
        owners = min(owners, m)
        if strategy == "striped":
            groups = tuple(
                tuple(range(o, m, owners)) for o in range(owners)
            )
        else:
            base, extra = divmod(m, owners)
            groups, start = [], 0
            for o in range(owners):
                size = base + (1 if o < extra else 0)
                groups.append(tuple(range(start, start + size)))
                start += size
            groups = tuple(groups)
        return cls(m=m, groups=groups, strategy=strategy)

    @property
    def owners(self) -> int:
        """Number of owner processes."""
        return len(self.groups)

    @cached_property
    def owner_of(self) -> tuple[int, ...]:
        """``owner_of[i]`` is the owner hosting list ``i``."""
        mapping = [0] * self.m
        for owner, group in enumerate(self.groups):
            for index in group:
                mapping[index] = owner
        return tuple(mapping)

    @property
    def max_group(self) -> int:
        """Largest number of co-located lists on any owner."""
        return max(len(group) for group in self.groups)

    def to_dict(self) -> dict:
        """JSON-serializable form (cluster spec files)."""
        return {
            "m": self.m,
            "strategy": self.strategy,
            "groups": [list(group) for group in self.groups],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterPlacement":
        return cls(
            m=int(data["m"]),
            groups=tuple(tuple(int(i) for i in group) for group in data["groups"]),
            strategy=str(data.get("strategy", "contiguous")),
        )
