"""TPUT — Three Phase Uniform Threshold (Cao & Wang, PODC 2004).

The related-work baseline the paper compares against analytically
(Section 7).  TPUT trades accesses for round trips: instead of one
message per access, it uses three bulk phases:

1. fetch the top-k of every list; the k-th best *partial* sum (missing
   scores floored at 0) is the lower bound ``tau``;
2. fetch from every list all entries scoring at least ``tau / m`` (the
   "uniform threshold"); recompute the lower bound ``tau2``, prune every
   item whose upper bound (missing scores capped at ``tau / m``) is below
   ``tau2``;
3. random-lookup the candidates' missing scores and return the exact
   top-k.

TPUT is defined for sum scoring; the driver rejects other scoring
functions.  As the paper notes, TPUT is *not* instance optimal: a list
holding many items just above the uniform threshold forces phase 2 to
ship almost everything — ``tests/integration/test_tput.py`` reproduces
exactly that pathology.
"""

from __future__ import annotations

from repro.algorithms.base import TopKBuffer
from repro.distributed.network import SimulatedNetwork
from repro.distributed.nodes import ListOwnerNode
from repro.errors import InvalidQueryError, ScoringError
from repro.lists.database import Database
from repro.scoring import SUM, ScoringFunction, SumScoring
from repro.types import AccessTally, ItemId, Score, TopKResult


class DistributedTPUT:
    """TPUT coordinator over the simulated network."""

    name = "tput"

    def run(
        self, database: Database, k: int, scoring: ScoringFunction = SUM
    ) -> TopKResult:
        """Execute a top-k query with the three TPUT phases."""
        if not 1 <= k <= database.n:
            raise InvalidQueryError(f"k must be in 1..{database.n}, got {k}")
        if not isinstance(scoring, SumScoring):
            raise ScoringError(
                "TPUT's uniform threshold tau/m is only valid for sum scoring"
            )
        network = SimulatedNetwork()
        owners = [ListOwnerNode(lst) for lst in database.lists]
        for index, owner in enumerate(owners):
            network.register(f"owner/{index}", owner)

        m = database.m
        known: dict[ItemId, dict[int, Score]] = {}

        def partial_sum(scores_by_list: dict[int, Score]) -> Score:
            return sum(scores_by_list.values())

        # ---- Phase 1: top-k from every list --------------------------------
        for index in range(m):
            response = network.request(f"owner/{index}", "top", {"count": k})
            for item, score in response["entries"]:
                known.setdefault(item, {})[index] = score
        tau = self._kth_best(known.values(), k, partial_sum)

        # ---- Phase 2: everything above the uniform threshold ---------------
        uniform_threshold = tau / m
        for index in range(m):
            response = network.request(
                f"owner/{index}", "get_scores_above", {"threshold": uniform_threshold}
            )
            for item, score in response["entries"]:
                known.setdefault(item, {})[index] = score
        tau2 = self._kth_best(known.values(), k, partial_sum)

        candidates = []
        for item, scores_by_list in known.items():
            upper = partial_sum(scores_by_list) + uniform_threshold * (
                m - len(scores_by_list)
            )
            if upper >= tau2:
                candidates.append(item)

        # ---- Phase 3: resolve candidates exactly ----------------------------
        buffer = TopKBuffer(k)
        for item in candidates:
            scores_by_list = known[item]
            for index in range(m):
                if index not in scores_by_list:
                    reply = network.request(
                        f"owner/{index}", "random_lookup", {"item": item}
                    )
                    scores_by_list[index] = reply["score"]
            buffer.add(item, sum(scores_by_list.values()))

        tally = AccessTally()
        for owner in owners:
            tally = tally + owner.accessor.tally
        deepest = max(owner.accessor.last_sorted_position for owner in owners)
        extras = {
            "network": network.stats.snapshot(),
            "tau": tau,
            "tau2": tau2,
            "candidates": len(candidates),
        }
        return TopKResult(
            items=buffer.ranked(),
            tally=tally,
            rounds=3,
            stop_position=deepest,
            algorithm=self.name,
            extras=extras,
        )

    @staticmethod
    def _kth_best(score_maps, k: int, partial_sum) -> Score:
        """The k-th largest partial sum (0 when fewer than k items)."""
        sums = sorted((partial_sum(sm) for sm in score_maps), reverse=True)
        if len(sums) < k:
            return 0.0
        return sums[k - 1]
