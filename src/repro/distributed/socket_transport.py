"""A real TCP transport: multi-tenant owner daemons behind framed sockets.

This is the simulated network made physical.  A
:class:`~repro.distributed.placement.ClusterPlacement` assigns the
database's lists to a configurable number of **owner processes** (one
per list by default); each process runs an
:class:`~repro.distributed.daemon.OwnerDaemon` serving its hosted lists
over a length-prefixed TCP connection.  The originator talks to the
owners through :class:`SocketNetwork`, which satisfies the same fabric
interface as :class:`~repro.distributed.network.SimulatedNetwork`
(``request`` / ``request_many`` / ``stats``), so
:class:`~repro.distributed.transport.NetworkBackend` — and therefore the
unified round-plan drivers, ``QueryService`` and ``dist-bench`` — run
over real sockets unchanged.

Wire format
-----------
One frame per message: a 4-byte big-endian length prefix followed by a
UTF-8 JSON body.  Requests are ``{"kind": ..., "payload": {...}}``;
responses are the owner's response dict verbatim (owner-side errors
travel as ``{"__error__": "..."}`` and re-raise client-side as
:class:`~repro.errors.ProtocolError`).  Byte accounting in
:class:`NetworkStats` uses the *actual* frame sizes, prefix included.
Requests to an owner hosting several lists carry a ``"list"`` routing
field, and a round's ops for co-hosted lists coalesce into one
``multi`` frame per owner (see ``NetworkBackend._execute_coalesced``) —
at ``owners < m`` that is the transport's frame reduction, measured by
``repro-topk cluster bench`` into ``reports/cluster_speedup.json``.

Pipelining
----------
``request_many`` writes every request frame before reading any response.
Each owner connection is FIFO, and a round plan never carries two ops
for the same list, so responses match requests by order — the batched
protocol's sequential round trips collapse into one overlapped wave,
which is where the pipelined protocol's wall-clock win comes from
(``repro dist-bench`` measures it at identical message counts).

Warm starts
-----------
:meth:`SocketCluster.from_snapshot` spawns owners that load their lists
from a ``.bpsn`` snapshot file themselves — the parent reads only the
fixed header, no list payload crosses the process boundary, and the
canonical sort is adopted from the file instead of recomputed.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import struct
from typing import Sequence

import numpy as np

from repro.distributed.daemon import DEFAULT_LATENCY_SAMPLE_K, OwnerDaemon
from repro.distributed.network import NetworkStats
from repro.distributed.placement import ClusterPlacement
from repro.errors import ProtocolError

_LENGTH = struct.Struct(">I")

#: Largest frame body either side will send or accept.  The protocol's
#: biggest legitimate payloads (a batched round of lookups, a pushed
#: result delta) are a few kilobytes; anything near this limit is a
#: corrupt length prefix or a hostile peer, and honouring it would make
#: ``_recv_exact`` buffer unboundedly.  Oversized frames raise
#: :class:`~repro.errors.ProtocolError` *before* any body byte is read,
#: so the reader can drop the connection without desynchronising.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Request kind that asks an owner process to exit its serve loop.
SHUTDOWN = "__shutdown__"

#: Control-plane request kinds excluded from wire accounting: they are
#: remote-transport bookkeeping (end-of-query state reads, per-query
#: resets, shutdown), not query-protocol traffic — the simulated
#: transport answers the same questions by peeking at in-process owner
#: objects for free, and keeping them out of the counters keeps socket
#: message/byte rows directly comparable with the simulated rows for
#: identical owner-side operations.
CONTROL_KINDS = frozenset({"state", "reset", SHUTDOWN})


def _json_default(value):
    """Encode NumPy scalars the way their Python twins encode."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"unsupported wire type: {type(value).__name__}")


def send_frame(
    sock: socket.socket, message: dict, *, max_bytes: int = MAX_FRAME_BYTES
) -> int:
    """Write one length-prefixed JSON frame; returns bytes on the wire."""
    body = json.dumps(message, default=_json_default).encode("utf-8")
    if len(body) > max_bytes:
        raise ProtocolError(
            f"refusing to send {len(body)}-byte frame (limit {max_bytes})"
        )
    frame = _LENGTH.pack(len(body)) + body
    sock.sendall(frame)
    return len(frame)


def recv_frame(
    sock: socket.socket, *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict | None, int]:
    """Read one frame; ``(None, 0)`` on a clean EOF before any byte.

    Raises :class:`~repro.errors.ProtocolError` on an oversized length
    prefix or an undecodable body, and :class:`ConnectionError` on a
    frame truncated mid-body — in either case the stream can no longer
    be trusted to be frame-aligned and the caller must close it.
    """
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None, 0
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"peer announced {length}-byte frame (limit {max_bytes})"
        )
    body = _recv_exact(sock, length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message, _LENGTH.size + length


def _recv_exact(
    sock: socket.socket, count: int, *, allow_eof: bool = False
) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _build_daemon(spec: dict) -> OwnerDaemon:
    """Materialize one owner process's daemon from its spawn spec.

    The spec carries either the pickled lists themselves or a snapshot
    path to load them from (warm start: the canonical sort is adopted
    from the file, never recomputed).
    """
    indices = list(spec["indices"])
    lists = spec.get("lists")
    if lists is None:
        from repro.storage.snapshot import load_snapshot

        database, _epoch = load_snapshot(spec["snapshot"])
        lists = [database.lists[index] for index in indices]
    return OwnerDaemon(
        lists,
        list_indices=indices,
        tracker=spec["tracker"],
        include_position=spec["include_position"],
        columnar=spec["columnar"],
        latency_sample_k=spec["latency_sample_k"],
    )


def _owner_server_main(spec: dict, channel) -> None:
    """One owner process: serve its hosted lists until shut down."""
    daemon = _build_daemon(spec)
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind(("127.0.0.1", 0))
    server.listen(4)
    channel.send(server.getsockname()[1])
    channel.close()
    try:
        while True:
            client, _addr = server.accept()
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with client:
                try:
                    while True:
                        request, _size = recv_frame(client)
                        if request is None:
                            break  # client went away; await a reconnect
                        if request.get("kind") == SHUTDOWN:
                            send_frame(client, {})
                            return
                        try:
                            response = daemon.handle(
                                request["kind"], request.get("payload") or {}
                            )
                        except Exception as exc:  # ship, don't kill owner
                            response = {
                                "__error__": f"{type(exc).__name__}: {exc}"
                            }
                        send_frame(client, response)
                except (ProtocolError, ConnectionError, OSError):
                    # Oversized/truncated/garbled frame: the stream is no
                    # longer frame-aligned.  Drop this client and keep
                    # serving — a hostile or crashed client must not take
                    # the owner (and every other client's lists) with it.
                    continue
    finally:
        server.close()


def connect_ports(
    ports: Sequence[int], *, timeout: float = 10.0
) -> "SocketNetwork":
    """Open one TCP connection per owner port and return the fabric.

    Addresses are ``owner/<index>`` in port order.  ``timeout`` bounds
    the *connect* only; established connections block indefinitely (a
    slow owner-side op must not desynchronize the length-prefixed
    framing mid-frame).  Works from any process that knows the ports —
    ``repro-topk cluster serve`` publishes them in its spec file so
    ``serve-workload --cluster-spec`` can hammer a cluster it did not
    spawn.
    """
    sockets: dict[str, socket.socket] = {}
    try:
        for index, port in enumerate(ports):
            sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sockets[f"owner/{index}"] = sock
    except BaseException:
        for sock in sockets.values():
            sock.close()
        raise
    return SocketNetwork(sockets)


class SocketCluster:
    """Spawns owner daemon processes and hands out connections.

    Args:
        database: any :class:`~repro.lists.accessor.DatabaseLike`; each
            owner group's lists ship (pickled) to one owner process,
            which binds an ephemeral loopback port and reports it back.
        owners: number of owner processes (``None``/``0`` keeps the
            legacy one per list); lists are assigned by ``placement``.
        placement: a strategy name (``"contiguous"``/``"striped"``) or a
            prebuilt :class:`ClusterPlacement`.
        tracker: best-position structure kind at the owners.
        include_position: ship positions in lookup responses (BPA).
        columnar: owner node selection — ``"auto"`` serves vectorized
            sources through the columnar fast path, ``"entry"`` forces
            the per-entry reference path.
        latency_sample_k: size of each daemon's latency reservoir.
        start_method: multiprocessing start method; ``None`` keeps the
            platform default (``fork`` is unsafe with threads or under
            macOS frameworks — opt into it knowingly).

    Use as a context manager; :meth:`close` asks every owner to exit
    and joins the processes (they are daemons, so a crashed originator
    cannot leak them past its own lifetime).
    """

    def __init__(
        self,
        database,
        *,
        owners: int | None = None,
        placement: str | ClusterPlacement = "contiguous",
        tracker: str = "bitarray",
        include_position: bool = False,
        columnar: str = "auto",
        latency_sample_k: int = DEFAULT_LATENCY_SAMPLE_K,
        start_method: str | None = None,
    ) -> None:
        self._setup(
            m=database.m,
            n=database.n,
            owners=owners,
            placement=placement,
            include_position=include_position,
        )
        specs = [
            self._spec(
                group,
                tracker=tracker,
                include_position=include_position,
                columnar=columnar,
                latency_sample_k=latency_sample_k,
                lists=[database.lists[index] for index in group],
            )
            for group in self.placement.groups
        ]
        self._spawn(specs, start_method)

    @classmethod
    def from_snapshot(
        cls,
        path,
        *,
        owners: int | None = None,
        placement: str | ClusterPlacement = "contiguous",
        tracker: str = "bitarray",
        include_position: bool = False,
        columnar: str = "auto",
        latency_sample_k: int = DEFAULT_LATENCY_SAMPLE_K,
        start_method: str | None = None,
    ) -> "SocketCluster":
        """Warm-start a cluster from a ``.bpsn`` snapshot file.

        The parent reads only the snapshot's fixed header (for ``m``,
        ``n`` and the epoch stamp); every owner process loads its own
        lists from the file, adopting the persisted canonical order —
        a cluster restart skips the sort and ships no list payloads
        over the spawn pipe.
        """
        from repro.storage.snapshot import read_snapshot_header

        m, n, epoch = read_snapshot_header(path)
        cluster = cls.__new__(cls)
        cluster._setup(
            m=m,
            n=n,
            owners=owners,
            placement=placement,
            include_position=include_position,
        )
        cluster.epoch = epoch
        specs = [
            cluster._spec(
                group,
                tracker=tracker,
                include_position=include_position,
                columnar=columnar,
                latency_sample_k=latency_sample_k,
                snapshot=str(path),
            )
            for group in cluster.placement.groups
        ]
        cluster._spawn(specs, start_method)
        return cluster

    def _setup(
        self,
        *,
        m: int,
        n: int,
        owners: int | None,
        placement: str | ClusterPlacement,
        include_position: bool,
    ) -> None:
        self.m = m
        self.n = n
        self.include_position = include_position
        self.epoch: int | None = None
        if isinstance(placement, ClusterPlacement):
            if placement.m != m:
                raise ValueError(
                    f"placement covers {placement.m} lists, database has {m}"
                )
            self.placement = placement
        else:
            self.placement = ClusterPlacement.build(
                m, owners=owners, strategy=placement
            )
        self.ports: list[int] = []
        self._processes: list = []

    @staticmethod
    def _spec(group, *, tracker, include_position, columnar, latency_sample_k, **source):
        return {
            "indices": list(group),
            "tracker": tracker,
            "include_position": include_position,
            "columnar": columnar,
            "latency_sample_k": latency_sample_k,
            **source,
        }

    def _spawn(self, specs: list[dict], start_method: str | None) -> None:
        context = multiprocessing.get_context(start_method)
        try:
            for spec in specs:
                parent, child = context.Pipe()
                process = context.Process(
                    target=_owner_server_main, args=(spec, child), daemon=True
                )
                process.start()
                child.close()
                self.ports.append(parent.recv())
                parent.close()
                self._processes.append(process)
        except BaseException:
            self.close()
            raise

    def connect(self, *, timeout: float = 10.0) -> "SocketNetwork":
        """Open one TCP connection per owner and return the fabric."""
        return connect_ports(self.ports, timeout=timeout)

    def close(self, *, timeout: float = 5.0) -> None:
        """Shut down every owner process (idempotent).

        Escalates politely: a shutdown frame first (owners finish the
        frame they are serving and exit their loop), then
        ``join(timeout)``, then ``terminate()`` for stragglers, and
        ``kill()`` only as the last resort — so a healthy cluster never
        sees a signal and a wedged owner still cannot outlive us.
        """
        processes, self._processes = self._processes, []
        if not processes:
            return
        for process, port in zip(processes, self.ports):
            if not process.is_alive():
                continue
            try:
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=2.0
                ) as sock:
                    send_frame(sock, {"kind": SHUTDOWN})
                    recv_frame(sock)
            except OSError:
                pass  # unreachable owner: the escalation below reaps it
        for process in processes:
            process.join(timeout=timeout)
        stragglers = [p for p in processes if p.is_alive()]
        for process in stragglers:  # pragma: no cover - unhealthy owners
            process.terminate()
        for process in stragglers:  # pragma: no cover - unhealthy owners
            process.join(timeout=timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=timeout)

    def __enter__(self) -> "SocketCluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SocketNetwork:
    """Client-side fabric over one framed TCP connection per owner.

    Satisfies the same interface as
    :class:`~repro.distributed.network.SimulatedNetwork` (``request`` /
    ``request_many`` / ``stats`` / ``reset_stats``), with byte counters
    measuring the actual frames on the wire.
    """

    def __init__(self, sockets: dict[str, socket.socket]) -> None:
        self.stats = NetworkStats()
        self._sockets = sockets

    @property
    def addresses(self) -> tuple[str, ...]:
        """The owner addresses this fabric can reach."""
        return tuple(self._sockets)

    def _send(self, address: str, kind: str, payload: dict | None) -> int:
        sock = self._sockets.get(address)
        if sock is None:
            raise KeyError(f"no owner at address {address}")
        return send_frame(sock, {"kind": kind, "payload": payload or {}})

    def _receive(self, address: str, kind: str, sent: int) -> dict:
        response, size = recv_frame(self._sockets[address])
        if response is None:
            raise ConnectionError(f"owner at {address} closed the connection")
        if kind not in CONTROL_KINDS:
            self.stats.record(kind, request_bytes=sent, response_bytes=size)
        error = response.pop("__error__", None)
        if error is not None:
            raise ProtocolError(f"owner at {address} failed: {error}")
        if kind not in CONTROL_KINDS:
            self.stats.record_best_position_payload(response)
        return response

    def request(self, address: str, kind: str, payload: dict | None = None) -> dict:
        """One blocking request/response round trip."""
        sent = self._send(address, kind, payload)
        return self._receive(address, kind, sent)

    def request_many(
        self, requests: Sequence[tuple[str, str, dict | None]]
    ) -> list[dict]:
        """Overlapped wave: write every request, then read every response.

        Requests to distinct owners are concurrently in flight; multiple
        requests to one owner stay FIFO on its connection, so responses
        always match requests by order.
        """
        sizes = [
            self._send(address, kind, payload)
            for address, kind, payload in requests
        ]
        return [
            self._receive(address, kind, sent)
            for (address, kind, _payload), sent in zip(requests, sizes)
        ]

    def reset_stats(self) -> None:
        """Zero all counters (e.g. between queries)."""
        self.stats = NetworkStats()

    def close(self) -> None:
        """Close every owner connection (idempotent)."""
        sockets, self._sockets = self._sockets, {}
        for sock in sockets.values():
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "SocketNetwork":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
