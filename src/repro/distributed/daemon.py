"""Multi-list owner daemons: routing, coalesced frames, observability.

One :class:`OwnerDaemon` hosts every list that
:class:`~repro.distributed.placement.ClusterPlacement` assigned to its
owner process.  It speaks the :class:`~repro.distributed.nodes.ListOwnerNode`
request protocol with two extensions:

``"list"`` routing field
    Any per-list request may carry ``{"list": i}`` naming the hosted
    global list index.  A daemon hosting exactly one list defaults to
    it, so single-tenant daemons stay wire-compatible with the legacy
    one-process-per-list cluster.

``multi`` frames
    ``{"ops": [{"kind": ..., "payload": {..., "list": i}}, ...]}``
    executes the sub-ops in order and answers
    ``{"results": [...]}`` — one frame per owner per round wave
    instead of one per list (the transport's per-owner coalescing).
    A round plan never carries two ops for one list, so in-order
    execution preserves every per-list access stream exactly.

Observability (the ``/metrics`` idiom)
    The daemon counts served ops per kind and reservoir-samples per-op
    service latency (Algorithm R, ``latency_sample_k`` samples).  A
    ``state`` request with ``{"metrics": true}`` returns them with
    p50/p90/p99/max quantiles — read it with ``repro-topk cluster
    stats``.  Metrics frames are control-plane and never counted in
    wire stats.

Each hosted list is served by a :class:`ColumnarOwnerNode` when the
source exposes vectorized ``lookup_many``/``block`` (the columnar fast
path) and a plain :class:`ListOwnerNode` otherwise; ``columnar="entry"``
forces the per-entry path (the benchmark baseline), ``"columnar"``
requires the fast path.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from typing import Sequence

from repro.distributed.nodes import (
    DEFAULT_SESSION,
    ColumnarOwnerNode,
    ListOwnerNode,
)
from repro.errors import ProtocolError

COLUMNAR_MODES = ("auto", "entry", "columnar")

#: Default latency reservoir size (adaptive-hashmap-studio's
#: ``--latency-sample-k`` default neighbourhood).
DEFAULT_LATENCY_SAMPLE_K = 64


class LatencyReservoir:
    """Algorithm-R reservoir of per-op service times (seconds).

    Bounded memory however many ops the daemon serves; every op has an
    equal chance of being in the sample, so the quantiles estimate the
    full service-time distribution, not a recent window.
    """

    def __init__(self, k: int = DEFAULT_LATENCY_SAMPLE_K, *, seed: int = 0x5EED) -> None:
        if k < 1:
            raise ValueError(f"latency sample size must be >= 1, got {k}")
        self._k = k
        self._rng = random.Random(seed)
        self._samples: list[float] = []
        self.count = 0

    def record(self, seconds: float) -> None:
        """Offer one observation to the reservoir."""
        self.count += 1
        if len(self._samples) < self._k:
            self._samples.append(seconds)
            return
        slot = self._rng.randrange(self.count)
        if slot < self._k:
            self._samples[slot] = seconds

    def quantile(self, fraction: float) -> float | None:
        """The sampled ``fraction`` quantile in seconds.

        Pinned edge behavior: ``None`` on an empty reservoir (there is
        no distribution to query — callers must render "no data", not
        crash), and the sample itself on a single-sample reservoir
        (every quantile of a point distribution is that point).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def quantiles(self) -> dict:
        """Summary of the sampled distribution, in microseconds.

        An empty reservoir reports only zero counts — no quantile keys
        — so renderers must tolerate their absence (a fresh daemon has
        served nothing).
        """
        if not self._samples:
            return {"count": 0, "samples": 0}
        ordered = sorted(self._samples)

        def at(fraction: float) -> float:
            index = min(len(ordered) - 1, int(fraction * len(ordered)))
            return round(ordered[index] * 1e6, 3)

        return {
            "count": self.count,
            "samples": len(ordered),
            "p50_us": at(0.50),
            "p90_us": at(0.90),
            "p99_us": at(0.99),
            "max_us": round(ordered[-1] * 1e6, 3),
        }


def make_owner_node(sorted_list, *, tracker, include_position, columnar="auto"):
    """Build the right node class for one hosted list."""
    if columnar not in COLUMNAR_MODES:
        raise ValueError(
            f"unknown columnar mode {columnar!r}; pick from {COLUMNAR_MODES}"
        )
    vectorized = hasattr(sorted_list, "lookup_many") and hasattr(
        sorted_list, "block"
    )
    if columnar == "columnar" and not vectorized:
        raise ValueError(
            f"columnar owner requested but {type(sorted_list).__name__} "
            "has no vectorized lookup_many/block"
        )
    cls = ColumnarOwnerNode if vectorized and columnar != "entry" else ListOwnerNode
    return cls(sorted_list, tracker=tracker, include_position=include_position)


class OwnerDaemon:
    """One owner process's brain: its hosted lists behind one protocol.

    Args:
        lists: the sorted lists this owner hosts, aligned with
            ``list_indices`` (their global indices in the database).
        tracker / include_position: forwarded to every hosted node.
        columnar: node selection mode (see :func:`make_owner_node`).
        latency_sample_k: reservoir size for the latency quantiles.
    """

    def __init__(
        self,
        lists: Sequence,
        *,
        list_indices: Sequence[int],
        tracker: str = "bitarray",
        include_position: bool = False,
        columnar: str = "auto",
        latency_sample_k: int = DEFAULT_LATENCY_SAMPLE_K,
    ) -> None:
        if len(lists) != len(list_indices) or not lists:
            raise ValueError("lists and list_indices must align and be non-empty")
        self._nodes: dict[int, ListOwnerNode] = {
            index: make_owner_node(
                sorted_list,
                tracker=tracker,
                include_position=include_position,
                columnar=columnar,
            )
            for index, sorted_list in zip(list_indices, lists)
        }
        self._sole = list_indices[0] if len(list_indices) == 1 else None
        self.op_counts: Counter = Counter()
        self.latency = LatencyReservoir(latency_sample_k)
        # Per hosted list: op count and summed service seconds — the
        # latency *mass* feedback-driven placement rebalancing needs.
        self.list_ops: Counter = Counter()
        self.list_seconds: dict[int, float] = {
            index: 0.0 for index in list_indices
        }

    @property
    def hosted(self) -> tuple[int, ...]:
        """Global indices of the hosted lists, ascending."""
        return tuple(sorted(self._nodes))

    def node_for(self, index: int) -> ListOwnerNode:
        """The node serving global list ``index``."""
        node = self._nodes.get(index)
        if node is None:
            raise ProtocolError(
                f"list {index} is not hosted here (hosted: {self.hosted})"
            )
        return node

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def handle(self, kind: str, payload: dict) -> dict:
        """Serve one frame (single op, ``multi``, metrics, or reset)."""
        payload = payload or {}
        if kind == "multi":
            self.op_counts["multi"] += 1
            return {
                "results": [
                    self._dispatch(op.get("kind"), op.get("payload") or {})
                    for op in payload["ops"]
                ]
            }
        return self._dispatch(kind, payload)

    def _dispatch(self, kind: str, payload: dict) -> dict:
        if kind == "state" and payload.get("metrics"):
            return self.metrics()
        if kind == "reset" and "list" not in payload:
            for node in self._nodes.values():
                node.reset(payload.get("session", DEFAULT_SESSION))
            self.op_counts["reset"] += 1
            return {}
        index, node = self._route(payload)
        started = time.perf_counter()
        response = node.handle(kind, payload)
        elapsed = time.perf_counter() - started
        self.latency.record(elapsed)
        self.op_counts[kind] += 1
        self.list_ops[index] += 1
        self.list_seconds[index] = self.list_seconds.get(index, 0.0) + elapsed
        return response

    def _route(self, payload: dict) -> tuple[int, ListOwnerNode]:
        # Read, don't pop: payloads are sized for byte accounting after
        # dispatch, and nodes ignore the routing field.
        index = payload.get("list", self._sole)
        if index is None:
            raise ProtocolError(
                f"multi-list owner needs a 'list' field (hosted: {self.hosted})"
            )
        return index, self.node_for(index)

    def metrics(self) -> dict:
        """The stats endpoint: per-kind op counts + latency quantiles.

        ``per_list`` reports every hosted list (zero-op lists included,
        so a rebalancer sees the whole hosted set, not just the hot
        part): op count and summed service seconds — the observed
        latency mass :func:`repro.distributed.placement.rebalance_placement`
        balances across owners.
        """
        return {
            "lists": list(self.hosted),
            "ops": dict(self.op_counts),
            "latency": self.latency.quantiles(),
            "per_list": {
                str(index): {
                    "ops": int(self.list_ops.get(index, 0)),
                    "seconds": float(self.list_seconds.get(index, 0.0)),
                }
                for index in self.hosted
            },
        }
