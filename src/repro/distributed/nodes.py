"""List-owner nodes.

Each node owns one sorted list and serves the three access modes over the
network.  For BPA-family queries it also maintains the list's best
position locally (paper Section 5: "the best positions are managed by the
list owners") and piggybacks the best-position local score onto responses
whenever an access changed it — that is BPA2's step 3.

Supported request kinds:

========================  ====================================================
``sorted_next``           next entry under sorted access
``random_lookup``         ``{"item": id}`` → local score (+ position when
                          ``include_position`` was enabled, as BPA needs)
``random_lookup_many``    ``{"items": [ids]}`` → all their scores in one
                          message (the batched transport's round lookup)
``sorted_block``          ``{"count": b}`` → the next up-to-``b`` entries
                          under sorted access in one message (the block
                          variants' sorted wave; clipped at the list end)
``direct_next``           entry at ``bp + 1`` (BPA2's direct access)
``direct_step``           ``{"items": [ids]}`` → the pending lookups for
                          ``items`` followed by one direct access, in one
                          message (the batched transport's BPA2 step)
``direct_block``          ``{"items": [ids], "count": b}`` → the pending
                          lookups, then up to ``b`` direct accesses, each
                          at the (possibly advanced) best position + 1
                          (the block BPA2 round step)
``state``                 → the session's best position and access tally
                          (remote transports read end-of-query state
                          through this instead of peeking at objects)
``get_scores_above``      ``{"threshold": t}`` → all entries scoring >= t
                          (TPUT phase 2 bulk fetch)
``top``                   ``{"count": c}`` → the first c entries (TPUT
                          phase 1 bulk fetch)
``reset``                 clear per-query state
========================  ====================================================

Concurrent queries: every request may carry a ``"session"`` id.  Each
session gets its own sorted-access cursor, access tally and best-position
tracker, so interleaved queries against the same owner do not disturb
each other (see :class:`_Session`).  Requests without a session id share
the default session, preserving the single-query API.
"""

from __future__ import annotations

from repro.core.best_position import BestPositionTracker, make_tracker
from repro.errors import ProtocolError, UnknownItemError
from repro.lists.accessor import ListAccessor, SortedListLike
from repro.types import Position, Score

#: Session id used when a request does not specify one.
DEFAULT_SESSION = "default"


class _Session:
    """Per-query state at one owner: cursor/tally + best positions."""

    __slots__ = ("accessor", "tracker")

    def __init__(self, sorted_list: SortedListLike, tracker_kind: str) -> None:
        self.accessor = ListAccessor(sorted_list)
        self.tracker: BestPositionTracker = make_tracker(
            tracker_kind, len(sorted_list)
        )


class ListOwnerNode:
    """One list owner in the simulated distributed system.

    Args:
        sorted_list: the list this node owns (any backend
            satisfying :class:`repro.lists.accessor.SortedListLike` —
            plain :class:`~repro.lists.sorted_list.SortedList` or columnar).
        tracker: best-position structure kind (``"bitarray"`` default).
        include_position: ship item positions in ``random_lookup``
            responses (BPA needs them at the originator; BPA2 does not,
            which is exactly its communication saving).
    """

    def __init__(
        self,
        sorted_list: SortedListLike,
        *,
        tracker: str = "bitarray",
        include_position: bool = False,
    ) -> None:
        self._list = sorted_list
        self._tracker_kind = tracker
        self._include_position = include_position
        self._sessions: dict[str, _Session] = {}
        self._session_for(DEFAULT_SESSION)

    def _session_for(self, session_id: str) -> _Session:
        session = self._sessions.get(session_id)
        if session is None:
            session = _Session(self._list, self._tracker_kind)
            self._sessions[session_id] = session
        return session

    @property
    def _accessor(self) -> ListAccessor:
        # Default-session accessor; kept as the public single-query view.
        return self._sessions[DEFAULT_SESSION].accessor

    @property
    def _tracker(self) -> BestPositionTracker:
        return self._sessions[DEFAULT_SESSION].tracker

    # ------------------------------------------------------------------
    # Owner-side state (default-session views, used by the drivers)
    # ------------------------------------------------------------------

    @property
    def accessor(self) -> ListAccessor:
        """The metered accessor (for post-run access accounting)."""
        return self._accessor

    @property
    def best_position(self) -> Position:
        """The locally managed best position (default session)."""
        return self._tracker.best_position

    def best_position_score(self, session: str = DEFAULT_SESSION) -> Score:
        """Local score at the best position (inf while nothing is seen)."""
        bp = self._session_for(session).tracker.best_position
        if bp == 0:
            return float("inf")
        return self._list.score_at(bp)

    def session_tally(self, session: str):
        """Access tally of one session (for per-query accounting)."""
        return self._session_for(session).accessor.tally

    @property
    def active_sessions(self) -> tuple[str, ...]:
        """Ids of all sessions this owner has seen."""
        return tuple(self._sessions)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def handle(self, kind: str, payload: dict) -> dict:
        """Serve one request (see module docstring for the protocol)."""
        session = self._session_for(payload.get("session", DEFAULT_SESSION))
        if kind == "sorted_next":
            return self._sorted_next(session)
        if kind == "random_lookup":
            return self._random_lookup(session, payload["item"])
        if kind == "random_lookup_many":
            return self._random_lookup_many(session, payload["items"])
        if kind == "sorted_block":
            return self._sorted_block(session, payload["count"])
        if kind == "direct_next":
            return self._direct_next(session)
        if kind == "direct_step":
            return self._direct_step(session, payload["items"])
        if kind == "direct_block":
            return self._direct_block(
                session, payload.get("items", []), payload["count"]
            )
        if kind == "state":
            return self._state(session)
        if kind == "top":
            return self._top(session, payload["count"])
        if kind == "get_scores_above":
            return self._get_scores_above(session, payload["threshold"])
        if kind == "reset":
            self.reset(payload.get("session", DEFAULT_SESSION))
            return {}
        raise ProtocolError(f"unknown request kind: {kind!r}")

    def reset(self, session_id: str = DEFAULT_SESSION) -> None:
        """Clear one session's state (cursor, tally, best position)."""
        self._sessions[session_id] = _Session(self._list, self._tracker_kind)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _sorted_next(self, session: _Session) -> dict:
        entry = session.accessor.sorted_next()
        old_bp = session.tracker.best_position
        session.tracker.mark(entry.position)
        response = {"item": entry.item, "score": entry.score}
        if self._include_position:
            response["position"] = entry.position
        self._piggyback(session, response, old_bp)
        return response

    def _random_lookup(self, session: _Session, item: int) -> dict:
        score, position = session.accessor.random_lookup(item)
        old_bp = session.tracker.best_position
        session.tracker.mark(position)
        response: dict = {"score": score}
        if self._include_position:
            response["position"] = position
        self._piggyback(session, response, old_bp)
        return response

    def _random_lookup_many(self, session: _Session, items: list[int]) -> dict:
        """Batched random access: one message for a round's lookups.

        Applies the exact per-item operations of ``random_lookup`` in
        order (one metered access and one tracker mark each), but ships
        a single response; the best-position score is piggybacked once
        if the whole batch advanced it.
        """
        old_bp = session.tracker.best_position
        scores: list[Score] = []
        positions: list[Position] = []
        for item in items:
            score, position = session.accessor.random_lookup(item)
            session.tracker.mark(position)
            scores.append(score)
            positions.append(position)
        response: dict = {"scores": scores}
        if self._include_position:
            response["positions"] = positions
        self._piggyback(session, response, old_bp)
        return response

    def _sorted_block(self, session: _Session, count: int) -> dict:
        """Block sorted access: up to ``count`` entries in one message.

        The per-entry operations (metered accesses and tracker marks)
        are identical to ``count`` ``sorted_next`` requests; only the
        message count changes.  The block is clipped at the list end.
        """
        old_bp = session.tracker.best_position
        entries = session.accessor.sorted_block(count)
        for entry in entries:
            session.tracker.mark(entry.position)
        response: dict = {
            "items": [entry.item for entry in entries],
            "scores": [entry.score for entry in entries],
        }
        if self._include_position:
            response["positions"] = [entry.position for entry in entries]
        self._piggyback(session, response, old_bp)
        return response

    def _direct_block(self, session: _Session, items: list[int], count: int) -> dict:
        """Block BPA2 step: pending lookups, then up to ``count`` direct
        accesses, each at the (possibly advanced) best position + 1.

        ``exhausted`` reports whether the best position reached the list
        end while serving, so the originator can stop planning steps for
        this list without an extra probe message.
        """
        old_bp = session.tracker.best_position
        scores: list[Score] = []
        for item in items:
            score, position = session.accessor.random_lookup(item)
            session.tracker.mark(position)
            scores.append(score)
        entries: list[tuple[int, Score]] = []
        for _ in range(count):
            position = session.tracker.best_position + 1
            if position > len(session.accessor):
                break
            entry = session.accessor.direct_at(position)
            session.tracker.mark(entry.position)
            entries.append((entry.item, entry.score))
        response: dict = {
            "scores": scores,
            "entries": entries,
            "exhausted": session.tracker.best_position
            >= len(session.accessor),
        }
        self._piggyback(session, response, old_bp)
        return response

    def _state(self, session: _Session) -> dict:
        """End-of-query state: best position plus the access tally."""
        tally = session.accessor.tally
        return {
            "best_position": session.tracker.best_position,
            "sorted": tally.sorted,
            "random": tally.random,
            "direct": tally.direct,
        }

    def _direct_next(self, session: _Session) -> dict:
        position = session.tracker.best_position + 1
        if position > len(session.accessor):
            return {"exhausted": True}
        entry = session.accessor.direct_at(position)
        old_bp = session.tracker.best_position
        session.tracker.mark(entry.position)
        response = {"item": entry.item, "score": entry.score}
        self._piggyback(session, response, old_bp)
        return response

    def _direct_step(self, session: _Session, items: list[int]) -> dict:
        """BPA2 round step: pending lookups, then one direct access.

        The per-item operations (and hence this owner's best-position
        walk, tally and piggyback points) are identical to receiving
        ``len(items)`` ``random_lookup`` requests followed by one
        ``direct_next`` — only the message count changes.
        """
        old_bp = session.tracker.best_position
        scores: list[Score] = []
        for item in items:
            score, position = session.accessor.random_lookup(item)
            session.tracker.mark(position)
            scores.append(score)
        response: dict = {"scores": scores}
        position = session.tracker.best_position + 1
        if position > len(session.accessor):
            response["exhausted"] = True
        else:
            entry = session.accessor.direct_at(position)
            session.tracker.mark(entry.position)
            response["item"] = entry.item
            response["score"] = entry.score
        self._piggyback(session, response, old_bp)
        return response

    def _top(self, session: _Session, count: int) -> dict:
        """TPUT phase 1: the first ``count`` entries in one message."""
        count = min(count, len(session.accessor))
        entries = []
        for _ in range(count):
            entry = session.accessor.sorted_next()
            entries.append((entry.item, entry.score))
        return {"entries": entries}

    def _get_scores_above(self, session: _Session, threshold: float) -> dict:
        """TPUT phase 2: every entry scoring at least ``threshold``.

        Continues sorted access from the current cursor; entries already
        shipped in phase 1 are not repeated.
        """
        entries = []
        while not session.accessor.exhausted:
            entry = session.accessor.sorted_next()
            if entry.score < threshold:
                break
            entries.append((entry.item, entry.score))
        return {"entries": entries}

    def _piggyback(self, session: _Session, response: dict, old_bp: Position) -> None:
        """Attach the best-position score when the access advanced it."""
        new_bp = session.tracker.best_position
        if new_bp != old_bp:
            response["bp_score"] = self._list.score_at(new_bp)


class ColumnarOwnerNode(ListOwnerNode):
    """A list owner serving batched ops straight from columnar arrays.

    Drop-in for :class:`ListOwnerNode` over a source with vectorized
    ``lookup_many``/``block`` (a :class:`~repro.columnar.ColumnarList`):
    ``sorted_block`` responses come from array slices via one
    ``tolist`` instead of per-entry :class:`ListEntry` boxing, and the
    lookup halves of ``random_lookup_many``/``direct_step``/
    ``direct_block`` become one NumPy gather each.  Responses, tallies,
    tracker walks and piggyback points are bit-identical to the
    per-entry path — ``tests/unit/test_owner_daemon.py`` drives both
    node classes through identical op sequences to prove it.  A batch
    containing an unknown item replays through the scalar handler so
    the partial tally and marks fail at the same point.
    """

    def __init__(
        self,
        sorted_list: SortedListLike,
        *,
        tracker: str = "bitarray",
        include_position: bool = False,
    ) -> None:
        for attr in ("lookup_many", "block"):
            if not hasattr(sorted_list, attr):
                raise TypeError(
                    f"{type(sorted_list).__name__} has no vectorized "
                    f"{attr!r}; use ListOwnerNode for per-entry sources"
                )
        super().__init__(
            sorted_list, tracker=tracker, include_position=include_position
        )

    def _gather(self, session: _Session, items: list[int]):
        """One vectorized lookup batch, metered like the scalar loop.

        Returns ``(scores, positions)`` as plain lists and marks every
        position, or ``None`` if any item is unknown (the caller then
        replays through the scalar handler for exact partial metering).
        """
        try:
            scores, positions = self._list.lookup_many(items)
        except UnknownItemError:
            return None
        session.accessor.tally.random += len(items)
        scores = scores.tolist()
        positions = positions.tolist()
        for position in positions:
            session.tracker.mark(position)
        return scores, positions

    def _random_lookup_many(self, session: _Session, items: list[int]) -> dict:
        old_bp = session.tracker.best_position
        gathered = self._gather(session, items)
        if gathered is None:
            return super()._random_lookup_many(session, items)
        scores, positions = gathered
        response: dict = {"scores": scores}
        if self._include_position:
            response["positions"] = positions
        self._piggyback(session, response, old_bp)
        return response

    def _sorted_block(self, session: _Session, count: int) -> dict:
        old_bp = session.tracker.best_position
        positions, items, scores = session.accessor.sorted_block_raw(count)
        for position in positions:
            session.tracker.mark(position)
        response: dict = {"items": items, "scores": scores}
        if self._include_position:
            response["positions"] = positions
        self._piggyback(session, response, old_bp)
        return response

    def _direct_step(self, session: _Session, items: list[int]) -> dict:
        old_bp = session.tracker.best_position
        gathered = self._gather(session, items) if items else ([], [])
        if gathered is None:
            return super()._direct_step(session, items)
        response: dict = {"scores": gathered[0]}
        position = session.tracker.best_position + 1
        if position > len(session.accessor):
            response["exhausted"] = True
        else:
            entry = session.accessor.direct_at(position)
            session.tracker.mark(entry.position)
            response["item"] = entry.item
            response["score"] = entry.score
        self._piggyback(session, response, old_bp)
        return response

    def _direct_block(self, session: _Session, items: list[int], count: int) -> dict:
        old_bp = session.tracker.best_position
        gathered = self._gather(session, items) if items else ([], [])
        if gathered is None:
            return super()._direct_block(session, items, count)
        entries: list[tuple[int, Score]] = []
        for _ in range(count):
            position = session.tracker.best_position + 1
            if position > len(session.accessor):
                break
            entry = session.accessor.direct_at(position)
            session.tracker.mark(entry.position)
            entries.append((entry.item, entry.score))
        response: dict = {
            "scores": gathered[0],
            "entries": entries,
            "exhausted": session.tracker.best_position
            >= len(session.accessor),
        }
        self._piggyback(session, response, old_bp)
        return response
