"""The distributed-transport benchmark behind ``repro dist-bench``.

Measures the three claims the round-plan execution engine makes:

* **Bytes/messages.**  For each of TA/BPA/BPA2, the same query runs over
  the simulated network under the old per-entry protocol and under the
  batched protocol, plus on the local columnar backend and the reference
  single-node implementation.  All answers (and their access tallies)
  must be identical — the benchmark raises otherwise — and the report
  records the message/byte reduction batch achieves over per-entry,
  alongside the best-position traffic BPA ships and BPA2 avoids.
* **Pipelined wall-clock.**  Over the *real socket transport*
  (multi-process owners, length-prefixed TCP frames), each driver runs
  under the batched protocol and the pipelined protocol — identical
  messages and bytes, but the pipelined waves overlap the per-owner
  round trips, and the report records wall-clock per query for both,
  per-entry rounds and block rounds alike.
* **Async throughput.**  A Zipf-popular workload replays through one
  :class:`repro.service.QueryService` twice: serially via
  ``submit_many`` and concurrently via ``gather_many`` (AIMD-adaptive
  admission).  Answers and cache-hit counts must match; the report
  records both throughputs.

``write_report`` lands the JSON at ``reports/distributed_speedup.json``
(the CI smoke artifact).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen.base import make_generator
from repro.distributed.algorithms import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
)
from repro.distributed.socket_transport import SocketCluster
from repro.distributed.transport import NetworkBackend
from repro.exec.drivers import DRIVERS as _ENGINE_DRIVERS
from repro.scoring import SUM

_DRIVERS = (("ta", DistributedTA), ("bpa", DistributedBPA), ("bpa2", DistributedBPA2))


_NET_KEYS = ("messages", "bytes", "rounds", "bp_messages", "bp_bytes")


def transport_benchmark(
    *,
    n: int = 2_000,
    m: int = 5,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
    protocols: tuple[str, ...] = ("entry", "batch"),
) -> dict:
    """Simulated-network wire costs per protocol for the three drivers.

    Each requested protocol's run (plus the local columnar transport,
    always) is verified item- and tally-identical to the reference
    single-node algorithm; the entry-vs-batch reductions are reported
    when both protocols were measured.
    """
    database = make_generator(generator).generate(n, m, seed=seed)
    columnar = ColumnarDatabase.from_database(database)
    per_driver: dict[str, dict] = {}
    for name, cls in _DRIVERS:
        reference = get_algorithm(name).run(database, k, SUM)
        runs = {
            protocol: cls(protocol=protocol).run(columnar, k, SUM)
            for protocol in protocols
        }
        runs["local"] = cls(transport="local").run(columnar, k, SUM)
        for label, result in runs.items():
            if result.items != reference.items or result.tally != reference.tally:
                raise AssertionError(
                    f"{name}/{label} diverges from the reference — this is a bug"
                )
        row: dict = {
            "accesses": reference.tally.total,
            "results_identical_to_reference": True,
        }
        for protocol in protocols:
            net = runs[protocol].extras["network"]
            row[protocol] = {key: net[key] for key in _NET_KEYS}
        if "entry" in row and "batch" in row:
            row["message_reduction"] = (
                1.0 - row["batch"]["messages"] / row["entry"]["messages"]
            )
            row["bytes_reduction"] = (
                1.0 - row["batch"]["bytes"] / row["entry"]["bytes"]
            )
        per_driver[name] = row
    return {
        "config": {"n": n, "m": m, "k": k, "generator": generator, "seed": seed},
        "protocols": list(protocols),
        "drivers": per_driver,
    }


def _run_over_socket(cluster, fabric, name, protocol, k, *, block_width=1):
    """One metered query over a warm socket cluster.

    Resets every owner's per-query state and the fabric counters, then
    drives the engine directly (no per-query process spawn), so the
    measured wall-clock is the query, not cluster setup.
    """
    for owner in range(cluster.placement.owners):
        fabric.request(f"owner/{owner}", "reset")
    fabric.reset_stats()
    backend = NetworkBackend.remote(
        fabric,
        m=cluster.m,
        n=cluster.n,
        include_position=cluster.include_position,
        protocol=protocol,
        placement=cluster.placement,
    )
    driver = _ENGINE_DRIVERS[name if block_width == 1 else f"{name}-block"]
    kwargs = {} if block_width == 1 else {"width": block_width}
    started = time.perf_counter()
    outcome = driver(backend, k, SUM, **kwargs)
    seconds = time.perf_counter() - started
    return outcome, backend.total_tally(), fabric.stats, seconds


def socket_benchmark(
    *,
    n: int = 2_000,
    m: int = 5,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
    repeats: int = 3,
    block_width: int = 8,
    protocols: tuple[str, ...] = ("batch", "pipelined"),
) -> dict:
    """Batched vs pipelined wall-clock over the real TCP transport.

    Every run is verified item- and tally-identical to the reference
    single-node algorithm (classic rounds) or the registered block
    variant (block rounds); message counts between the two protocols
    must match exactly — the saving is wall-clock only.  Per
    driver/width, each protocol runs ``repeats`` times on a warm
    cluster and the best time is kept.
    """
    database = make_generator(generator).generate(n, m, seed=seed)
    columnar = ColumnarDatabase.from_database(database)
    rows: dict[str, dict] = {}
    for name, _cls in _DRIVERS:
        for width in dict.fromkeys((1, block_width)):
            label = name if width == 1 else f"{name}-block{width}"
            reference = get_algorithm(
                name if width == 1 else f"{name}-block",
                **({} if width == 1 else {"width": width}),
            ).run(database, k, SUM)
            with SocketCluster(
                columnar, include_position=(name == "bpa")
            ) as cluster, cluster.connect() as fabric:
                cells: dict[str, dict] = {}
                for protocol in protocols:
                    best = None
                    for _ in range(max(1, repeats)):
                        outcome, tally, stats, seconds = _run_over_socket(
                            cluster, fabric, name, protocol, k,
                            block_width=width,
                        )
                        if (
                            outcome.items != reference.items
                            or tally != reference.tally
                            or outcome.rounds != reference.rounds
                        ):
                            raise AssertionError(
                                f"{label}/{protocol} over sockets diverges "
                                "from the reference — this is a bug"
                            )
                        if best is None or seconds < best["seconds"]:
                            best = {
                                "seconds": seconds,
                                "messages": stats.messages,
                                "bytes": stats.bytes,
                                "rounds": stats.rounds,
                            }
                    cells[protocol] = best
            row: dict = {"accesses": reference.tally.total, **cells}
            if "batch" in cells and "pipelined" in cells:
                row["messages_equal"] = (
                    cells["batch"]["messages"] == cells["pipelined"]["messages"]
                    and cells["batch"]["bytes"] == cells["pipelined"]["bytes"]
                )
                row["pipelined_wall_speedup"] = (
                    cells["batch"]["seconds"] / cells["pipelined"]["seconds"]
                    if cells["pipelined"]["seconds"] > 0
                    else 0.0
                )
            rows[label] = row
    return {
        "config": {
            "n": n,
            "m": m,
            "k": k,
            "generator": generator,
            "seed": seed,
            "repeats": repeats,
            "block_width": block_width,
            "note": (
                "wall-clock per query on a warm cluster (best of repeats); "
                "pipelining overlaps per-owner round trips, so its win "
                "grows with CPU count and per-message latency — on a "
                "single-CPU host only the syscall waits overlap"
            ),
        },
        "drivers": rows,
    }


def async_benchmark(
    *,
    n: int = 5_000,
    m: int = 3,
    queries: int = 120,
    distinct: int = 15,
    k_max: int = 20,
    concurrency: int = 8,
    seed: int = 42,
    generator: str = "uniform",
) -> dict:
    """Serial ``submit_many`` vs concurrent ``gather_many`` throughput."""
    from repro.service.service import QueryService
    from repro.service.workload import WorkloadConfig, build_database, build_workload

    config = WorkloadConfig(
        generator=generator,
        n=n,
        m=m,
        seed=seed,
        queries=queries,
        distinct=distinct,
        k_max=k_max,
    )
    database = build_database(config)
    workload = build_workload(config)

    with QueryService(database, shards=1, pool="serial") as service:
        started = time.perf_counter()
        serial_results = service.submit_many(workload)
        serial_seconds = time.perf_counter() - started
        serial_hits = service.counters.cache_hits
        serial_executions = service.counters.executions

    with QueryService(database, shards=1, pool="serial") as service:
        started = time.perf_counter()
        async_results = asyncio.run(
            service.gather_many(workload, concurrency=concurrency)
        )
        async_seconds = time.perf_counter() - started
        async_hits = service.counters.cache_hits
        async_executions = service.counters.executions

    identical = [
        (r.item_ids, r.scores) for r in serial_results
    ] == [(r.item_ids, r.scores) for r in async_results]
    if not identical:
        raise AssertionError("async replay diverges from serial — this is a bug")
    serial_qps = len(workload) / serial_seconds if serial_seconds > 0 else 0.0
    async_qps = len(workload) / async_seconds if async_seconds > 0 else 0.0
    return {
        "config": {
            "n": n,
            "m": m,
            "queries": queries,
            "distinct": distinct,
            "k_max": k_max,
            "concurrency": concurrency,
            "generator": generator,
            "seed": seed,
        },
        "serial": {
            "seconds": serial_seconds,
            "queries_per_second": serial_qps,
            "cache_hits": serial_hits,
            "executions": serial_executions,
        },
        "async": {
            "seconds": async_seconds,
            "queries_per_second": async_qps,
            "cache_hits": async_hits,
            "executions": async_executions,
            # AIMD admission control: the largest window the controller
            # opened during the replay (0 if everything was cached).
            "max_concurrency_window": max(
                (r.stats.concurrency_window for r in async_results),
                default=0,
            ),
        },
        "async_vs_serial_speedup": async_qps / serial_qps if serial_qps else 0.0,
        "cache_stats_identical": (
            serial_hits == async_hits and serial_executions == async_executions
        ),
        "results_identical": identical,
    }


def distributed_speedup_benchmark(
    *,
    n: int = 2_000,
    m: int = 5,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
    async_queries: int = 120,
    concurrency: int = 8,
    transports: tuple[str, ...] = ("simulated", "socket"),
    protocols: tuple[str, ...] = ("entry", "batch", "pipelined"),
    socket_repeats: int = 3,
    block_width: int = 8,
) -> dict:
    """The full ``reports/distributed_speedup.json`` payload.

    All sections run against the same ``n``/``m``/``generator``
    configuration, so the CLI's sizing flags (and the ``--smoke``
    clamp) govern the socket and async sections too.  ``transports``
    and ``protocols`` filter which rows are measured (the socket
    section uses the batch-family protocols only — per-entry RPC over
    real sockets measures nothing new at great expense).
    """
    report: dict = {
        "benchmark": "distributed_speedup",
        "cpu_count": os.cpu_count(),
    }
    if "simulated" in transports:
        report["transport"] = transport_benchmark(
            n=n, m=m, k=k, generator=generator, seed=seed,
            protocols=tuple(protocols),
        )
    # Per-entry RPC over real sockets measures nothing new at great
    # expense, so the socket section covers the batch-family protocols
    # the caller actually requested — and is skipped entirely when the
    # requested protocols exclude both.
    socket_protocols = tuple(p for p in protocols if p in ("batch", "pipelined"))
    if "socket" in transports and socket_protocols:
        report["socket"] = socket_benchmark(
            n=n,
            m=m,
            k=k,
            generator=generator,
            seed=seed,
            repeats=socket_repeats,
            block_width=block_width,
            protocols=socket_protocols,
        )
    report["async_service"] = async_benchmark(
        n=n,
        m=m,
        generator=generator,
        queries=async_queries,
        concurrency=concurrency,
        seed=seed,
    )
    return report
