"""The distributed-transport benchmark behind ``repro dist-bench``.

Measures the two claims the unified execution core makes:

* **Bytes/messages.**  For each of TA/BPA/BPA2, the same query runs over
  the simulated network under the old per-entry protocol and under the
  batched protocol, plus on the local columnar backend and the reference
  single-node implementation.  All four answers (and their access
  tallies) must be identical — the benchmark raises otherwise — and the
  report records the message/byte reduction batch achieves over
  per-entry, alongside the best-position traffic BPA ships and BPA2
  avoids.
* **Async throughput.**  A Zipf-popular workload replays through one
  :class:`repro.service.QueryService` twice: serially via
  ``submit_many`` and concurrently via ``gather_many``.  Answers and
  cache-hit counts must match; the report records both throughputs.

``write_report`` lands the JSON at ``reports/distributed_speedup.json``
(the CI smoke artifact).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.algorithms.base import get_algorithm
from repro.columnar import ColumnarDatabase
from repro.datagen.base import make_generator
from repro.distributed.algorithms import (
    DistributedBPA,
    DistributedBPA2,
    DistributedTA,
)
from repro.scoring import SUM

_DRIVERS = (("ta", DistributedTA), ("bpa", DistributedBPA), ("bpa2", DistributedBPA2))


def transport_benchmark(
    *,
    n: int = 2_000,
    m: int = 5,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
) -> dict:
    """Entry-vs-batch wire costs for the three drivers on one database."""
    database = make_generator(generator).generate(n, m, seed=seed)
    columnar = ColumnarDatabase.from_database(database)
    per_driver: dict[str, dict] = {}
    for name, cls in _DRIVERS:
        reference = get_algorithm(name).run(database, k, SUM)
        entry = cls(protocol="entry").run(columnar, k, SUM)
        batch = cls(protocol="batch").run(columnar, k, SUM)
        local = cls(transport="local").run(columnar, k, SUM)
        for label, result in (("entry", entry), ("batch", batch), ("local", local)):
            if result.items != reference.items or result.tally != reference.tally:
                raise AssertionError(
                    f"{name}/{label} diverges from the reference — this is a bug"
                )
        entry_net, batch_net = entry.extras["network"], batch.extras["network"]
        per_driver[name] = {
            "accesses": reference.tally.total,
            "entry": {key: entry_net[key] for key in ("messages", "bytes", "rounds", "bp_messages", "bp_bytes")},
            "batch": {key: batch_net[key] for key in ("messages", "bytes", "rounds", "bp_messages", "bp_bytes")},
            "message_reduction": 1.0 - batch_net["messages"] / entry_net["messages"],
            "bytes_reduction": 1.0 - batch_net["bytes"] / entry_net["bytes"],
            "results_identical_to_reference": True,
        }
    return {
        "config": {"n": n, "m": m, "k": k, "generator": generator, "seed": seed},
        "drivers": per_driver,
    }


def async_benchmark(
    *,
    n: int = 5_000,
    m: int = 3,
    queries: int = 120,
    distinct: int = 15,
    k_max: int = 20,
    concurrency: int = 8,
    seed: int = 42,
    generator: str = "uniform",
) -> dict:
    """Serial ``submit_many`` vs concurrent ``gather_many`` throughput."""
    from repro.service.service import QueryService
    from repro.service.workload import WorkloadConfig, build_database, build_workload

    config = WorkloadConfig(
        generator=generator,
        n=n,
        m=m,
        seed=seed,
        queries=queries,
        distinct=distinct,
        k_max=k_max,
    )
    database = build_database(config)
    workload = build_workload(config)

    with QueryService(database, shards=1, pool="serial") as service:
        started = time.perf_counter()
        serial_results = service.submit_many(workload)
        serial_seconds = time.perf_counter() - started
        serial_hits = service.counters.cache_hits
        serial_executions = service.counters.executions

    with QueryService(database, shards=1, pool="serial") as service:
        started = time.perf_counter()
        async_results = asyncio.run(
            service.gather_many(workload, concurrency=concurrency)
        )
        async_seconds = time.perf_counter() - started
        async_hits = service.counters.cache_hits
        async_executions = service.counters.executions

    identical = [
        (r.item_ids, r.scores) for r in serial_results
    ] == [(r.item_ids, r.scores) for r in async_results]
    if not identical:
        raise AssertionError("async replay diverges from serial — this is a bug")
    serial_qps = len(workload) / serial_seconds if serial_seconds > 0 else 0.0
    async_qps = len(workload) / async_seconds if async_seconds > 0 else 0.0
    return {
        "config": {
            "n": n,
            "m": m,
            "queries": queries,
            "distinct": distinct,
            "k_max": k_max,
            "concurrency": concurrency,
            "generator": generator,
            "seed": seed,
        },
        "serial": {
            "seconds": serial_seconds,
            "queries_per_second": serial_qps,
            "cache_hits": serial_hits,
            "executions": serial_executions,
        },
        "async": {
            "seconds": async_seconds,
            "queries_per_second": async_qps,
            "cache_hits": async_hits,
            "executions": async_executions,
        },
        "async_vs_serial_speedup": async_qps / serial_qps if serial_qps else 0.0,
        "cache_stats_identical": (
            serial_hits == async_hits and serial_executions == async_executions
        ),
        "results_identical": identical,
    }


def distributed_speedup_benchmark(
    *,
    n: int = 2_000,
    m: int = 5,
    k: int = 10,
    generator: str = "uniform",
    seed: int = 42,
    async_queries: int = 120,
    concurrency: int = 8,
) -> dict:
    """The full ``reports/distributed_speedup.json`` payload.

    Both halves run against the same ``n``/``m``/``generator``
    configuration, so the CLI's sizing flags (and the ``--smoke``
    clamp) govern the async replay too.
    """
    return {
        "benchmark": "distributed_speedup",
        "cpu_count": os.cpu_count(),
        "transport": transport_benchmark(
            n=n, m=m, k=k, generator=generator, seed=seed
        ),
        "async_service": async_benchmark(
            n=n,
            m=m,
            generator=generator,
            queries=async_queries,
            concurrency=concurrency,
            seed=seed,
        ),
    }
