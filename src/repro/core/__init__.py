"""The paper's contribution: BPA, BPA2 and best-position management.

* :class:`BestPositionAlgorithm` (BPA, Section 4) — TA with a smarter
  stopping rule built from *best positions*;
* :class:`BestPositionAlgorithm2` (BPA2, Section 5) — replaces sorted
  access with direct access at ``bp + 1`` so no list position is ever
  read twice;
* :mod:`repro.core.best_position` — the three seen-position managers of
  Section 5.2 (naive reference, bit array, B+tree).
"""

from repro.core.best_position import (
    BestPositionTracker,
    BitArrayTracker,
    BPlusTreeTracker,
    NaiveTracker,
    make_tracker,
)
from repro.core.bpa import BestPositionAlgorithm
from repro.core.bpa2 import BestPositionAlgorithm2

__all__ = [
    "BestPositionAlgorithm",
    "BestPositionAlgorithm2",
    "BestPositionTracker",
    "BitArrayTracker",
    "BPlusTreeTracker",
    "NaiveTracker",
    "make_tracker",
]
