"""Best-position management (paper Section 5.2).

The *best position* of a list is the greatest seen position ``bp`` such
that every position ``1..bp`` has been seen (under any access mode).
After each access, the list owner must recompute ``bp``.  Three
implementations, as in the paper:

* :class:`NaiveTracker` — a plain set with recomputation by walking from
  position 1; the O(u^2)-overall reference the paper dismisses;
* :class:`BitArrayTracker` — Section 5.2.1: an ``n``-bit array plus a
  pointer that only ever moves forward (O(n) total, O(n/u) amortized);
* :class:`BPlusTreeTracker` — Section 5.2.2: seen positions in a B+tree
  whose linked leaves let ``bp`` advance cell-by-cell (O(log u) amortized
  including the insert).

All three expose the same tiny interface (:class:`BestPositionTracker`)
and are interchangeable inside BPA/BPA2; the test suite checks they agree
on random access patterns, and a dedicated bench compares their
management cost as the paper's Section 5.2 discussion predicts.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.btree import BPlusTree
from repro.errors import InvalidPositionError
from repro.types import Position


@runtime_checkable
class BestPositionTracker(Protocol):
    """Seen-position bookkeeping for one list."""

    def mark(self, position: Position) -> None:
        """Record that ``position`` (1-based) has been seen."""
        ...

    @property
    def best_position(self) -> Position:
        """Current best position (0 when position 1 is still unseen)."""
        ...

    def is_seen(self, position: Position) -> bool:
        """Whether ``position`` has been marked."""
        ...

    @property
    def seen_count(self) -> int:
        """Number of distinct positions marked so far."""
        ...


class NaiveTracker:
    """Reference implementation: a set, recomputed by forward walking.

    Finding the best position walks from the current ``bp`` — the simple
    method the paper describes as inefficient.  Used as the behavioral
    oracle in tests.
    """

    __slots__ = ("_n", "_seen")

    def __init__(self, n: int) -> None:
        self._n = n
        self._seen: set[Position] = set()

    def mark(self, position: Position) -> None:
        self._check(position)
        self._seen.add(position)

    @property
    def best_position(self) -> Position:
        bp = 0
        while bp + 1 in self._seen:
            bp += 1
        return bp

    def is_seen(self, position: Position) -> bool:
        return position in self._seen

    @property
    def seen_count(self) -> int:
        return len(self._seen)

    def _check(self, position: Position) -> None:
        if not 1 <= position <= self._n:
            raise InvalidPositionError(
                f"position {position} out of range 1..{self._n}"
            )


class BitArrayTracker:
    """Section 5.2.1: bit array + monotone pointer.

    Mirrors the paper's pseudocode::

        B[j] := 1;
        while (bp < n) and (B[bp + 1] = 1) do bp := bp + 1;

    The pointer moves at most ``n`` times over the whole query, so the
    amortized cost per access is O(n/u).
    """

    __slots__ = ("_n", "_bits", "_bp", "_count")

    def __init__(self, n: int) -> None:
        self._n = n
        self._bits = bytearray(n + 2)  # 1-based; +1 sentinel slot
        self._bp = 0
        self._count = 0

    def mark(self, position: Position) -> None:
        if not 1 <= position <= self._n:
            raise InvalidPositionError(
                f"position {position} out of range 1..{self._n}"
            )
        if not self._bits[position]:
            self._bits[position] = 1
            self._count += 1
        bits = self._bits
        bp = self._bp
        n = self._n
        while bp < n and bits[bp + 1]:
            bp += 1
        self._bp = bp

    @property
    def best_position(self) -> Position:
        return self._bp

    def is_seen(self, position: Position) -> bool:
        return bool(self._bits[position])

    @property
    def seen_count(self) -> int:
        return self._count


class BPlusTreeTracker:
    """Section 5.2.2: seen positions in a B+tree with linked leaves.

    After inserting a seen position, the best-position pointer advances
    along the leaf chain while the next cell holds ``bp + 1`` — the
    paper's::

        while (bp.next != null) and (bp.next.element = bp.element + 1)
            do bp := bp.next;

    Because inserts can split leaves (invalidating raw cell cursors), the
    tracker re-anchors the cursor at the current ``bp`` key before each
    walk; the amortized cost stays O(log u).
    """

    __slots__ = ("_n", "_tree", "_bp")

    def __init__(self, n: int, *, order: int = 32) -> None:
        self._n = n
        self._tree = BPlusTree(order=order)
        self._bp = 0

    def mark(self, position: Position) -> None:
        if not 1 <= position <= self._n:
            raise InvalidPositionError(
                f"position {position} out of range 1..{self._n}"
            )
        if position in self._tree:
            return  # duplicate marks are no-ops
        self._tree.insert(position)
        if position != self._bp + 1:
            return
        # Advance along the linked leaves, exactly as in the paper.
        cell = self._tree.cell_for(position)
        assert cell is not None
        bp = position
        nxt = cell.next
        while nxt is not None and nxt.element == bp + 1:
            bp += 1
            cell = nxt
            nxt = cell.next
        self._bp = bp

    @property
    def best_position(self) -> Position:
        return self._bp

    def is_seen(self, position: Position) -> bool:
        return position in self._tree

    @property
    def seen_count(self) -> int:
        return len(self._tree)


_TRACKERS = {
    "naive": NaiveTracker,
    "bitarray": BitArrayTracker,
    "btree": BPlusTreeTracker,
}


def make_tracker(kind: str, n: int) -> BestPositionTracker:
    """Instantiate a tracker by name: ``naive``, ``bitarray``, ``btree``.

    The paper's experiments use the bit-array approach ("which is simpler
    than the B+tree approach", Section 6.1), and so do BPA/BPA2 here by
    default.
    """
    if kind not in _TRACKERS:
        raise KeyError(f"unknown tracker kind {kind!r}; known: {sorted(_TRACKERS)}")
    return _TRACKERS[kind](n)
