"""BPA — the Best Position Algorithm (paper Section 4).

BPA scans like TA (parallel sorted access + immediate random accesses)
but the query originator additionally maintains, per list, the set of
*seen positions* and their local scores.  The stopping value is the
*best positions overall score*

    lambda = f(s_1(bp_1), ..., s_m(bp_m))

where ``bp_i`` is the greatest seen position of list ``i`` whose whole
prefix ``1..bp_i`` has been seen.  Since every position up to ``bp_i``
has been seen, no unseen item can beat ``lambda`` (Theorem 1), and since
``bp_i >= `` the sorted-access cursor, ``lambda <= `` TA's threshold, so
BPA stops at least as early as TA (Lemma 1) and up to ``m - 1`` times
earlier (Lemma 3).

Access accounting matches TA's (Lemma 2): ``m - 1`` random accesses per
sorted access, repeated for already-seen items unless ``memoize=True``
(an ablation, not the paper's BPA).
"""

from __future__ import annotations

from repro.algorithms.base import TopKAlgorithm, TopKBuffer, register
from repro.core.best_position import make_tracker
from repro.errors import InvalidQueryError
from repro.lists.accessor import DatabaseAccessor
from repro.types import ItemId, Position, Score


@register
class BestPositionAlgorithm(TopKAlgorithm):
    """BPA with pluggable best-position management.

    Args:
        tracker: ``"bitarray"`` (paper's experimental choice, default),
            ``"btree"`` or ``"naive"``.
        memoize: skip the repeat random accesses for already-seen items
            (engineering ablation; the paper's accounting keeps them).
        approximation: Fagin-style theta-approximation applied to BPA's
            stopping rule (stop once k items reach ``lambda / theta``).
            Same guarantee as TA-theta since ``lambda`` bounds every
            unseen item; requires non-negative scores.  ``1.0`` = exact.
    """

    name = "bpa"

    def __init__(
        self,
        *,
        tracker: str = "bitarray",
        memoize: bool = False,
        approximation: float = 1.0,
    ) -> None:
        if approximation < 1.0:
            raise InvalidQueryError(
                f"approximation factor must be >= 1, got {approximation}"
            )
        self._tracker_kind = tracker
        self._memoize = memoize
        self._theta = approximation

    @property
    def tracker_kind(self) -> str:
        """Which best-position structure the query originator uses."""
        return self._tracker_kind

    @property
    def approximation(self) -> float:
        """The theta-approximation factor (1.0 = exact)."""
        return self._theta

    def fast_kernel(self) -> str | None:
        """``"bpa"`` for the exact paper configuration, else ``None``.

        The tracker choice only affects owner-side bookkeeping cost,
        never results, so any tracker qualifies.
        """
        if not self._memoize and self._theta == 1.0:
            return "bpa"
        return None

    def _execute(self, accessor: DatabaseAccessor, k, scoring):
        m = accessor.m
        n = accessor.n
        buffer = TopKBuffer(k)
        overall: dict[ItemId, Score] = {}
        trackers = [make_tracker(self._tracker_kind, n) for _ in range(m)]
        # The query originator maintains the seen positions *and their
        # local scores* (paper, step 1), so lambda needs no extra access.
        seen_scores: list[dict[Position, Score]] = [{} for _ in range(m)]
        position = 0

        def note(list_index: int, pos: Position, score: Score) -> None:
            trackers[list_index].mark(pos)
            seen_scores[list_index][pos] = score

        while True:
            position += 1
            for index, list_accessor in enumerate(accessor.accessors):
                entry = list_accessor.sorted_next()
                note(index, entry.position, entry.score)
                if entry.item in overall:
                    if not self._memoize:
                        # Keep the paper's ar = as*(m-1) accounting; the
                        # probes still reveal (already-known) positions.
                        for other_index, other in enumerate(accessor.accessors):
                            if other_index != index:
                                score, pos = other.random_lookup(entry.item)
                                note(other_index, pos, score)
                    continue
                local_scores: list[Score] = [0.0] * m
                local_scores[index] = entry.score
                for other_index, other in enumerate(accessor.accessors):
                    if other_index == index:
                        continue
                    score, pos = other.random_lookup(entry.item)
                    local_scores[other_index] = score
                    note(other_index, pos, score)
                total = scoring(local_scores)
                overall[entry.item] = total
                buffer.add(entry.item, total)

            best_scores = [
                seen_scores[index][trackers[index].best_position]
                for index in range(m)
            ]
            lam = scoring(best_scores)
            if buffer.all_at_least(lam / self._theta):
                extras = {
                    "lambda": lam,
                    "best_positions": tuple(t.best_position for t in trackers),
                }
                return buffer.ranked(), position, position, extras
            if position >= n:
                extras = {
                    "lambda": lam,
                    "best_positions": tuple(t.best_position for t in trackers),
                }
                return buffer.ranked(), position, position, extras
