"""BPA2 — best positions managed by the list owners (paper Section 5).

BPA2 keeps BPA's stopping rule but changes the access pattern:

* *direct access* replaces sorted access: each round reads position
  ``bp_i + 1`` of every list — always the smallest unseen position, so no
  position is ever read twice (Theorem 5);
* seen positions live with the list owners; the query originator keeps
  only the running top-k set ``Y`` and the ``m`` best-position local
  scores (returned piggybacked whenever an access changes a list's best
  position).

An item surfacing at an unseen position is necessarily brand new (had it
been seen anywhere before, the random accesses would have marked its
position in this list), so every direct access triggers exactly ``m - 1``
random accesses and nothing is ever re-fetched — this is where the
up-to-``(m-1)x`` access savings over BPA come from (Theorems 7 and 8).
"""

from __future__ import annotations

from repro.algorithms.base import TopKAlgorithm, TopKBuffer, register
from repro.core.best_position import BestPositionTracker, make_tracker
from repro.errors import InvalidQueryError
from repro.lists.accessor import ListAccessor
from repro.types import ItemId, Position, Score


class _OwnerSideList:
    """A list owner: the list plus its best-position tracker.

    Wraps the metered accessor; after every access it marks the touched
    position and reports the local score at the (possibly advanced) best
    position — the piggybacked value of the paper's step 3.
    """

    __slots__ = ("accessor", "tracker")

    def __init__(self, accessor: ListAccessor, tracker: BestPositionTracker) -> None:
        self.accessor = accessor
        self.tracker = tracker

    @property
    def best_position(self) -> Position:
        return self.tracker.best_position

    def best_position_score(self) -> Score:
        """Local score at the current best position (owner-side read).

        The owner reads its own list; this is not a query access and is
        not metered — in a deployment the value rides along with the
        access response.
        """
        bp = self.tracker.best_position
        if bp == 0:
            return float("inf")  # nothing seen: no constraint yet
        return self.accessor.source.score_at(bp)

    def direct_next(self):
        """Direct access to the smallest unseen position, ``bp + 1``."""
        entry = self.accessor.direct_at(self.tracker.best_position + 1)
        self.tracker.mark(entry.position)
        return entry

    def random_lookup(self, item: ItemId) -> tuple[Score, Position]:
        """Random access that also marks the revealed position."""
        score, position = self.accessor.random_lookup(item)
        self.tracker.mark(position)
        return score, position


@register
class BestPositionAlgorithm2(TopKAlgorithm):
    """BPA2 with owner-managed best positions.

    Args:
        tracker: best-position structure at each owner (``"bitarray"``
            default, ``"btree"``, ``"naive"``).
        check_every_access: evaluate the stop rule after every single
            direct access instead of once per round (ablation; the paper
            checks per round like TA).
        approximation: Fagin-style theta-approximation (stop once k items
            reach ``lambda / theta``); requires non-negative scores.
            ``1.0`` = exact.
    """

    name = "bpa2"

    def __init__(
        self,
        *,
        tracker: str = "bitarray",
        check_every_access: bool = False,
        approximation: float = 1.0,
    ) -> None:
        if approximation < 1.0:
            raise InvalidQueryError(
                f"approximation factor must be >= 1, got {approximation}"
            )
        self._tracker_kind = tracker
        self._check_every_access = check_every_access
        self._theta = approximation

    @property
    def tracker_kind(self) -> str:
        """Which best-position structure the owners use."""
        return self._tracker_kind

    @property
    def approximation(self) -> float:
        """The theta-approximation factor (1.0 = exact)."""
        return self._theta

    def fast_kernel(self) -> str | None:
        """``"bpa2"`` for the exact paper configuration, else ``None``."""
        if not self._check_every_access and self._theta == 1.0:
            return "bpa2"
        return None

    def _execute(self, accessor, k, scoring):
        m = accessor.m
        n = accessor.n
        owners = [
            _OwnerSideList(list_accessor, make_tracker(self._tracker_kind, n))
            for list_accessor in accessor.accessors
        ]
        buffer = TopKBuffer(k)
        overall: dict[ItemId, Score] = {}
        rounds = 0
        deepest_direct = 0  # largest position read by direct access

        def stop_now() -> bool:
            lam = scoring([owner.best_position_score() for owner in owners])
            return buffer.all_at_least(lam / self._theta)

        while True:
            rounds += 1
            progressed = False
            for index, owner in enumerate(owners):
                if owner.best_position >= n:
                    continue  # this list is fully seen
                entry = owner.direct_next()
                deepest_direct = max(deepest_direct, entry.position)
                progressed = True
                if entry.item not in overall:
                    local_scores: list[Score] = [0.0] * m
                    local_scores[index] = entry.score
                    for other_index, other_owner in enumerate(owners):
                        if other_index == index:
                            continue
                        score, _pos = other_owner.random_lookup(entry.item)
                        local_scores[other_index] = score
                    total = scoring(local_scores)
                    overall[entry.item] = total
                    buffer.add(entry.item, total)
                if self._check_every_access and stop_now():
                    return self._finish(buffer, owners, rounds, deepest_direct, scoring)

            if stop_now():
                return self._finish(buffer, owners, rounds, deepest_direct, scoring)
            if not progressed:
                # Every position of every list is seen; the stop rule must
                # hold now (lambda is the lowest possible overall score).
                return self._finish(buffer, owners, rounds, deepest_direct, scoring)

    @staticmethod
    def _finish(buffer, owners, rounds, deepest_direct, scoring):
        extras = {
            "lambda": scoring([owner.best_position_score() for owner in owners]),
            "best_positions": tuple(owner.best_position for owner in owners),
            # Per-list evidence for Theorem 5: the number of accesses to a
            # list equals the number of distinct positions seen in it iff
            # no position was accessed twice.
            "per_list_accesses": tuple(
                owner.accessor.tally.total for owner in owners
            ),
            "per_list_distinct_positions": tuple(
                owner.tracker.seen_count for owner in owners
            ),
        }
        # Report the deepest directly-read position as the stop position;
        # it matches BPA's stopping position under sorted access (both
        # algorithms stop at the same best position — paper, Section 5.1).
        return buffer.ranked(), rounds, deepest_direct, extras
