"""Common typed primitives shared across the library.

The vocabulary follows the paper:

* an *item* is identified by a non-negative integer id (examples may attach
  human-readable labels through :class:`repro.lists.database.Database`);
* a *position* is the 1-based rank of an item inside one sorted list —
  position 1 holds the highest local score;
* a *local score* is the item's score inside one list, an *overall score*
  is the output of the scoring function over all of its local scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

ItemId = int
Position = int  # 1-based, as in the paper
Score = float


@dataclass(frozen=True, slots=True)
class ScoredItem:
    """An item together with its overall score."""

    item: ItemId
    score: Score

    def __iter__(self) -> Iterator[object]:
        # Allows ``item, score = scored`` unpacking in client code.
        yield self.item
        yield self.score


@dataclass(frozen=True, slots=True)
class ListEntry:
    """One `(item, local_score)` pair at a known position of a list."""

    position: Position
    item: ItemId
    score: Score


@dataclass(slots=True)
class AccessTally:
    """Counts of each access mode performed against the lists.

    The paper distinguishes *sorted* (sequential) access, *random* access
    (lookup of a given item) and, for BPA2, *direct* access (read the entry
    at a given position).  ``AccessTally`` instances are additive so that
    per-list counters can be merged into a per-query total.
    """

    sorted: int = 0
    random: int = 0
    direct: int = 0

    @property
    def total(self) -> int:
        """Total number of accesses of any mode."""
        return self.sorted + self.random + self.direct

    def __add__(self, other: "AccessTally") -> "AccessTally":
        if not isinstance(other, AccessTally):
            return NotImplemented
        return AccessTally(
            sorted=self.sorted + other.sorted,
            random=self.random + other.random,
            direct=self.direct + other.direct,
        )

    def copy(self) -> "AccessTally":
        """Return an independent copy of this tally."""
        return AccessTally(self.sorted, self.random, self.direct)


@dataclass(frozen=True, slots=True)
class CostModel:
    """Unit costs used to turn an :class:`AccessTally` into execution cost.

    The paper's evaluation (Section 6.1) uses ``cs = 1`` and
    ``cr = log2(n)`` and charges each BPA2 direct access like a random
    access.  :meth:`for_database_size` builds exactly that model.

    The *network extension* prices distributed execution the way the
    paper's Section 6.1 metric 2 argues — by messages and payload bytes:
    ``message_cost`` is the per-message overhead and ``byte_cost`` the
    per-payload-byte cost, both in the same units as the access costs
    (zero by default: a purely local model).  The query planner uses
    :meth:`network_cost` to choose transport and wire protocol.
    """

    sorted_cost: float = 1.0
    random_cost: float = 1.0
    direct_cost: float | None = None  # ``None`` means "same as random"
    message_cost: float = 0.0
    byte_cost: float = 0.0

    @classmethod
    def paper(cls, n: int) -> "CostModel":
        """The paper's model for lists of ``n`` items: cs=1, cr=log2(n)."""
        return cls.for_database_size(n)

    @classmethod
    def for_database_size(cls, n: int) -> "CostModel":
        """Build the paper's cost model (``cs=1``, ``cr=log2 n``)."""
        if n < 1:
            raise ValueError(f"database size must be positive, got {n}")
        return cls(sorted_cost=1.0, random_cost=math.log2(n) if n > 1 else 1.0)

    def execution_cost(self, tally: AccessTally) -> float:
        """Execution cost ``as*cs + ar*cr`` (+ direct accesses at cr)."""
        direct_cost = self.random_cost if self.direct_cost is None else self.direct_cost
        return (
            tally.sorted * self.sorted_cost
            + tally.random * self.random_cost
            + tally.direct * direct_cost
        )

    def network_cost(self, messages: int, payload_bytes: int) -> float:
        """Communication cost of shipping this many messages/bytes."""
        return messages * self.message_cost + payload_bytes * self.byte_cost

    def total_cost(
        self, tally: AccessTally, *, messages: int = 0, payload_bytes: int = 0
    ) -> float:
        """Execution plus communication cost of one run."""
        return self.execution_cost(tally) + self.network_cost(
            messages, payload_bytes
        )

    def calibrate(
        self, predicted: float, observed: float, *, blend: float = 0.5
    ) -> float:
        """Blend a model prediction with an observed cost.

        ``blend`` is the weight given to the observation: ``0`` trusts
        the static model entirely, ``1`` trusts the measurement.  The
        feedback loop (:mod:`repro.service.feedback`) uses this to pull
        predicted costs toward EWMA-smoothed runtime observations
        without ever letting one noisy sample own the decision.
        """
        if not 0.0 <= blend <= 1.0:
            raise ValueError(f"blend must be in [0, 1], got {blend}")
        return (1.0 - blend) * predicted + blend * observed


@dataclass(frozen=True, slots=True)
class TopKResult:
    """The answer to a top-k query plus execution statistics.

    Attributes:
        items: the top-k items in descending overall-score order; ties are
            broken by ascending item id so results are deterministic.
        tally: how many sorted/random/direct accesses the run performed.
        rounds: number of parallel access rounds before the stop condition
            fired.  For TA/BPA this equals the stopping *position* under
            sorted access; for BPA2 it is the number of direct-access
            rounds.
        stop_position: the depth under sorted/direct access at which the
            algorithm stopped (same as ``rounds`` for round-based
            algorithms, kept separate for clarity in reports).
        algorithm: name of the algorithm that produced the result.
    """

    items: tuple[ScoredItem, ...]
    tally: AccessTally
    rounds: int
    stop_position: int
    algorithm: str = ""
    extras: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def k(self) -> int:
        """Number of returned items."""
        return len(self.items)

    @property
    def item_ids(self) -> tuple[ItemId, ...]:
        """The returned item ids, best first."""
        return tuple(entry.item for entry in self.items)

    @property
    def scores(self) -> tuple[Score, ...]:
        """The returned overall scores, best first."""
        return tuple(entry.score for entry in self.items)

    def execution_cost(self, model: CostModel) -> float:
        """Execution cost of this run under ``model``."""
        return model.execution_cost(self.tally)

    def same_scores(self, other: "TopKResult", tolerance: float = 1e-9) -> bool:
        """Whether two results agree on the top-k *score multiset*.

        Ties between items with equal overall scores may be resolved
        differently by different (all correct) algorithms, so result
        equivalence is defined on scores, not item ids.
        """
        if self.k != other.k:
            return False
        return all(
            math.isclose(a, b, rel_tol=0.0, abs_tol=tolerance)
            for a, b in zip(self.scores, other.scores)
        )


def rank_items(scores: Sequence[Score]) -> list[ItemId]:
    """Return item ids ``0..n-1`` sorted by (score desc, item id asc).

    This is the canonical tie-breaking used everywhere in the library so
    that sorted lists and expected results are reproducible.
    """
    return sorted(range(len(scores)), key=lambda item: (-scores[item], item))
