"""A deterministic order-statistic treap.

A treap keeps keys in binary-search-tree order and heap-orders nodes by
a pseudo-random priority, giving expected O(log n) depth.  Priorities
here are derived deterministically from the key's hash through a
splitmix64-style mixer, so identical inputs always build identical trees
(important for reproducible experiments; also means no reliance on a
global RNG).

Every node carries its subtree size, which turns the tree into an
*order-statistic* structure:

* ``rank(key)``   — 1-based position of ``key`` in sorted order;
* ``select(r)``   — the key at 1-based position ``r``.

Those two operations are exactly a sorted list's ``position_of`` and
``entry_at``, which is how :class:`repro.dynamic.dynamic_list.DynamicSortedList`
supports O(log n) updates while still serving the paper's access modes.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


def _mix(value: int) -> int:
    """splitmix64 finalizer: a well-distributed 64-bit mix of ``value``."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class _Node:
    __slots__ = ("key", "priority", "size", "left", "right")

    def __init__(self, key: Any) -> None:
        self.key = key
        self.priority = _mix(hash(key))
        self.size = 1
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None

    def refresh(self) -> None:
        self.size = 1 + _size(self.left) + _size(self.right)


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _split(node: Optional[_Node], key: Any) -> tuple[Optional[_Node], Optional[_Node]]:
    """Split into (< key, >= key) subtrees."""
    if node is None:
        return None, None
    if node.key < key:
        left, right = _split(node.right, key)
        node.right = left
        node.refresh()
        return node, right
    left, right = _split(node.left, key)
    node.left = right
    node.refresh()
    return left, node


def _merge(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    """Merge two treaps where every key in ``left`` < every key in ``right``."""
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        left.right = _merge(left.right, right)
        left.refresh()
        return left
    right.left = _merge(left, right.left)
    right.refresh()
    return right


class OrderStatisticTreap:
    """Ordered set with O(log n) rank/select, insert and delete."""

    __slots__ = ("_root",)

    def __init__(self) -> None:
        self._root: Optional[_Node] = None

    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    def insert(self, key: Any) -> bool:
        """Insert ``key``; returns False (no-op) if already present."""
        if key in self:
            return False
        left, right = _split(self._root, key)
        self._root = _merge(_merge(left, _Node(key)), right)
        return True

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if absent."""
        self._root, removed = self._delete(self._root, key)
        return removed

    @classmethod
    def _delete(
        cls, node: Optional[_Node], key: Any
    ) -> tuple[Optional[_Node], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = cls._delete(node.left, key)
        elif node.key < key:
            node.right, removed = cls._delete(node.right, key)
        else:
            return _merge(node.left, node.right), True
        node.refresh()
        return node, removed

    def rank(self, key: Any) -> int:
        """1-based position of ``key`` in sorted order; KeyError if absent."""
        node = self._root
        smaller = 0
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                smaller += _size(node.left) + 1
                node = node.right
            else:
                return smaller + _size(node.left) + 1
        raise KeyError(f"key not found: {key!r}")

    def select(self, rank: int) -> Any:
        """Key at 1-based position ``rank``; IndexError if out of range."""
        if not 1 <= rank <= len(self):
            raise IndexError(f"rank {rank} out of range 1..{len(self)}")
        node = self._root
        remaining = rank
        while node is not None:
            left_size = _size(node.left)
            if remaining <= left_size:
                node = node.left
            elif remaining == left_size + 1:
                return node.key
            else:
                remaining -= left_size + 1
                node = node.right
        raise AssertionError("unreachable: size bookkeeping is broken")

    def __iter__(self) -> Iterator[Any]:
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    def validate(self) -> None:
        """Check BST order, heap order and size bookkeeping (tests)."""
        keys = list(self)
        assert keys == sorted(keys), "BST order violated"
        assert len(keys) == len(self), "size bookkeeping broken"
        self._validate_node(self._root)

    def _validate_node(self, node: Optional[_Node]) -> int:
        if node is None:
            return 0
        for child in (node.left, node.right):
            if child is not None:
                assert child.priority <= node.priority, "heap order violated"
        size = 1 + self._validate_node(node.left) + self._validate_node(node.right)
        assert node.size == size, "stale subtree size"
        return size
