"""A database of updatable lists.

Mirrors :class:`repro.lists.database.Database` but over
:class:`DynamicSortedList` instances, with mutation helpers that keep the
item sets of all lists consistent (the paper's problem definition:
every item appears once in every list).  Item membership is validated
live rather than cached, so updates cannot leave the container stale.

Algorithms take this container directly — it exposes the same read
surface (``lists``, ``m``, ``n``, ``label``, ``local_scores``) the
static database does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.dynamic.dynamic_list import DynamicSortedList
from repro.errors import InconsistentListsError
from repro.types import ItemId, Score


@dataclass(frozen=True, slots=True)
class MutationEvent:
    """One committed mutation, as delivered to subscribers.

    ``kind`` is the mutating method's name (``"update_score"``,
    ``"apply_delta"``, ``"insert_item"``, ``"remove_item"``); ``item``
    is the affected item id.

    When the database has subscribers the event also carries the item's
    full per-list local score vectors around the mutation — ``None`` on
    the side where the item does not exist (``old_scores`` for an
    insert, ``new_scores`` for a removal) — plus the index of the list a
    score change touched.  The delta-aware cache
    (:class:`repro.service.cache.ResultCache` through a
    :class:`repro.dynamic.MutationLog`) folds the ``new_scores`` of a
    window's events into each touched item's final state to prove a
    cached top-k unaffected without re-reading any list;
    ``old_scores``/``list_index`` complete the record for consumers
    that need the reverse direction (audit trails, undo, diagnostics).
    """

    kind: str
    item: ItemId
    #: index of the mutated list for ``update_score``/``apply_delta``
    #: (``None`` for whole-item inserts/removals).
    list_index: int | None = None
    #: the item's local score in every list *before* the mutation.
    old_scores: tuple[Score, ...] | None = None
    #: the item's local score in every list *after* the mutation
    #: (``None``: the item no longer exists).
    new_scores: tuple[Score, ...] | None = None


class DynamicDatabase:
    """``m`` updatable sorted lists over one evolving item set."""

    __slots__ = ("_lists", "_labels", "_subscribers", "_score_watchers")

    def __init__(
        self,
        lists: Sequence[DynamicSortedList],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> None:
        if not lists:
            raise InconsistentListsError("a database needs at least one list")
        reference = frozenset(lists[0].items())
        for lst in lists[1:]:
            if frozenset(lst.items()) != reference:
                raise InconsistentListsError(
                    "all lists must contain the same items "
                    f"(list {lst.name or '?'} differs)"
                )
        self._lists = tuple(lists)
        self._labels = dict(labels) if labels else {}
        self._subscribers: list[Callable[[MutationEvent], None]] = []
        #: subscribers that asked for per-list score vectors; capture is
        #: skipped entirely while this is zero.
        self._score_watchers = 0

    @classmethod
    def from_score_rows(
        cls,
        score_rows: Sequence[Sequence[Score]],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> "DynamicDatabase":
        """Build from ``m`` dense score vectors (like the static Database)."""
        lists = [
            DynamicSortedList(
                ((item, score) for item, score in enumerate(row)),
                name=f"L{index + 1}",
            )
            for index, row in enumerate(score_rows)
        ]
        return cls(lists, labels=labels)

    # ------------------------------------------------------------------
    # Read surface shared with the static Database
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of lists."""
        return len(self._lists)

    @property
    def n(self) -> int:
        """Number of items per list."""
        return len(self._lists[0])

    @property
    def lists(self) -> tuple[DynamicSortedList, ...]:
        """The underlying dynamic lists."""
        return self._lists

    @property
    def item_ids(self) -> frozenset[ItemId]:
        """The shared item id set (computed live)."""
        return frozenset(self._lists[0].items())

    def label(self, item: ItemId) -> str:
        """Display label of ``item``."""
        return self._labels.get(item, f"item {item}")

    def local_scores(self, item: ItemId) -> tuple[Score, ...]:
        """The item's local score in every list, in list order."""
        return tuple(lst.lookup(item)[0] for lst in self._lists)

    def positions(self, item: ItemId) -> tuple[int, ...]:
        """The item's 1-based position in every list, in list order."""
        return tuple(lst.lookup(item)[1] for lst in self._lists)

    def __len__(self) -> int:
        return len(self._lists)

    def __iter__(self):
        return iter(self._lists)

    def __getitem__(self, index: int) -> DynamicSortedList:
        return self._lists[index]

    # ------------------------------------------------------------------
    # Mutation subscriptions (epoch wiring for caches/services)
    # ------------------------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[MutationEvent], None],
        *,
        with_scores: bool = True,
    ) -> Callable[[], None]:
        """Register a callback fired after every committed mutation.

        Returns an unsubscribe function.  Callbacks run synchronously in
        mutation order, *after* the database is consistent again —
        :class:`repro.service.QueryService` uses this to bump its cache
        epoch.  A failed (rolled-back) mutation never notifies.

        ``with_scores`` controls whether this subscriber needs the
        event's per-list score vectors.  Capturing them costs O(m log n)
        per mutation, so subscribers that only count or timestamp
        mutations (e.g. a service whose delta log is disabled) should
        pass ``False``; while *no* subscriber wants scores, events carry
        ``None`` vectors and mutations keep their bare O(log n) cost.
        """
        self._subscribers.append(callback)
        self._score_watchers += with_scores

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                return  # already unsubscribed; idempotent
            if with_scores:
                self._score_watchers -= 1

        return unsubscribe

    def retain_scores(self) -> Callable[[], None]:
        """Force per-event score capture on; returns a release function.

        Some consumers need event score vectors without registering a
        callback of their own — e.g. a service's subscription manager
        riding an existing score-less subscription.  Each retain bumps
        the watcher count exactly once; the returned release is
        idempotent.
        """
        self._score_watchers += 1
        released = False

        def release() -> None:
            nonlocal released
            if not released:
                released = True
                self._score_watchers -= 1

        return release

    def _capture(self, item: ItemId) -> tuple[Score, ...] | None:
        """The item's per-list scores, captured only when someone cares.

        Score capture costs ``m`` treap lookups, so unless a subscriber
        asked for score vectors (``subscribe(..., with_scores=True)``)
        mutations keep their bare O(log n) cost.
        """
        if not self._score_watchers or item not in self._lists[0]:
            return None
        return self.local_scores(item)

    def _notify(
        self,
        kind: str,
        item: ItemId,
        *,
        list_index: int | None = None,
        old_scores: tuple[Score, ...] | None = None,
        new_scores: tuple[Score, ...] | None = None,
    ) -> None:
        if not self._subscribers:
            return
        event = MutationEvent(
            kind=kind,
            item=item,
            list_index=list_index,
            old_scores=old_scores,
            new_scores=new_scores,
        )
        for callback in tuple(self._subscribers):
            callback(event)

    # ------------------------------------------------------------------
    # Consistent mutations
    # ------------------------------------------------------------------

    @staticmethod
    def _replace_at(
        scores: tuple[Score, ...] | None, index: int, value: Score
    ) -> tuple[Score, ...] | None:
        """``scores`` with position ``index`` swapped for ``value``.

        A single-list mutation only moves one coordinate, so the
        post-mutation vector is derived from the pre-mutation capture
        instead of paying a second round of treap lookups.  ``value``
        must be the exact float the list stores.
        """
        if scores is None:
            return None
        return scores[:index] + (value,) + scores[index + 1 :]

    def update_score(self, list_index: int, item: ItemId, score: Score) -> None:
        """Set the item's local score in one list."""
        old_scores = self._capture(item)
        self._lists[list_index].update(item, score)
        self._notify(
            "update_score",
            item,
            list_index=list_index,
            old_scores=old_scores,
            new_scores=self._replace_at(old_scores, list_index, float(score)),
        )

    def apply_delta(self, list_index: int, item: ItemId, delta: Score) -> None:
        """Adjust the item's local score in one list by ``delta``."""
        old_scores = self._capture(item)
        self._lists[list_index].apply_delta(item, delta)
        self._notify(
            "apply_delta",
            item,
            list_index=list_index,
            old_scores=old_scores,
            new_scores=(
                self._replace_at(
                    old_scores,
                    list_index,
                    # The list stores float(current + delta); mirror the
                    # identical float expression so the event's vector
                    # is bit-equal to a fresh lookup.
                    float(old_scores[list_index] + delta),
                )
                if old_scores is not None
                else None
            ),
        )

    def insert_item(self, item: ItemId, scores: Sequence[Score]) -> None:
        """Add a new item with one local score per list (all-or-nothing)."""
        if len(scores) != self.m:
            raise InconsistentListsError(
                f"need {self.m} scores (one per list), got {len(scores)}"
            )
        inserted = []
        try:
            for lst, score in zip(self._lists, scores):
                lst.insert(item, score)
                inserted.append(lst)
        except Exception:
            for lst in inserted:
                lst.remove(item)
            raise
        self._notify(
            "insert_item",
            item,
            # The vectors are already in hand: each list stores exactly
            # float(score), so no post-insert capture is needed.
            new_scores=(
                tuple(float(score) for score in scores)
                if self._score_watchers
                else None
            ),
        )

    def remove_item(self, item: ItemId) -> None:
        """Delete an item from every list (all-or-nothing).

        Mirrors :meth:`insert_item`'s rollback: if any list's ``remove``
        raises mid-loop, the entries already removed from earlier lists
        are re-inserted with their captured scores, so the database is
        never left with an item present in some lists but not others.
        A failed removal does not notify.
        """
        old_scores = self._capture(item)
        removed: list[tuple[DynamicSortedList, Score]] = []
        try:
            for lst in self._lists:
                score, _position = lst.lookup(item)
                lst.remove(item)
                removed.append((lst, score))
        except Exception:
            for lst, score in reversed(removed):
                lst.insert(item, score)
            raise
        self._notify("remove_item", item, old_scores=old_scores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynamicDatabase m={self.m} n={self.n}>"
