"""A database of updatable lists.

Mirrors :class:`repro.lists.database.Database` but over
:class:`DynamicSortedList` instances, with mutation helpers that keep the
item sets of all lists consistent (the paper's problem definition:
every item appears once in every list).  Item membership is validated
live rather than cached, so updates cannot leave the container stale.

Algorithms take this container directly — it exposes the same read
surface (``lists``, ``m``, ``n``, ``label``, ``local_scores``) the
static database does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.dynamic.dynamic_list import DynamicSortedList
from repro.errors import InconsistentListsError
from repro.types import ItemId, Score


@dataclass(frozen=True, slots=True)
class MutationEvent:
    """One committed mutation, as delivered to subscribers.

    ``kind`` is the mutating method's name (``"update_score"``,
    ``"apply_delta"``, ``"insert_item"``, ``"remove_item"``); ``item``
    is the affected item id.
    """

    kind: str
    item: ItemId


class DynamicDatabase:
    """``m`` updatable sorted lists over one evolving item set."""

    __slots__ = ("_lists", "_labels", "_subscribers")

    def __init__(
        self,
        lists: Sequence[DynamicSortedList],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> None:
        if not lists:
            raise InconsistentListsError("a database needs at least one list")
        reference = frozenset(lists[0].items())
        for lst in lists[1:]:
            if frozenset(lst.items()) != reference:
                raise InconsistentListsError(
                    "all lists must contain the same items "
                    f"(list {lst.name or '?'} differs)"
                )
        self._lists = tuple(lists)
        self._labels = dict(labels) if labels else {}
        self._subscribers: list[Callable[[MutationEvent], None]] = []

    @classmethod
    def from_score_rows(
        cls,
        score_rows: Sequence[Sequence[Score]],
        *,
        labels: Mapping[ItemId, str] | None = None,
    ) -> "DynamicDatabase":
        """Build from ``m`` dense score vectors (like the static Database)."""
        lists = [
            DynamicSortedList(
                ((item, score) for item, score in enumerate(row)),
                name=f"L{index + 1}",
            )
            for index, row in enumerate(score_rows)
        ]
        return cls(lists, labels=labels)

    # ------------------------------------------------------------------
    # Read surface shared with the static Database
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of lists."""
        return len(self._lists)

    @property
    def n(self) -> int:
        """Number of items per list."""
        return len(self._lists[0])

    @property
    def lists(self) -> tuple[DynamicSortedList, ...]:
        """The underlying dynamic lists."""
        return self._lists

    @property
    def item_ids(self) -> frozenset[ItemId]:
        """The shared item id set (computed live)."""
        return frozenset(self._lists[0].items())

    def label(self, item: ItemId) -> str:
        """Display label of ``item``."""
        return self._labels.get(item, f"item {item}")

    def local_scores(self, item: ItemId) -> tuple[Score, ...]:
        """The item's local score in every list, in list order."""
        return tuple(lst.lookup(item)[0] for lst in self._lists)

    def positions(self, item: ItemId) -> tuple[int, ...]:
        """The item's 1-based position in every list, in list order."""
        return tuple(lst.lookup(item)[1] for lst in self._lists)

    def __len__(self) -> int:
        return len(self._lists)

    def __iter__(self):
        return iter(self._lists)

    def __getitem__(self, index: int) -> DynamicSortedList:
        return self._lists[index]

    # ------------------------------------------------------------------
    # Mutation subscriptions (epoch wiring for caches/services)
    # ------------------------------------------------------------------

    def subscribe(
        self, callback: Callable[[MutationEvent], None]
    ) -> Callable[[], None]:
        """Register a callback fired after every committed mutation.

        Returns an unsubscribe function.  Callbacks run synchronously in
        mutation order, *after* the database is consistent again —
        :class:`repro.service.QueryService` uses this to bump its cache
        epoch.  A failed (rolled-back) mutation never notifies.
        """
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass  # already unsubscribed; idempotent

        return unsubscribe

    def _notify(self, kind: str, item: ItemId) -> None:
        event = MutationEvent(kind=kind, item=item)
        for callback in tuple(self._subscribers):
            callback(event)

    # ------------------------------------------------------------------
    # Consistent mutations
    # ------------------------------------------------------------------

    def update_score(self, list_index: int, item: ItemId, score: Score) -> None:
        """Set the item's local score in one list."""
        self._lists[list_index].update(item, score)
        self._notify("update_score", item)

    def apply_delta(self, list_index: int, item: ItemId, delta: Score) -> None:
        """Adjust the item's local score in one list by ``delta``."""
        self._lists[list_index].apply_delta(item, delta)
        self._notify("apply_delta", item)

    def insert_item(self, item: ItemId, scores: Sequence[Score]) -> None:
        """Add a new item with one local score per list (all-or-nothing)."""
        if len(scores) != self.m:
            raise InconsistentListsError(
                f"need {self.m} scores (one per list), got {len(scores)}"
            )
        inserted = []
        try:
            for lst, score in zip(self._lists, scores):
                lst.insert(item, score)
                inserted.append(lst)
        except Exception:
            for lst in inserted:
                lst.remove(item)
            raise
        self._notify("insert_item", item)

    def remove_item(self, item: ItemId) -> None:
        """Delete an item from every list."""
        for lst in self._lists:
            lst.remove(item)
        self._notify("remove_item", item)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynamicDatabase m={self.m} n={self.n}>"
